"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints
it, so a ``pytest benchmarks/ --benchmark-only -s`` run reads side by side
with the PDF.  Drivers run once per benchmark (pedantic, 1 round): the
measured quantity is the wall time of regenerating the experiment, and the
printed artifact is the experiment itself (in virtual time).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
