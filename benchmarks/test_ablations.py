"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not in the paper's evaluation; they quantify the design
trade-offs the paper argues qualitatively:

1. **Retention policy sweep** (the FW two-version rationale): cascade
   length and recovery overhead vs number of retained versions.
2. **Single assignment vs reuse** for Smith-Waterman: removing overwrite-
   induced re-execution entirely, at unbounded memory cost.
3. **Recovery-table duplicate suppression** (Guarantee 1): how many
   redundant recoveries the table prevents under high fan-out.
4. **Notify-array reconstruction cost** (Guarantee 4): REINITNOTIFYENTRY
   scans scale with the victim's out-degree.
"""

import pytest

from repro.apps import AppConfig, make_app
from repro.apps.floyd_warshall import FloydWarshallApp
from repro.apps.smith_waterman import SmithWatermanApp
from repro.core import FTScheduler
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultPlan
from repro.faults.planner import plan_faults
from repro.faults.selectors import VersionIndex
from repro.graph.builders import diamond_graph
from repro.harness.report import render_table
from repro.memory.allocator import KeepK, SingleAssignment
from repro.memory.blockstore import BlockStore
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_with(app, store, plan=None, workers=1, seed=0, max_recoveries=1_000_000):
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan else None
    sched = FTScheduler(
        app, SimulatedRuntime(workers=workers, seed=seed), store=store,
        hooks=hooks, trace=trace, max_recoveries=max_recoveries,
    )
    return sched.run()


def test_ablation_retention_policy_sweep(once):
    """Sweep keep=1..3 + single-assignment on FW with v=last after-notify
    faults.

    Headline ablation result: with a *single* resident version (keep=1),
    FW recovery does not converge -- restore chains for different blocks
    keep evicting each other's results, and the incarnation counter races
    away (this is the strong form of the paper's rationale for retaining
    two versions: the doubled memory is not just an optimization, it is
    what makes localized recovery tractable for FW's all-to-all version
    dependences).  keep >= 2 recovers cheaply; single assignment is the
    floor.
    """

    BUDGET = 20_000

    def sweep():
        app = make_app("fw", AppConfig(n=96, block=8), light=True)  # B = 12
        index = VersionIndex(app)
        rows = []
        policies = [KeepK(1), KeepK(2), KeepK(3), SingleAssignment()]
        for policy in policies:
            reexec, over = [], []
            diverged = 0
            for r in range(3):
                store = BlockStore(policy)
                app.seed_store(store)
                base = run_with(app, store).makespan
                plan = plan_faults(app, phase="after_notify", task_type="v=last",
                                   count=12, seed=r, index=index)
                store2 = BlockStore(policy)
                app.seed_store(store2)
                try:
                    res = run_with(app, store2, plan=plan, max_recoveries=BUDGET)
                except Exception:
                    diverged += 1
                    continue
                reexec.append(res.trace.reexecutions)
                over.append(100.0 * (res.makespan - base) / base)
            rows.append((
                policy.name,
                f"{sum(reexec) / len(reexec):.1f}" if reexec else "diverged",
                f"{sum(over) / len(over):.2f}" if over else "-",
                f"{diverged}/3",
            ))
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["policy", "avg re-executions", "overhead %", "diverged runs"], rows,
        title="Ablation: FW retention policy vs recovery cascades"))
    by = {name: row for name, *row in rows}
    # keep=1 livelocks; keep >= 2 converges with bounded cascades.
    assert by["reuse"][2] != "0/3"
    assert by["two_version"][2] == "0/3"
    assert by["keep3"][2] == "0/3"
    assert by["single_assignment"][2] == "0/3"
    assert float(by["two_version"][0]) >= float(by["single_assignment"][0])


def test_ablation_sw_single_assignment(once):
    """Single-assignment SW trades memory for zero overwrite cascades."""

    def run():
        rows = []
        for policy in (None, SingleAssignment()):
            app = make_app("sw", AppConfig(n=512, block=32), light=True)
            index = VersionIndex(app)
            store = BlockStore(policy or app.ft_policy)
            base = run_with(app, store).makespan
            peak = store.stats.peak_resident
            reexec = []
            for r in range(4):
                plan = plan_faults(app, phase="after_notify", task_type="v=last",
                                   count=4, seed=r, index=index)
                store2 = BlockStore(policy or app.ft_policy)
                res = run_with(app, store2, plan=plan)
                reexec.append(res.trace.reexecutions)
            rows.append((
                (policy or app.ft_policy).name, peak, sum(reexec) / len(reexec)
            ))
        return rows

    rows = once(run)
    print()
    print(render_table(["policy", "peak resident blocks", "avg re-executions"], rows,
                       title="Ablation: SW memory reuse vs single assignment"))
    (reuse_name, reuse_peak, reuse_re), (sa_name, sa_peak, sa_re) = rows
    assert sa_peak > reuse_peak          # the memory cost
    assert sa_re <= reuse_re             # the cascade benefit


def test_ablation_recovery_table_dedup(once):
    """High-fanout failure: observers race; the table admits exactly one."""

    def run():
        rows = []
        for width in (4, 16, 64):
            spec = diamond_graph(width=width)
            plan = FaultPlan.single("src", "after_compute")
            store = BlockStore()
            trace = ExecutionTrace()
            injector = FaultInjector(plan, spec, store, trace)
            sched = FTScheduler(
                spec, SimulatedRuntime(workers=8, seed=width), store=store,
                hooks=injector, trace=trace,
            )
            sched.run()
            rows.append((width, trace.recoveries["src"],
                         trace.recovery_skips, sched.recovery_table.rejections))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["fan-out", "recoveries", "suppressed observers", "table rejections"], rows,
        title="Ablation: Guarantee 1 duplicate-recovery suppression"))
    for width, recoveries, skips, rejections in rows:
        assert recoveries == 1
    # More observers => more suppressed duplicates at the widest fan-out.
    assert rows[-1][3] >= rows[0][3]


def test_ablation_reinit_scan_scales_with_outdegree(once):
    """REINITNOTIFYENTRY scans every successor of a recovering task."""

    def run():
        rows = []
        for width in (4, 16, 64):
            spec = diamond_graph(width=width)
            plan = FaultPlan.single("src", "after_compute")
            store = BlockStore()
            trace = ExecutionTrace()
            injector = FaultInjector(plan, spec, store, trace)
            FTScheduler(
                spec, SimulatedRuntime(workers=8, seed=1), store=store,
                hooks=injector, trace=trace,
            ).run()
            rows.append((width, trace.reinit_scans, trace.notify_reinits))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["fan-out", "successors scanned", "re-enqueued (were waiting)"], rows,
        title="Ablation: notify-array reconstruction vs out-degree"))
    # The scan examines every successor of the recovering task (the L_N
    # term of Lemma 4); only those still waiting get re-enqueued -- with
    # lazy expansion and immediate detection, usually just a few.
    for width, scans, reinits in rows:
        assert scans == width
        assert 0 <= reinits <= scans
    assert rows[-1][1] > rows[0][1]
