"""Extension benchmark: selective recovery vs checkpoint/restart.

The paper's introduction argues that collective approaches "require the
overhead of synchronization even when there are no failures, and, with
frequent errors, the application's progress may be extremely slow"
(Section II) but never quantifies the comparison.  This bench does, on
the same virtual-time footing:

* **selective** -- the paper's scheme, measured: inject an after-compute
  fault and take the real makespan increase.
* **restart** -- global restart-from-scratch, measured from the
  fault-free execution timeline: the work completed up to the victim's
  completion instant is lost and the whole graph re-runs.
* **checkpoint(C)** -- periodic coordinated checkpoints every ``C``
  virtual units costing ``c`` each: fault-free runs pay ``(T/C) * c``;
  a fault additionally replays, on average, half a period.

Expected: selective recovery beats both by 1-2 orders of magnitude for
single-task faults, and the checkpointing scheme only approaches it when
the period shrinks to the point where its fault-free tax dominates --
the trade the paper's design avoids entirely.
"""

from repro.apps import make_app
from repro.core import FTScheduler
from repro.faults import FaultInjector, FaultPlan, VersionIndex
from repro.harness.report import render_table
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def completion_time_of(app, victim, workers, seed):
    """Virtual instant at which ``victim`` publishes, from a fault-free
    timeline-recorded run."""
    rt = SimulatedRuntime(workers=workers, seed=seed, record_timeline=True)
    store = app.make_store(True)
    res = FTScheduler(app, rt, store=store).run()
    label = f"publish:{victim!r}"
    for start, end, _w, lbl in rt.timeline:
        if lbl == label:
            return end, res.makespan
    raise AssertionError(f"victim {victim!r} never published")


def test_selective_vs_restart_vs_checkpoint(once):
    WORKERS, SEED = 8, 3

    def run():
        rows = []
        for name in ("lcs", "lu"):
            app = make_app(name, light=True)
            index = VersionIndex(app)
            victim = index.pool("v=rand")[len(index.tasks) // 2]
            t_victim, t_free = completion_time_of(app, victim, WORKERS, SEED)

            # Selective (measured).
            store = app.make_store(True)
            trace = ExecutionTrace()
            plan = FaultPlan.single(victim, "after_compute")
            injector = FaultInjector(plan, app, store, trace)
            t_sel = FTScheduler(
                app, SimulatedRuntime(workers=WORKERS, seed=SEED),
                store=store, hooks=injector, trace=trace,
            ).run().makespan

            # Restart (from the measured timeline): progress until the
            # fault is wasted, then the whole graph re-runs.
            t_restart = t_victim + t_free

            rows.append((name, "selective (paper)", "-",
                         f"{100 * (t_sel - t_free) / t_free:.2f}"))
            rows.append((name, "global restart", "-",
                         f"{100 * (t_restart - t_free) / t_free:.2f}"))
            # Checkpointing: period C in units of the makespan, cost 2% of
            # the makespan per checkpoint (synchronize + serialize).
            for period_frac in (0.5, 0.1):
                c_cost = 0.02 * t_free
                n_ckpt = int(1.0 / period_frac)
                tax = n_ckpt * c_cost
                replay = period_frac * t_free / 2.0
                t_ck = t_free + tax + replay
                rows.append((
                    name, f"checkpoint (C={period_frac:.0%} of T)",
                    f"{100 * tax / t_free:.1f}",
                    f"{100 * (t_ck - t_free) / t_free:.2f}",
                ))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["app", "scheme", "fault-free tax %", "one-fault overhead %"],
        rows,
        title="Extension: selective recovery vs collective schemes (one "
              "after-compute fault)",
    ))
    by = {(app, scheme.split(" (")[0]): float(over)
          for app, scheme, _tax, over in rows}
    for app in ("lcs", "lu"):
        assert by[(app, "selective")] < 2.0
        assert by[(app, "global restart")] > 10 * by[(app, "selective")]
        assert by[(app, "checkpoint")] > by[(app, "selective")]
