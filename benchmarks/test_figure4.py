"""Benchmark: regenerate Figure 4 (speedup, baseline vs FT, no faults).

Expected shape (paper): near-linear speedup for every benchmark up to 44
workers; FT sequential overhead within noise everywhere except
Floyd-Warshall, whose two-version memory costs ~10%.
"""

from repro.harness.figure4 import figure4, format_figure4

WORKERS = (1, 2, 4, 8, 16, 32, 44)


def test_figure4_speedups(once):
    # "large" instances keep structural parallelism well above 44 so the
    # curves match the paper's near-linear shape instead of saturating.
    series = once(lambda: figure4(workers=WORKERS, reps=2, scale="large"))
    print()
    print(format_figure4(series))

    by = {(s.app, s.variant): s for s in series}
    for (app, variant), s in by.items():
        # Monotone-ish speedup: P=8 beats P=2 for every curve.
        assert s.speedup(8) > s.speedup(2) > 1.5, (app, variant)
        # Speedup never exceeds the worker count.
        for p in WORKERS:
            assert s.speedup(p) <= p * 1.01, (app, variant, p)

    # FT-vs-baseline sequential overhead: within ~2% everywhere but FW.
    for app in ("lcs", "sw", "lu", "cholesky"):
        gap = by[(app, "ft")].sequential_time / by[(app, "baseline")].sequential_time
        assert gap < 1.02, app
    fw_gap = by[("fw", "ft")].sequential_time / by[("fw", "baseline")].sequential_time
    assert 1.05 < fw_gap < 1.15
