"""Benchmark: regenerate Figure 5 (recovery overhead, before/after compute).

Expected shape (paper): before-compute faults cost ~nothing at any loss
size; after-compute overhead is proportional to the work lost -- well
under 1% for the 512-task scenario, and roughly the lost fraction for the
2%/5% scenarios (paper: at most 3.6% and 8.2%).
"""

from repro.harness.figure5 import figure5a, figure5b, format_figure5


def test_figure5a_512_tasks(once):
    cells = once(lambda: figure5a(reps=4))
    print()
    print(format_figure5(cells, "Figure 5(a): 512-task loss (scaled), before/after compute"))
    for c in cells:
        if c.phase == "before_compute":
            assert abs(c.overhead.mean) < 0.5, (c.app, c.task_type)
            assert c.reexecutions.mean == 0
        else:
            assert -0.5 < c.overhead.mean < 2.0, (c.app, c.task_type)
            assert c.reexecutions.mean >= 1


def test_figure5b_percent_loss(once):
    cells = once(lambda: figure5b(reps=4))
    print()
    print(format_figure5(cells, "Figure 5(b): 2%/5% loss, before/after compute"))
    for c in cells:
        if c.phase == "before_compute":
            assert abs(c.overhead.mean) < 0.5, c.app
    after = {(c.app, c.amount): c for c in cells if c.phase == "after_compute"}
    for (app, amount), c in after.items():
        cap = 4.5 if amount.startswith("2%") else 10.0
        assert c.overhead.mean < cap, (app, amount)
    # 5% loses more than 2% for every app.
    for app in {a for a, _ in after}:
        assert after[(app, "5%,v=rand")].overhead.mean > after[(app, "2%,v=rand")].overhead.mean


def test_small_constant_losses(once):
    """The paper's companion experiment: "scenarios with only 1, 8, and
    64 task re-executions ... did not observe any statistically
    significant overheads" (figures omitted there for space)."""
    from repro.faults.model import FaultPhase
    from repro.harness.figure5 import _study

    def run():
        # The paper's counts scaled by the instance's task-count share
        # (with a floor of one victim).
        scenarios = [
            (f"{n} tasks", {"count": max(1, n * 2304 // 65536),
                            "task_type": "v=rand"})
            for n in (1, 8, 64)
        ]
        return _study(("lcs", "lu"), scenarios, (FaultPhase.AFTER_COMPUTE,),
                      reps=4, workers=1, scale="default", cost_model=None)

    cells = once(run)
    print()
    print(format_figure5(cells, "Companion: 1/8/64-task losses (after compute)"))
    for c in cells:
        assert c.overhead.mean < 0.5, (c.app, c.amount)
