"""Benchmark: regenerate Figure 6 (after-notify recovery overheads).

Expected shape (paper): overheads grow with the loss amount (512-scaled <
2% < 5%), mostly below ~2.5% for the 2% scenario and ~6.5% for the 5%
scenario, with benchmark-dependent spread driven by cascade behaviour.
"""

from repro.harness.table2 import after_notify_study, format_figure6

from test_table2 import study  # share the (cached) Table II runs


def test_figure6_overheads(once):
    cells = once(study)
    print()
    print(format_figure6(cells))

    frac = {(c.app, c.amount): c for c in cells if c.amount.endswith("%")}
    for app in {a for a, _ in frac}:
        two, five = frac[(app, "2%")], frac[(app, "5%")]
        assert five.overhead.mean > two.overhead.mean, app
        assert five.overhead.mean < 15.0, app

    fixed = [c for c in cells if not c.amount.endswith("%")]
    for c in fixed:
        assert c.overhead.mean < 5.0, (c.app, c.task_type)
