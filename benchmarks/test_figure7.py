"""Benchmark: regenerate Figure 7 (recovery overhead vs worker count).

Expected shape (paper): (a) a small constant loss stays cheap at every P;
(b) a 5% loss costs its share sequentially and *grows* with P, because
recovery chains are serial and steal no benefit from idle workers --
"the biggest scalability challenge for any task graph execution scheme".
Magnitudes at high P exceed the paper's (our scaled instances have far
less parallel slack than 100k-task graphs; see EXPERIMENTS.md).
"""

from repro.analysis.stats import summarize
from repro.harness.figure7 import figure7, format_figure7

WORKERS = (1, 8, 16, 32, 44)


def test_figure7a_constant_loss(once):
    series = once(lambda: figure7(paper_loss=512, workers=WORKERS, reps=3))
    print()
    print(format_figure7(series, "Figure 7(a): 512-task-scaled loss, after compute, v=rand"))
    for s in series:
        assert s.overhead[1].mean < 1.5, s.app  # tiny at P=1


def test_figure7b_five_percent_loss(once):
    series = once(lambda: figure7(paper_loss=None, fraction=0.05, workers=WORKERS, reps=3))
    print()
    print(format_figure7(series, "Figure 7(b): 5% loss, after compute, v=rand"))
    for s in series:
        # Sequential overhead reflects the lost work fraction.
        assert s.overhead[1].mean < 9.0, s.app
        # The paper's headline trend: overhead grows as P grows.
        assert s.overhead[44].mean > s.overhead[1].mean, s.app
