"""Ablation: sensitivity of the headline results to the cost model.

The virtual-time substitution (DESIGN.md §2) hinges on scheduler-overhead
constants being small relative to task compute costs, as on the paper's
testbed (tasks are 128x128 tile kernels).  This bench stress-tests that
assumption: scale *all* scheduler overheads by 1x / 10x / 50x and check
the two headline claims survive --

* FT-vs-baseline overhead without faults stays small (Figure 4's claim),
* recovery overhead stays proportional to lost work (Figure 5's claim).

If either broke at 10x, the reproduction's shapes would be artifacts of
the chosen constants.
"""

from repro.apps import make_app
from repro.faults import FaultInjector, VersionIndex, plan_faults
from repro.core import FTScheduler, NabbitScheduler
from repro.harness.report import render_table
from repro.runtime import CostModel, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def makespan(app, ft, cm, plan=None, workers=8, seed=0):
    store = app.make_store(ft)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan else None
    if ft:
        sched = FTScheduler(app, SimulatedRuntime(workers, cm, seed), store=store,
                            cost_model=cm, hooks=hooks, trace=trace)
    else:
        sched = NabbitScheduler(app, SimulatedRuntime(workers, cm, seed), store=store,
                                cost_model=cm, trace=trace)
    return sched.run().makespan


def test_cost_model_sensitivity(once):
    def run():
        rows = []
        app = make_app("lu", light=True)
        index = VersionIndex(app)
        for factor in (1.0, 10.0, 50.0):
            cm = CostModel().scaled(factor)
            base = makespan(app, False, cm)
            ft = makespan(app, True, cm)
            recs = []
            for r in range(3):
                plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                                   fraction=0.05, seed=r, index=index)
                ftr = makespan(app, True, cm, seed=r)
                faulty = makespan(app, True, cm, plan=plan, seed=r)
                recs.append(100.0 * (faulty - ftr) / ftr)
            rows.append((
                f"{factor:.0f}x",
                f"{100.0 * (ft - base) / base:+.2f}",
                f"{sum(recs) / len(recs):+.2f}",
            ))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["overhead scale", "FT vs baseline %", "5%-loss recovery %"],
        rows,
        title="Sensitivity: headline overheads vs scheduler-cost constants (LU, P=8)",
    ))
    for factor, ft_gap, rec in rows:
        assert abs(float(ft_gap)) < 3.0, factor   # Figure 4 claim robust
        assert 2.0 < float(rec) < 15.0, factor    # proportional-ish, never runaway
