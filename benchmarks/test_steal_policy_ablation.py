"""Ablation: victim-selection policy vs makespan and steal traffic.

NABBIT's bounds assume uniformly random victim probing (ABP [12]); this
ablation measures what the choice costs on the benchmarks: random
probing vs a deterministic round-robin scan vs an omniscient
longest-deque oracle ("richest" -- a lower-bound comparator that real
hardware cannot implement without global state).

Expected: all three within a few percent on these abundant-parallelism
graphs (the deques are rarely empty for long), with the oracle saving
failed probes.
"""

from repro.apps import make_app
from repro.core import FTScheduler
from repro.harness.report import render_table
from repro.runtime import SimulatedRuntime


def test_steal_policy_sweep(once):
    def run():
        rows = []
        for name in ("lcs", "lu"):
            base = None
            for policy in SimulatedRuntime.STEAL_POLICIES:
                app = make_app(name, light=True)
                store = app.make_store(True)
                res = FTScheduler(
                    app,
                    SimulatedRuntime(workers=16, seed=4, steal_policy=policy),
                    store=store,
                ).run()
                if base is None:
                    base = res.makespan
                rows.append((
                    name, policy, f"{res.makespan:.0f}",
                    f"{100.0 * (res.makespan - base) / base:+.2f}",
                    res.run.steals, res.run.failed_steals,
                ))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["app", "policy", "makespan", "vs random %", "steals", "failed probes"],
        rows, title="Ablation: steal victim selection (P=16)"))
    by = {(app, pol): float(m) for app, pol, m, _, _, _ in rows}
    for app in ("lcs", "lu"):
        rnd = by[(app, "random")]
        for pol in ("round_robin", "richest"):
            assert abs(by[(app, pol)] - rnd) / rnd < 0.10, (app, pol)
    # The oracle never pays failed probes.
    assert all(f == 0 for _, pol, _, _, _, f in rows if pol == "richest")
