"""Benchmark: regenerate Table I (task-graph structure at paper scale).

Pure graph analytics -- the one experiment that runs at the paper's exact
instance sizes.  Expected: LCS, LU, Cholesky match the paper's T/E/S
exactly; FW matches after removing our explicit collection sink; SW's
decomposition is a documented substitution (see EXPERIMENTS.md).
"""

from repro.harness.table1 import PAPER_TABLE1, format_table1, table1


def test_table1_paper_scale(once):
    rows = once(lambda: table1(("lcs", "lu", "cholesky", "fw"), scale="paper"))
    print()
    print(format_table1(rows))
    by_app = {r.app: r for r in rows}
    # Exact reproduction where the decomposition is reconstructible:
    for name in ("lcs", "lu", "cholesky", "fw"):
        r = by_app[name]
        assert r.tasks == r.paper_tasks, name
        assert r.edges == r.paper_edges, name
    assert by_app["lcs"].s_edges == PAPER_TABLE1["lcs"][4]
    assert by_app["lu"].s_nodes == PAPER_TABLE1["lu"][4]
    assert by_app["cholesky"].s_nodes == PAPER_TABLE1["cholesky"][4]


def test_table1_sw_substitution(once):
    rows = once(lambda: table1(("sw",), scale="paper"))
    print()
    print(format_table1(rows))
    (r,) = rows
    # Same wavefront family, documented substitute decomposition.
    assert r.tasks == r.n // r.block * (r.n // r.block)
    assert "not reconstructible" in r.note
