"""Benchmark: regenerate Table II (after-notify re-execution statistics).

Expected shape (paper): actual re-execution counts deviate from the
implied sizing -- v=last faults on version-chained benchmarks (LU,
Cholesky, SW) can cascade with large variance, while LCS (at most three
uses per block, single assignment) stays flat across task types, and
two-version FW is damped below its implied chains.
"""

from repro.harness.table2 import after_notify_study, format_table2

_CELLS_CACHE: list = []


def study():
    if not _CELLS_CACHE:
        _CELLS_CACHE.extend(after_notify_study(reps=6))
    return _CELLS_CACHE


def test_table2_reexecution_stats(once):
    cells = once(study)
    print()
    print(format_table2(cells))
    fixed = {(c.app, c.task_type): c for c in cells if not c.amount.endswith("%")}

    # LCS: flat across task types (single assignment).
    lcs = [fixed[("lcs", t)].reexecutions.mean for t in ("v=0", "v=last", "v=rand")]
    assert max(lcs) - min(lcs) <= max(lcs) * 0.35

    # FW: two-version retention keeps v=last actuals below implied chains.
    fw_last = fixed[("fw", "v=last")]
    assert fw_last.reexecutions.mean < fw_last.implied

    # Version-chained apps show spread (nonzero std somewhere) for v=rand.
    assert any(
        fixed[(app, "v=rand")].reexecutions.std > 0
        for app in ("lu", "cholesky", "sw", "fw")
    )
