"""Benchmark: Section V theory check (not a paper figure).

Evaluates the Theorem 2 completion-time bound against measured virtual
makespans for every benchmark, fault-free and under 5% after-compute
loss.  The bound is asymptotic, so the check is (a) the measured time
stays within a fixed constant of the bound scaled by per-task cost, and
(b) with N(A) = 1 it reduces to the NABBIT-order bound (the paper's
no-fault reduction).
"""

from repro.analysis.bounds import bound_report, nabbit_bound
from repro.apps import APP_NAMES, make_app
from repro.faults import VersionIndex, plan_faults
from repro.harness.experiment import execute
from repro.harness.report import render_table


def test_theorem2_bound_dominates_measurements(once):
    def run():
        rows = []
        for name in APP_NAMES:
            app = make_app(name, scale="tiny", light=True)
            index = VersionIndex(app)
            for p in (1, 8):
                out = execute(app, workers=p, steal_seed=1)
                rep = bound_report(app, out.result.trace.executions(), workers=p)
                plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                                   fraction=0.05, seed=1, index=index)
                fout = execute(app, workers=p, steal_seed=1, plan=plan)
                frep = bound_report(app, fout.result.trace.executions(), workers=p)
                rows.append((
                    name, p,
                    f"{out.makespan:.0f}", f"{rep.completion_bound:.0f}",
                    f"{fout.makespan:.0f}", f"{frep.completion_bound:.0f}",
                    f"{frep.max_executions}",
                ))
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["app", "P", "measured", "Thm2 bound", "measured (faults)",
         "bound (faults)", "max N(A)"],
        rows, title="Section V: measured virtual time vs Theorem 2 bound"))
    # The bound is in unit-cost terms; per-task costs are O(b^2..b^3), so
    # allow that factor.  What must hold: bound * max_task_cost >= time.
    for name, p, t, bound, tf, boundf, _n in rows:
        app = make_app(name, scale="tiny", light=True)
        max_cost = max(app.cost(k) for k in [app.sink_key()])
        # A loose but honest domination check with the compute-cost scale.
        scale = max(app.cost(app.sink_key()), 1.0)
        assert float(t) <= float(bound) * max(scale, 4096.0)
        assert float(tf) <= float(boundf) * max(scale, 4096.0)


def test_no_fault_reduction_to_nabbit(once):
    def run():
        rows = []
        for name in APP_NAMES:
            app = make_app(name, scale="tiny", light=True)
            rep = bound_report(app, None, workers=8)
            nb = nabbit_bound(app, workers=8)
            rows.append((name, f"{rep.completion_bound:.0f}", f"{nb:.0f}",
                         f"{rep.completion_bound / nb:.2f}"))
        return rows

    rows = once(run)
    print()
    print(render_table(["app", "Thm2 (N=1)", "NABBIT bound", "ratio"], rows,
                       title="Theorem 2 reduces to the NABBIT order at N=1"))
    for _, _, _, ratio in rows:
        assert float(ratio) < 100.0  # same order, constant-factor apart
