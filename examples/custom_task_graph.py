#!/usr/bin/env python
"""Bring your own application: a custom task graph with versioned blocks.

Implements a small iterative stencil (Jacobi smoothing on a 1-D array,
blocked into chunks) directly against the ``TaskGraphSpec`` interface --
the same interface the five built-in benchmarks use -- demonstrating:

* versioned data blocks with a bounded-memory ``KeepK`` policy,
* write-after-read anti-dependences that make buffer reuse safe,
* pinned (resilient) input blocks,
* recovery through reused buffers when a late fault cascades.

Run:  python examples/custom_task_graph.py
"""

import numpy as np

from repro import BlockRef, FTScheduler, SimulatedRuntime, TaskSpecBase, validate_spec
from repro.faults import FaultInjector, FaultPlan
from repro.memory import BlockStore, KeepK
from repro.runtime.tracing import ExecutionTrace

CHUNKS = 8       # blocks per iteration
SIZE = 64        # elements per block
STEPS = 6        # Jacobi iterations


class JacobiSpec(TaskSpecBase):
    """Task (t, c): produce version t+1 of chunk c from step-t data.

    Chunk ``c`` at step ``t+1`` needs chunks ``c-1, c, c+1`` at step
    ``t``.  Memory-safety note: each chunk buffer retains *two* resident
    versions (``KeepK(2)``), so writing version t+1 evicts version t-1 --
    and every reader of version t-1 (the step-(t-1) neighbourhood tasks)
    is already a direct predecessor, so no extra write-after-read edges
    are needed.  With a single resident version the required anti-edges
    would connect same-step neighbours in both directions -- a cycle --
    which is exactly why iterative stencils need (at least) double
    buffering, mirroring the paper's two-version Floyd-Warshall.
    """

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    # -- structure -----------------------------------------------------------

    def sink_key(self):
        return "done"

    def _neighbors(self, c):
        return [x for x in (c - 1, c, c + 1) if 0 <= x < CHUNKS]

    def predecessors(self, key):
        if key == "done":
            return tuple((STEPS - 1, c) for c in range(CHUNKS))
        t, c = key
        if t == 0:
            return ()
        return tuple((t - 1, x) for x in self._neighbors(c))

    def successors(self, key):
        if key == "done":
            return ()
        t, c = key
        if t + 1 < STEPS:
            return tuple((t + 1, x) for x in self._neighbors(c))
        return ("done",)

    # -- data footprint ---------------------------------------------------------

    def inputs(self, key):
        if key == "done":
            return tuple(BlockRef(("u", c), STEPS) for c in range(CHUNKS))
        t, c = key
        return tuple(BlockRef(("u", x), t) for x in self._neighbors(c))

    def outputs(self, key):
        if key == "done":
            return (BlockRef(("result",), 0),)
        t, c = key
        return (BlockRef(("u", c), t + 1),)

    def producer(self, ref):
        if ref.block == ("result",):
            return "done"
        (_, c) = ref.block
        return None if ref.version == 0 else (ref.version - 1, c)

    def cost(self, key):
        return 10.0 if key == "done" else float(SIZE) * 3

    # -- computation ---------------------------------------------------------------

    def compute(self, key, ctx):
        if key == "done":
            total = sum(float(ctx.read(r).sum()) for r in self.inputs(key))
            ctx.write(BlockRef(("result",), 0), total)
            return
        t, c = key
        chunks = {x: ctx.read(BlockRef(("u", x), t)) for x in self._neighbors(c)}
        lo = chunks[c - 1][-1] if c - 1 in chunks else chunks[c][0]
        hi = chunks[c + 1][0] if c + 1 in chunks else chunks[c][-1]
        padded = np.concatenate(([lo], chunks[c], [hi]))
        smoothed = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
        ctx.write(BlockRef(("u", c), t + 1), smoothed)


def reference(data: np.ndarray) -> float:
    u = data.copy()
    for _ in range(STEPS):
        padded = np.concatenate(([u[0]], u, [u[-1]]))
        u = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
    return float(u.sum())


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.uniform(-1, 1, CHUNKS * SIZE)
    spec = JacobiSpec(data)
    n_tasks = validate_spec(spec)
    print(f"Jacobi stencil: {n_tasks} tasks, {STEPS} steps x {CHUNKS} chunks")

    def fresh_store():
        store = BlockStore(KeepK(2))  # two resident versions per chunk
        for c in range(CHUNKS):
            store.pin(BlockRef(("u", c), 0), data[c * SIZE:(c + 1) * SIZE].copy())
        return store

    want = reference(data)

    # Fault-free run.
    store = fresh_store()
    res = FTScheduler(spec, SimulatedRuntime(workers=4, seed=1), store=store).run()
    got = store.read(BlockRef(("result",), 0))
    print(f"fault-free : result={got:.6f}  (reference {want:.6f})  "
          f"makespan={res.makespan:.0f}")
    assert abs(got - want) < 1e-9

    # A late fault on a middle-version chunk: detection happens after the
    # buffer ring has moved on, so recovery replays part of the chain.
    store = fresh_store()
    trace = ExecutionTrace()
    plan = FaultPlan.single((STEPS // 2, CHUNKS // 2), "after_notify")
    injector = FaultInjector(plan, spec, store, trace)
    res = FTScheduler(spec, SimulatedRuntime(workers=4, seed=1),
                      store=store, hooks=injector, trace=trace).run()
    got = store.read(BlockRef(("result",), 0))
    print(f"with fault : result={got:.6f}  recoveries={trace.total_recoveries}  "
          f"re-executed={trace.reexecutions}  makespan={res.makespan:.0f}")
    assert abs(got - want) < 1e-9
    print("recovered through the reused buffers; result unchanged.")


if __name__ == "__main__":
    main()
