#!/usr/bin/env python
"""Fault-injection study on a real benchmark: tiled Cholesky.

Reproduces the paper's Section VI.B methodology on one application:
sweep the fault phase (before compute / after compute / after notify) and
the victim task type (v=0 / v=rand / v=last), inject, and report

* recovery overhead (percent increase over the fault-free FT run),
* actually re-executed tasks vs the sizing model's implied count,
* recovery-path event counts (recoveries, resets, rebuilt notify entries),

then verify every run's factor against ``numpy.linalg.cholesky``.

Run:  python examples/fault_injection_study.py [--n 128] [--block 16]
"""

import argparse

from repro.apps import AppConfig, make_app
from repro.core import FTScheduler
from repro.faults import FaultInjector, VersionIndex, plan_faults
from repro.harness.report import render_table
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

PHASES = ("before_compute", "after_compute", "after_notify")
TYPES = ("v=0", "v=rand", "v=last")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=128, help="matrix size")
    ap.add_argument("--block", type=int, default=16, help="tile size")
    ap.add_argument("--victims", type=int, default=4, help="faults per scenario")
    ap.add_argument("--workers", type=int, default=8)
    args = ap.parse_args()

    app = make_app("cholesky", AppConfig(n=args.n, block=args.block))
    index = VersionIndex(app)
    print(f"benchmark: {app.describe()}, {len(index.tasks)} tasks")
    print(f"victim pools: {index.type_counts()}")

    # Fault-free reference run (and the overhead baseline).
    store0 = app.make_store(True)
    base = FTScheduler(app, SimulatedRuntime(workers=args.workers, seed=0),
                       store=store0).run()
    app.verify(store0)
    print(f"fault-free: makespan={base.makespan:.0f} (result verified)\n")

    rows = []
    for phase in PHASES:
        for task_type in TYPES:
            plan = plan_faults(app, phase=phase, task_type=task_type,
                               count=args.victims, seed=7, index=index)
            store = app.make_store(True)
            trace = ExecutionTrace()
            injector = FaultInjector(plan, app, store, trace)
            res = FTScheduler(
                app, SimulatedRuntime(workers=args.workers, seed=0),
                store=store, hooks=injector, trace=trace,
            ).run()
            app.verify(store)  # Theorem 1, every time
            rows.append((
                phase,
                task_type,
                len(plan),
                plan.implied_reexecutions,
                res.trace.reexecutions,
                res.trace.total_recoveries,
                res.trace.resets,
                res.trace.notify_reinits,
                f"{100.0 * (res.makespan - base.makespan) / base.makespan:+.2f}",
            ))

    print(render_table(
        ["phase", "type", "victims", "implied", "re-executed",
         "recoveries", "resets", "reinits", "overhead %"],
        rows,
        title=f"Cholesky {args.n}x{args.n}/{args.block}: fault sweep "
              "(every run verified against numpy)",
    ))
    print("\nReadings: before_compute loses no work; after_compute re-runs "
          "victims; after_notify cascades through reused tiles.")


if __name__ == "__main__":
    main()
