#!/usr/bin/env python
"""Quickstart: define a task graph, run it, kill a task, watch it recover.

This walks through the library's whole surface in ~80 lines:

1. describe a dynamic task graph (keys, ordered predecessors/successors,
   a compute function) -- here a tiny blocked-wavefront computation;
2. execute it with the baseline NABBIT work-stealing scheduler;
3. execute it with the fault-tolerant scheduler and an injected
   after-compute soft fault, and verify the result is bit-identical.

Run:  python examples/quickstart.py
"""

from repro import (
    BlockRef,
    FTScheduler,
    NabbitScheduler,
    SimulatedRuntime,
    grid_graph,
)
from repro.faults import FaultInjector, FaultPlan
from repro.memory import BlockStore
from repro.runtime.tracing import ExecutionTrace


def main() -> None:
    # -- 1. A task graph ---------------------------------------------------
    # grid_graph builds the LCS/Smith-Waterman dependence shape: task
    # (i, j) waits for its up/left/diagonal neighbours.  Its default
    # compute body folds predecessor outputs into a deterministic tuple,
    # so any two correct executions produce identical results.
    spec = grid_graph(8, 8)
    sink = BlockRef(spec.sink_key(), 0)

    # -- 2. Baseline NABBIT ------------------------------------------------
    baseline = NabbitScheduler(spec, SimulatedRuntime(workers=8, seed=0)).run()
    expected = baseline.store.read(sink)
    print(f"baseline: makespan={baseline.makespan:10.1f} virtual units, "
          f"{baseline.trace.total_computes} tasks, "
          f"{baseline.run.steals} steals")

    # -- 3. Fault-tolerant execution with an injected fault -----------------
    # Plan: task (4, 4) suffers a detected soft fault right after its
    # compute finishes -- its descriptor and freshly produced data block
    # are corrupted, and every later access observes the error.
    plan = FaultPlan.single((4, 4), "after_compute")
    store = BlockStore()
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace)

    ft = FTScheduler(
        spec,
        SimulatedRuntime(workers=8, seed=0),
        store=store,
        hooks=injector,
        trace=trace,
    ).run()

    print(f"ft+fault: makespan={ft.makespan:10.1f} virtual units, "
          f"recoveries={ft.trace.total_recoveries}, "
          f"re-executed tasks={ft.trace.reexecutions}")

    # -- 4. Theorem 1 in action ---------------------------------------------
    assert store.read(sink) == expected, "fault changed the result!"
    assert ft.trace.recoveries[(4, 4)] == 1, "recovered more than once!"
    overhead = 100.0 * (ft.makespan - baseline.makespan) / baseline.makespan
    print(f"same result as the fault-free run; overhead {overhead:+.1f}% "
          "(includes FT bookkeeping + the one recovery)")


if __name__ == "__main__":
    main()
