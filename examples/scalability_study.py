#!/usr/bin/env python
"""Scalability study: speedups, FT overhead, and the serial-recovery wall.

Three views on one benchmark (default: LU):

1. Figure 4 style -- speedup of baseline vs fault-tolerant scheduling as
   workers grow, with the Section V bound evaluated alongside;
2. Figure 7 style -- recovery overhead vs worker count for a 5% loss,
   showing the paper's headline trend (serial recovery chains hurt more
   as the fault-free makespan shrinks);
3. work-stealing internals -- steals and utilization per worker count.

Run:  python examples/scalability_study.py [--app lu] [--reps 3]

``--real`` swaps the virtual-time simulator for
:class:`~repro.runtime.procpool.ProcessRuntime`: full NumPy kernels on
real cores over a shared-memory store, makespans in wall-clock seconds,
worker counts capped at the host's core count.  Use ``--scale tiny`` to
keep a real run short.
"""

import argparse
import os

from repro.analysis import bound_report, summarize
from repro.apps import make_app
from repro.faults import FaultInjector, VersionIndex, plan_faults
from repro.core import FTScheduler, NabbitScheduler
from repro.harness.report import render_table
from repro.runtime import ProcessRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

WORKERS = (1, 2, 4, 8, 16, 32, 44)


def run(app, ft, workers, seed, plan=None, real=False):
    store = app.make_store(ft, shared=real)
    trace = ExecutionTrace()
    hooks = None
    if plan is not None:
        hooks = FaultInjector(plan, app, store, trace)
    cls = FTScheduler if ft else NabbitScheduler
    kwargs = {"store": store, "trace": trace}
    if ft:
        kwargs["hooks"] = hooks
    if real:
        runtime = ProcessRuntime(workers=workers, seed=seed)
    else:
        runtime = SimulatedRuntime(workers=workers, seed=seed)
    sched = cls(app, runtime, **kwargs)
    result = sched.run()
    if real:
        store.close()
    return result


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--app", default="lu", help="benchmark name")
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--scale", default="default",
                    choices=("tiny", "default", "large"))
    ap.add_argument("--real", action="store_true",
                    help="run full kernels on ProcessRuntime (wall-clock)")
    args = ap.parse_args()

    global WORKERS
    if args.real:
        cores = os.cpu_count() or 1
        WORKERS = tuple(p for p in (1, 2, 4, 8, 16, 32) if p <= cores) or (1,)

    app = make_app(args.app, scale=args.scale, light=not args.real)
    mode = "wall-clock via ProcessRuntime" if args.real else "virtual time via simulator"
    print(f"benchmark: {app.describe()}  [{mode}]\n")

    # -- 1. Speedup + theory bound -------------------------------------------------
    rows = []
    seq = {}
    for ft in (False, True):
        seq[ft] = run(app, ft, 1, 0, real=args.real).makespan
    rep1 = bound_report(app, workers=1)
    for p in WORKERS:
        base = summarize(
            [run(app, False, p, s, real=args.real).makespan for s in range(args.reps)])
        ftm = summarize(
            [run(app, True, p, s, real=args.real).makespan for s in range(args.reps)])
        bound = bound_report(app, workers=p)
        rows.append((
            p,
            f"{seq[False] / base.mean:.2f}",
            f"{seq[True] / ftm.mean:.2f}",
            f"{100.0 * (ftm.mean - base.mean) / base.mean:+.2f}",
            f"{bound.completion_bound / rep1.completion_bound:.3f}",
        ))
    print(render_table(
        ["P", "speedup (baseline)", "speedup (FT)", "FT gap %", "Thm2 bound (rel P=1)"],
        rows, title="Figure 4 view: speedup and the Theorem 2 bound"))

    # -- 2. Recovery overhead vs P ----------------------------------------------------
    index = VersionIndex(app)
    rows = []
    for p in (WORKERS if args.real else (1, 8, 16, 32, 44)):
        overheads = []
        for s in range(args.reps):
            base = run(app, True, p, s, real=args.real).makespan
            plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                               fraction=0.05, seed=s, index=index)
            faulty = run(app, True, p, s, plan=plan, real=args.real).makespan
            overheads.append(100.0 * (faulty - base) / base)
        o = summarize(overheads)
        rows.append((p, f"{o.mean:.2f} ± {o.std:.2f}"))
    print()
    print(render_table(["P", "recovery overhead % (5% loss)"], rows,
                       title="Figure 7 view: the serial-recovery wall"))

    # -- 3. Work-stealing internals -------------------------------------------------------
    rows = []
    for p in WORKERS:
        res = run(app, True, p, 1, real=args.real)
        rows.append((p, res.run.steals, res.run.failed_steals,
                     f"{res.run.utilization:.2%}"))
    print()
    print(render_table(["P", "steals", "failed probes", "utilization"], rows,
                       title="Work-stealing internals (FT scheduler)"))


if __name__ == "__main__":
    main()
