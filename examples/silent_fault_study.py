#!/usr/bin/env python
"""Silent-fault study: detection policy x fault rate, coverage vs cost.

The paper's scheduler recovers any fault *once it is detected*; this
study exercises the other half of the story (the ``repro.detect``
subsystem).  Silent faults -- payload mutations with no corruption flag
-- are injected at increasing counts, and each detection configuration
is scored on:

* **coverage**: detected / injected, from the post-run escape audit,
* **outcome**: runs whose final result still verified (escapes may also
  crash a downstream kernel, e.g. a perturbed Cholesky tile is no
  longer positive definite),
* **cost**: replica re-executions per computed task, and the wall-clock
  slowdown of the checksummed store on a fault-free run.

Run:  python examples/silent_fault_study.py [--app lcs] [--reps 3]
"""

import argparse
import time

from repro import (
    ChecksumStore,
    CompositeHooks,
    FTScheduler,
    ReplicationDetector,
    SilentFaultInjector,
    account_escapes,
    plan_silent_faults,
)
from repro.apps import make_app
from repro.detect import policy_from_name
from repro.harness.report import render_table
from repro.memory import BlockStore, KeepK
from repro.obs.events import EventLog
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

MODES = ("off", "checksum", "replicate:all", "replicate:sampled:0.5",
         "replicate:critical:2", "both")
COUNTS = (1, 2, 4)


def build(app, mode, seed):
    """(store, detector) for one detection configuration."""
    policy = app.ft_policy
    if mode.startswith("replicate") or mode == "both":
        if policy.keep is not None and policy.keep < 2:
            policy = KeepK(2)  # replicas must be able to re-read inputs
    store = ChecksumStore(policy) if mode in ("checksum", "both") else BlockStore(policy)
    detector = None
    if mode.startswith("replicate") or mode == "both":
        name = mode.partition(":")[2] or "all"
        detector = ReplicationDetector(app, store, policy=policy_from_name(name, seed=seed))
    return store, detector


def one_run(app, mode, count, seed):
    store, detector = build(app, mode, seed)
    app.seed_store(store)
    trace, log = ExecutionTrace(), EventLog()
    injector = SilentFaultInjector(
        plan_silent_faults(app, count=count, seed=seed), app, store, trace=trace)
    hooks = CompositeHooks(injector, detector) if detector else injector
    crashed = False
    try:
        FTScheduler(app, SimulatedRuntime(workers=8, seed=seed), store=store,
                    hooks=hooks, trace=trace, event_log=log).run()
    except Exception:
        crashed = True  # an escaped SDC took the kernel down with it
    report = account_escapes(injector, log, trace)
    ok = False
    if not crashed:
        try:
            app.verify(store)
            ok = True
        except AssertionError:
            ok = False
    return report, ok, crashed, trace


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--app", default="lcs")
    ap.add_argument("--reps", type=int, default=3)
    args = ap.parse_args()
    app = make_app(args.app, scale="tiny")

    print(f"Silent-fault study: {args.app} (tiny scale), "
          f"{args.reps} runs per cell\n")

    rows = []
    for mode in MODES:
        for count in COUNTS:
            inj = det = esc = replicas = computes = oks = crashes = 0
            for rep in range(args.reps):
                report, ok, crashed, trace = one_run(app, mode, count, seed=rep)
                inj += report.injected
                det += report.detected
                esc += report.escaped
                replicas += report.replica_runs
                computes += trace.tasks_computed
                oks += ok
                crashes += crashed
            rows.append((
                mode, count, inj, det, esc,
                det / inj if inj else 1.0,
                replicas / computes if computes else 0.0,
                f"{oks}/{args.reps}",
                f"{crashes}/{args.reps}",
            ))
    print(render_table(
        ("policy", "faults", "inj", "det", "esc", "coverage",
         "replicas/task", "correct", "crashed"),
        rows,
        title="Coverage by detection policy and fault count",
    ))

    # Fault-free wall-clock overhead of the checksum layer (real CPU work
    # the virtual clock would not charge), minimum over reps.
    def best_inline(mk_store):
        best = float("inf")
        for _ in range(max(args.reps, 3)):
            store = mk_store()
            app.seed_store(store)
            t0 = time.perf_counter()
            FTScheduler(app, InlineRuntime(), store=store).run()
            best = min(best, time.perf_counter() - t0)
        return best

    base = best_inline(lambda: BlockStore(app.ft_policy))
    rows = [("plain store", base, 1.0)]
    for digest in ("crc32", "blake2b"):
        t = best_inline(lambda d=digest: ChecksumStore(app.ft_policy, digest=d))
        rows.append((f"checksum ({digest})", t, t / base if base else float("nan")))
    print()
    print(render_table(
        ("store", "best wall-clock (s)", "slowdown x"),
        rows,
        title="Fault-free checksum overhead (inline runtime)",
        float_fmt="{:.3f}",
    ))


if __name__ == "__main__":
    main()
