#!/usr/bin/env python
"""Online soft-error rate sweep: overhead as errors become frequent.

The paper motivates non-collective recovery with the observation that
"with frequent errors, the application's progress may be extremely slow"
under checkpoint/restart.  This example drives the *online* probabilistic
injector (faults strike any task, any incarnation, at a rate -- closer to
real silent-data-corruption arrival than the paper's controlled plans)
and shows:

* overhead grows smoothly with the per-task fault rate,
* execution completes and verifies even when >30% of tasks are struck,
* recovery itself being struck (incarnations > 1) is routine at high
  rates and still converges,

finishing with a worker-occupancy Gantt chart of a faulty run so the
recovery chains are visible.

Run:  python examples/soft_error_rates.py [--app lcs]
"""

import argparse

from repro.apps import make_app
from repro.core import FTScheduler
from repro.faults import RandomInjector
from repro.harness.plot import gantt_chart
from repro.harness.report import render_table
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3)


def run_at_rate(app, rate, seed=0, workers=8, record=False):
    store = app.make_store(True)
    trace = ExecutionTrace()
    injector = RandomInjector(app, store, seed=seed, after_compute=rate, trace=trace)
    runtime = SimulatedRuntime(workers=workers, seed=seed, record_timeline=record)
    result = FTScheduler(app, runtime, store=store, hooks=injector, trace=trace).run()
    return result, injector, store, runtime


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--app", default="lcs")
    ap.add_argument("--workers", type=int, default=8)
    args = ap.parse_args()

    # Full-kernel app at tiny scale so every run is verified numerically.
    app = make_app(args.app, scale="tiny")
    base, _, store0, _ = run_at_rate(app, 0.0, workers=args.workers)
    app.verify(store0)

    rows = []
    for rate in RATES:
        result, injector, store, _ = run_at_rate(app, rate, seed=7, workers=args.workers)
        app.verify(store)  # Theorem 1 at every rate
        struck_recoveries = sum(1 for _, life, _ in injector.fired if life > 1)
        rows.append((
            f"{rate:.0%}",
            len(injector.fired),
            struck_recoveries,
            result.trace.total_recoveries,
            result.trace.reexecutions,
            f"{100.0 * (result.makespan - base.makespan) / base.makespan:+.1f}",
        ))

    print(f"benchmark: {app.describe()}, P={args.workers} "
          "(after-compute faults, results verified at every rate)\n")
    print(render_table(
        ["fault rate", "faults fired", "...on recoveries", "recoveries",
         "re-executed", "overhead %"],
        rows, title="Online soft-error rate sweep",
    ))

    # Show one faulty execution as a Gantt chart.
    _, _, _, runtime = run_at_rate(app, 0.2, seed=7, workers=args.workers, record=True)
    print()
    print(gantt_chart(runtime.timeline, title="Worker occupancy at 20% fault rate"))


if __name__ == "__main__":
    main()
