#!/usr/bin/env python
"""Verification study: explore schedules of every benchmark, check the
paper's guarantees on each trace, and audit what the exploration proved.

Three questions, answered in order:

1. **Does the scheduler hold its guarantees?**  For each benchmark a
   bounded schedule space (steal seeds x worker widths x spawn
   perturbations + DPOR-lite steal branches) is explored under fault
   injection, and every trace is replayed through the Guarantee 1-4
   invariant checker (:mod:`repro.verify.invariants`).
2. **Did the exploration exercise anything?**  A clean verdict over
   schedules that never recovered a task proves nothing, so the study
   reports per-invariant *coverage*: how many schedules hit each
   protocol path (recovery, reset, reinit, stale notification).
3. **Would the checker notice a broken scheduler?**  Two mutants with
   seeded protocol bugs (a skipped ATOMICBITUNSET gate; a recovery path
   that ignores both G1 dedup layers) run through the same explorer and
   must be convicted.

Run:  python examples/verify_study.py [--apps lcs,fw] [--seeds 4] [--phase before_compute]
"""

import argparse
import time

from repro.harness.report import render_table
from repro.obs.events import EventKind
from repro.verify.explore import explore_app, make_app_case, mutation_study

APPS = ("lcs", "sw", "fw", "lu", "cholesky")
PATHS = (
    ("recovery", EventKind.RECOVERY),
    ("reset", EventKind.RESET),
    ("reinit", EventKind.REINIT),
    ("stale-notify", EventKind.NOTIFY_STALE),
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--apps", type=str, default=",".join(APPS))
    ap.add_argument("--phase", default="before_compute",
                    choices=("before_compute", "after_compute", "after_notify"))
    ap.add_argument("--seeds", type=int, default=4)
    ap.add_argument("--branch-budget", type=int, default=8)
    args = ap.parse_args()
    apps = tuple(args.apps.split(","))

    print("Schedule exploration with invariant checking")
    print(f"(phase={args.phase}, seeds={args.seeds}, widths 1 and 3, "
          f"branch budget {args.branch_budget})\n")

    t0 = time.time()
    rows = []
    all_clean = True
    for app in apps:
        report = explore_app(
            app,
            fault_phase=args.phase,
            seeds=range(args.seeds),
            perturbations=1,
            branch_budget=args.branch_budget,
        )
        summary = report.summary()
        all_clean = all_clean and report.clean
        cov = summary["coverage"]
        rows.append([
            app,
            summary["schedules"],
            "clean" if report.clean else f"{report.violations} VIOLATION(S)",
            *(cov.get(kind.value, 0) for _, kind in PATHS),
        ])
        for o in report.counterexamples():
            print(f"  !! {app} {o.schedule}: "
                  f"{o.error or '; '.join(str(v) for v in o.violations[:3])}")
    print(render_table(
        ["app", "schedules", "verdict", *(label for label, _ in PATHS)], rows))
    print(f"\nInvariant coverage: cells count schedules in which that protocol "
          f"path fired.\nAll benchmarks clean: {all_clean}  "
          f"({time.time() - t0:.1f}s)")

    print("\nMutation study: the same explorer must convict seeded protocol bugs")
    results = mutation_study(
        make_app_case("lcs", fault_phase=args.phase),
        seeds=range(args.seeds),
        perturbations=1,
        branch_budget=args.branch_budget,
    )
    detected = 0
    for r in results.values():
        print(f"  {r.describe()}")
        detected += r.detected
    print(f"\nSeeded bugs detected: {detected}/{len(results)}")
    return 0 if all_clean and detected == len(results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
