"""repro: fault-tolerant dynamic task graph scheduling.

A from-scratch reproduction of Kurt, Krishnamoorthy, Agrawal & Agrawal,
"Fault-Tolerant Dynamic Task Graph Scheduling" (SC 2014): a NABBIT-style
work-stealing scheduler for dynamic task graphs, augmented with selective
and localized recovery from detected soft faults.

Quick start::

    from repro import FTScheduler, SimulatedRuntime, grid_graph

    spec = grid_graph(16, 16)
    result = FTScheduler(spec, SimulatedRuntime(workers=8, seed=0)).run()
    print(f"makespan={result.makespan:.0f}  computes={result.trace.total_computes}")

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.exceptions import (
    DataCorruptionError,
    FaultError,
    OverwrittenError,
    ReproError,
    SchedulerError,
    TaskCorruptionError,
)
from repro.graph import (
    BlockRef,
    ExplicitTaskGraph,
    GraphStats,
    TaskGraphSpec,
    TaskSpecBase,
    chain_graph,
    diamond_graph,
    fork_join_graph,
    graph_stats,
    grid_graph,
    random_dag,
    validate_spec,
)
from repro.memory import BlockStore, KeepK, Reuse, SingleAssignment, TwoVersion
from repro.runtime import (
    CostModel,
    InlineRuntime,
    RunResult,
    SimulatedRuntime,
    ThreadedRuntime,
)
from repro.core import (
    CompositeHooks,
    FTScheduler,
    NabbitScheduler,
    SchedulerResult,
    TaskStatus,
    run_scheduler,
)
from repro.detect import (
    ChecksumStore,
    ReplicateAll,
    ReplicateByCriticality,
    ReplicateNone,
    ReplicateSampled,
    ReplicationDetector,
    SilentFaultInjector,
    account_escapes,
    plan_silent_faults,
)
from repro.obs import Event, EventKind, EventLog

__version__ = "1.0.0"

__all__ = [
    # exceptions
    "ReproError",
    "SchedulerError",
    "FaultError",
    "TaskCorruptionError",
    "DataCorruptionError",
    "OverwrittenError",
    # graph
    "BlockRef",
    "TaskGraphSpec",
    "TaskSpecBase",
    "ExplicitTaskGraph",
    "GraphStats",
    "graph_stats",
    "validate_spec",
    "chain_graph",
    "diamond_graph",
    "fork_join_graph",
    "grid_graph",
    "random_dag",
    # memory
    "BlockStore",
    "SingleAssignment",
    "Reuse",
    "TwoVersion",
    "KeepK",
    # runtime
    "CostModel",
    "InlineRuntime",
    "SimulatedRuntime",
    "ThreadedRuntime",
    "RunResult",
    # schedulers
    "FTScheduler",
    "NabbitScheduler",
    "SchedulerResult",
    "TaskStatus",
    "run_scheduler",
    "CompositeHooks",
    # silent-fault detection
    "ChecksumStore",
    "SilentFaultInjector",
    "ReplicationDetector",
    "ReplicateAll",
    "ReplicateNone",
    "ReplicateByCriticality",
    "ReplicateSampled",
    "plan_silent_faults",
    "account_escapes",
    # observability
    "Event",
    "EventKind",
    "EventLog",
    "__version__",
]
