"""Top-level CLI: ``python -m repro <command>``.

Commands:

* ``selftest`` -- end-to-end sanity pass: run every benchmark at tiny
  scale with real kernels on all three runtimes, inject one fault per
  lifetime phase, and verify every result numerically.  Exit code 0 means
  the install works.
* ``harness`` -- forwards to ``python -m repro.harness`` (all tables and
  figures); accepts the same flags.
* ``trace`` -- run one app with structured event tracing: per-worker
  metrics, the recovery timeline, Chrome trace / JSONL export
  (``python -m repro trace cholesky --chrome trace.json``; see
  docs/OBSERVABILITY.md).
* ``detect`` -- silent-fault detection: coverage and overhead tables for
  the checksummed store and selective task replication, or the CI install
  check (``python -m repro detect --selftest``; see docs/DETECTION.md).
* ``top`` -- real-time run monitor: launch one benchmark on the process
  pool (or thread pool) with live metrics and redraw per-worker
  utilization, queue depths, recovery/SDC counters, and dispatch
  latency while it runs; prints the overhead-attribution budget when
  the run quiesces (``python -m repro top cholesky --serve``; see
  docs/OBSERVABILITY.md).
* ``verify`` -- static analysis and protocol verification of the
  scheduler itself: concurrency lints, the Guarantee 1-4 trace-invariant
  checker, and bounded schedule exploration with seeded-bug mutation
  testing (``python -m repro verify --selftest``; see
  docs/VERIFICATION.md).
* ``perf`` -- the statistical microbenchmark suite: scheduler structure
  ops, tracing-on/off throughput, threaded contention, simulator
  events/sec, end-to-end runs; writes ``BENCH_<n>.json`` and gates
  against a committed baseline (``python -m repro perf --baseline
  BENCH_seed.json``; see docs/PERFORMANCE.md).
* ``procpool`` -- multi-process runtime smoke test: run real-kernel apps
  through :class:`~repro.runtime.procpool.ProcessRuntime` over a
  shared-memory store, assert bit-identical parity with the inline
  runtime, and exercise worker-death recovery (used by the CI procpool
  job; skips gracefully on single-core hosts unless ``--force``).
* ``worker`` -- run a :class:`~repro.runtime.cluster.WorkerServer`: a
  compute server a ClusterRuntime parent dispatches task phases to
  (``python -m repro worker --listen tcp://0.0.0.0:7070``; see
  docs/DISTRIBUTED.md).
* ``cluster`` -- distributed execution over localhost TCP workers:
  ``--selftest`` spawns real worker processes and asserts parity,
  ``kill -9`` recovery, and a live /metrics scrape (the CI cluster
  job); ``--addresses`` runs the parity check against workers you
  started elsewhere.
* ``validate`` -- structural validation of one benchmark's task graph
  (acyclicity, dependency closure, sink reachability) without running it.
* ``about`` -- what this package reproduces and where to look next.
"""

from __future__ import annotations

import sys
import time


def _selftest() -> int:
    from repro.apps import APP_NAMES, make_app
    from repro.core import FTScheduler, NabbitScheduler
    from repro.faults import FaultInjector, plan_faults
    from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
    from repro.runtime.tracing import ExecutionTrace

    failures = 0
    t0 = time.time()
    for name in APP_NAMES:
        app = make_app(name, scale="tiny")
        checks: list[tuple[str, bool]] = []
        try:
            store = app.make_store(False)
            NabbitScheduler(app, InlineRuntime(), store=store).run()
            app.verify(store)
            checks.append(("baseline/inline", True))

            store = app.make_store(True)
            FTScheduler(app, SimulatedRuntime(workers=4, seed=1), store=store).run()
            app.verify(store)
            checks.append(("ft/simulated", True))

            store = app.make_store(True)
            FTScheduler(app, ThreadedRuntime(workers=4, seed=1), store=store).run()
            app.verify(store)
            checks.append(("ft/threaded", True))

            for phase in ("before_compute", "after_compute", "after_notify"):
                store = app.make_store(True)
                trace = ExecutionTrace()
                plan = plan_faults(app, phase=phase, task_type="v=rand", count=2, seed=3)
                injector = FaultInjector(plan, app, store, trace)
                FTScheduler(
                    app, SimulatedRuntime(workers=4, seed=2),
                    store=store, hooks=injector, trace=trace,
                ).run()
                app.verify(store)
                checks.append((f"recover/{phase}", True))
        except Exception as exc:  # report and continue with the next app
            checks.append((f"FAILED: {type(exc).__name__}: {exc}", False))
            failures += 1
        status = "ok" if all(ok for _, ok in checks) else "FAIL"
        detail = ", ".join(label for label, _ in checks)
        print(f"  {name:9s} [{status}]  {detail}")
    print(f"selftest {'passed' if not failures else 'FAILED'} in {time.time() - t0:.1f}s")
    return 1 if failures else 0


def _procpool(argv: list[str]) -> int:
    import argparse
    import os

    ap = argparse.ArgumentParser(
        prog="python -m repro procpool",
        description="Smoke-test the multi-process runtime: inline-parity "
        "on real kernels over a shared-memory store, plus worker-death "
        "recovery.",
    )
    ap.add_argument("--workers", type=int, default=2, help="worker processes (default 2)")
    ap.add_argument("--apps", default="lcs,cholesky",
                    help="comma-separated app names (default: lcs,cholesky)")
    ap.add_argument("--force", action="store_true",
                    help="run even on a single-core host")
    args = ap.parse_args(argv)

    cores = os.cpu_count() or 1
    if cores < 2 and not args.force:
        # Graceful skip, visibly: the dispatch path is still covered by
        # the tier-1 tests; a 1-core box just can't say anything useful
        # about a process pool.
        print(f"procpool: skipped (host has {cores} core; rerun with --force)")
        return 0

    import numpy as np

    from repro.apps import make_app
    from repro.core import FTScheduler
    from repro.runtime import InlineRuntime, ProcessRuntime

    t0 = time.time()
    failures = 0
    for name in [a for a in args.apps.split(",") if a]:
        try:
            app = make_app(name, scale="tiny")
            store = app.make_store(True)
            FTScheduler(app, InlineRuntime(), store=store).run()
            want = app.extract(store)

            app = make_app(name, scale="tiny")
            store = app.make_store(True, shared=True)
            FTScheduler(app, ProcessRuntime(workers=args.workers, seed=0), store=store).run()
            got = app.extract(store)
            store.close()
            same = (got == want).all() if isinstance(want, np.ndarray) else got == want
            if not same:
                raise AssertionError("process-runtime result differs from inline")

            app = make_app(name, scale="tiny")
            store = app.make_store(True, shared=True)
            rt = ProcessRuntime(workers=args.workers, seed=0, die_on=[app.sink_key()])
            FTScheduler(app, rt, store=store).run()
            app.verify(store)
            store.close()
            if rt.worker_crashes != 1:
                raise AssertionError(f"expected 1 worker crash, saw {rt.worker_crashes}")
            print(f"  {name:9s} [ok]  parity, crash-recovery ({args.workers} workers)")
        except Exception as exc:
            print(f"  {name:9s} [FAIL]  {type(exc).__name__}: {exc}")
            failures += 1
    print(f"procpool smoke {'passed' if not failures else 'FAILED'} in {time.time() - t0:.1f}s")
    return 1 if failures else 0


def _validate(argv: list[str]) -> int:
    import argparse

    from repro.apps import APP_NAMES, make_app
    from repro.apps.registry import AppConfig
    from repro.graph.validate import GraphValidationError, validate_spec

    ap = argparse.ArgumentParser(
        prog="python -m repro validate",
        description="Validate one benchmark's task graph structurally "
        "(acyclicity, dependency closure, sink reachability) without running it.",
    )
    ap.add_argument("app", choices=APP_NAMES)
    ap.add_argument("--n", type=int, default=None, help="problem size (app-specific)")
    ap.add_argument("--block", type=int, default=None, help="block/tile size")
    ap.add_argument("--scale", choices=("tiny", "default", "large"), default="tiny",
                    help="preset instance scale (ignored when --n is given)")
    ap.add_argument("--max-tasks", type=int, default=None,
                    help="abort if the reachable graph exceeds this many tasks")
    args = ap.parse_args(argv)

    config = None
    if args.n is not None:
        config = AppConfig(n=args.n, block=args.block) if args.block else AppConfig(n=args.n)
    app = make_app(args.app, config=config, scale=args.scale)
    try:
        tasks = validate_spec(app, max_tasks=args.max_tasks)
    except GraphValidationError as exc:
        print(f"{args.app}: INVALID -- {exc}")
        return 1
    print(f"{args.app}: valid task graph, {tasks} reachable tasks from sink {app.sink_key()!r}")
    return 0


def _about() -> int:
    print(__doc__)
    print(
        "This package reproduces Kurt, Krishnamoorthy, Agrawal & Agrawal,\n"
        '"Fault-Tolerant Dynamic Task Graph Scheduling" (SC 2014).\n\n'
        "Start with README.md; the per-experiment record is EXPERIMENTS.md;\n"
        "the algorithm walkthrough is docs/ALGORITHM.md; run\n"
        "`python -m repro selftest` to validate the install and\n"
        "`python -m repro.harness` to regenerate every table and figure."
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd, rest = argv[0], argv[1:]
    if cmd == "selftest":
        return _selftest()
    if cmd == "harness":
        from repro.harness.__main__ import main as harness_main

        return harness_main(rest)
    if cmd == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(rest)
    if cmd == "top":
        from repro.obs.top import main as top_main

        return top_main(rest)
    if cmd == "detect":
        from repro.detect.cli import main as detect_main

        return detect_main(rest)
    if cmd == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(rest)
    if cmd == "perf":
        from repro.perf.cli import main as perf_main

        return perf_main(rest)
    if cmd == "procpool":
        return _procpool(rest)
    if cmd == "worker":
        from repro.runtime.cluster_cli import worker_main

        return worker_main(rest)
    if cmd == "cluster":
        from repro.runtime.cluster_cli import cluster_main

        return cluster_main(rest)
    if cmd == "validate":
        return _validate(rest)
    if cmd == "about":
        return _about()
    print(
        f"unknown command {cmd!r}; expected "
        "selftest | harness | trace | top | detect | verify | perf | procpool | "
        "worker | cluster | validate | about"
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
