"""Theory and measurement analysis: Section V bounds, summary statistics."""

from repro.analysis.bounds import BoundReport, bound_report, nabbit_bound
from repro.analysis.stats import Summary, geometric_mean, percent_overhead, speedup, summarize

__all__ = [
    "BoundReport",
    "bound_report",
    "nabbit_bound",
    "Summary",
    "summarize",
    "percent_overhead",
    "speedup",
    "geometric_mean",
]
