"""Section V theory: a-posteriori work/span/completion-time bounds.

Given an execution's per-task counts ``N`` (from the trace) these
functions evaluate the quantities of Lemmas 4 and 6 and Theorem 2:

.. math::

   T_1 &= \\sum_{A} N(A)\\,(W(com(A)) + |out(A)|) \\\\
   T_\\infty &= \\max_{p} \\sum_{X \\in p} N(X)\\,S(com(X)) \\\\
   W(E_N) &= T_1 + \\mathcal{N}\\,|E|\\,\\min\\{d_{in}, P\\} \\\\
   S(E_N) &\\le O(T_\\infty + \\mathcal{N} M d_{out} + \\mathcal{N} M \\min\\{d_{in}, P\\}) \\\\
   T_P &= O(T_1/P + T_\\infty + \\lg(P/\\epsilon) + \\mathcal{N} M d + \\mathcal{N} L(D)),
   \\quad L(D) = (|E|/P + M) \\min\\{d, P\\}

with :math:`\\mathcal{N} = \\max_A N(A)` and ``M`` the maximum path length
in *nodes*.  The bounds are upper bounds up to constant factors; the
harness checks *measured makespan <= bound* and *bound tightness ratios*,
and the no-fault case reduces to the original NABBIT bound (N = 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.graph.analysis import graph_stats, work_and_span
from repro.graph.taskspec import Key, TaskGraphSpec


@dataclass(frozen=True)
class BoundReport:
    """All Section V quantities for one execution."""

    t1: float
    t_inf: float
    work_bound: float
    span_bound: float
    completion_bound: float
    max_executions: int
    max_degree: int
    max_path_nodes: int
    edges: int
    workers: int

    @property
    def average_parallelism(self) -> float:
        return self.t1 / self.t_inf if self.t_inf else float("inf")

    def check(self, makespan: float, slack: float = 1.0) -> bool:
        """True iff ``makespan <= slack * completion_bound`` -- with
        ``slack`` absorbing the bound's hidden constant (>= 1)."""
        return makespan <= slack * self.completion_bound


def bound_report(
    spec: TaskGraphSpec,
    executions: Mapping[Key, int] | None = None,
    workers: int = 1,
    epsilon: float = 0.01,
) -> BoundReport:
    """Evaluate the Theorem 2 completion-time bound for an execution.

    ``executions`` is the trace's N map (missing keys default to 1);
    ``epsilon`` is the failure probability in the ``lg(P/eps)`` term.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    stats = graph_stats(spec)
    t1, t_inf = work_and_span(spec, executions)
    n_max = max((int(v) for v in (executions or {}).values()), default=1)
    n_max = max(n_max, 1)
    m = stats.critical_path + 1  # path length in nodes
    d = stats.max_degree
    d_in = stats.max_in_degree
    d_out = stats.max_out_degree
    p = workers
    work_bound = t1 + n_max * stats.edges * min(d_in, p)
    span_bound = t_inf + n_max * m * d_out + n_max * m * min(d_in, p)
    l_d = (stats.edges / p + m) * min(d, p)
    completion = (
        t1 / p
        + t_inf
        + math.log2(max(p / epsilon, 2.0))
        + n_max * m * d
        + n_max * l_d
    )
    return BoundReport(
        t1=t1,
        t_inf=t_inf,
        work_bound=work_bound,
        span_bound=span_bound,
        completion_bound=completion,
        max_executions=n_max,
        max_degree=d,
        max_path_nodes=m,
        edges=stats.edges,
        workers=p,
    )


def nabbit_bound(spec: TaskGraphSpec, workers: int, epsilon: float = 0.01) -> float:
    """The original no-fault NABBIT bound
    ``O(T1/P + T_inf * min(P, d))`` plus the scheduler's lg term --
    what Theorem 2 must reduce to when every N(A) = 1."""
    stats = graph_stats(spec)
    t1, t_inf = work_and_span(spec, None)
    return (
        t1 / workers
        + t_inf * min(workers, stats.max_degree)
        + math.log2(max(workers / epsilon, 2.0))
    )
