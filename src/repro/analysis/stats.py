"""Small summary-statistics helpers used by the experiment harness.

The paper reports arithmetic means over 10 runs with standard deviations
as error bars (Section VI); Table II additionally reports min/max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / min / max / standard deviation of one measurement series."""

    mean: float
    minimum: float
    maximum: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f} (min {self.minimum:.2f}, max {self.maximum:.2f}, n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Arithmetic mean and population standard deviation (paper style)."""
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("empty measurement series")
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n
    return Summary(mean=mean, minimum=min(xs), maximum=max(xs), std=math.sqrt(var), n=n)


def percent_overhead(measured: float, baseline: float) -> float:
    """Relative slowdown in percent (can be negative, as in Fig. 5a)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (measured - baseline) / baseline


def speedup(t1: float, tp: float) -> float:
    """Classic speedup T(1) / T(P)."""
    if tp <= 0:
        raise ValueError("parallel time must be positive")
    return t1 / tp


def geometric_mean(values: Sequence[float]) -> float:
    xs = [float(v) for v in values]
    if not xs or any(x <= 0 for x in xs):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))
