"""The paper's five benchmark applications as task-graph specs.

=============  ==========================================  =================
Benchmark      Structure                                   Memory policy
=============  ==========================================  =================
LCS            2-D wavefront, single assignment            single-assignment
Smith-         2-D wavefront, two-row rotating buffers     reuse
Waterman
Floyd-         3-phase blocked APSP, in-place blocks,      reuse (baseline) /
Warshall       WAR anti-dependence edges                   two-version (FT)
LU             right-looking tiles, unpivoted              reuse
Cholesky       right-looking tiles, lower                  reuse
=============  ==========================================  =================

``make_app(name, scale=...)`` instantiates any of them at test (``tiny``),
experiment (``default``) or Table I (``paper``) scale.
"""

from repro.apps.base import AppConfig, Application, ordered_preds
from repro.apps.cholesky import CholeskyApp, random_spd_matrix
from repro.apps.floyd_warshall import FloydWarshallApp, fw_reference, random_distance_matrix
from repro.apps.lcs import LCSApp, lcs_reference, random_sequences
from repro.apps.lu import LUApp, random_dd_matrix
from repro.apps.registry import (
    APP_CLASSES,
    APP_NAMES,
    DEFAULT_CONFIGS,
    LARGE_CONFIGS,
    PAPER_CONFIGS,
    TINY_CONFIGS,
    make_app,
    scaled_loss,
)
from repro.apps.smith_waterman import SmithWatermanApp, sw_reference

__all__ = [
    "AppConfig",
    "Application",
    "ordered_preds",
    "LCSApp",
    "SmithWatermanApp",
    "FloydWarshallApp",
    "LUApp",
    "CholeskyApp",
    "lcs_reference",
    "sw_reference",
    "fw_reference",
    "random_sequences",
    "random_distance_matrix",
    "random_dd_matrix",
    "random_spd_matrix",
    "APP_CLASSES",
    "APP_NAMES",
    "DEFAULT_CONFIGS",
    "LARGE_CONFIGS",
    "PAPER_CONFIGS",
    "TINY_CONFIGS",
    "make_app",
    "scaled_loss",
]
