"""Application base classes and configuration.

An *application* bundles a task-graph spec with everything an experiment
needs around it: input generation, store seeding (pinned, resilient input
blocks), result extraction, an independent sequential reference, and the
memory policies the paper evaluates for it (baseline vs fault-tolerant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graph.taskspec import Key, TaskSpecBase
from repro.memory.allocator import AllocationPolicy, SingleAssignment
from repro.memory.blockstore import BlockStore


@dataclass(frozen=True)
class AppConfig:
    """Problem-size configuration (the knobs of the paper's Table I)."""

    n: int
    """Matrix / sequence size."""

    block: int
    """Block (tile) size; ``n`` must be a multiple of it."""

    seed: int = 1234
    """Input-data seed."""

    def __post_init__(self) -> None:
        if self.n < 1 or self.block < 1:
            raise ValueError("n and block must be positive")
        if self.n % self.block:
            raise ValueError(f"n={self.n} must be a multiple of block={self.block}")

    @property
    def blocks(self) -> int:
        """Blocks per dimension (the paper's implicit ``B``)."""
        return self.n // self.block


class Application(TaskSpecBase):
    """A benchmark: a TaskGraphSpec plus its experiment-facing surface.

    Subclasses implement the spec methods (``sink_key``, ``predecessors``,
    ``successors``, ``inputs``, ``outputs``, ``producer``, ``cost``,
    ``compute``) plus:

    * :meth:`seed_store` -- pin resilient input blocks;
    * :meth:`reference` -- independently computed expected result;
    * :meth:`extract` -- pull the comparable result out of a store;
    * :attr:`baseline_policy` / :attr:`ft_policy` -- the memory policies
      the paper used for the two scheduler variants.
    """

    name: str = "app"

    #: Memory policy for the non-fault-tolerant baseline runs.
    baseline_policy: AllocationPolicy = SingleAssignment()
    #: Memory policy for fault-tolerant runs.
    ft_policy: AllocationPolicy = SingleAssignment()

    def __init__(self, config: AppConfig, light: bool = False) -> None:
        self.config = config
        self.light = light

    # -- compute dispatch -------------------------------------------------------------

    def compute(self, key: Key, ctx: Any) -> None:
        """Run the task body.

        In *light* mode the numerical kernel is replaced by a token write:
        every declared input is still read through the store (so memory
        reuse, overwrite detection, and corruption detection behave
        identically) and every declared output is written, but the payload
        is a placeholder.  Virtual costs are analytic, so timing figures
        are unaffected; use full mode whenever results are verified.
        """
        if self.light:
            for raw in self.inputs(key):
                ctx.read(raw)
            for raw in self.outputs(key):
                ctx.write(raw, ("token", key))
            return
        self.compute_full(key, ctx)

    def compute_full(self, key: Key, ctx: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- experiment surface ----------------------------------------------------------

    def make_store(self, fault_tolerant: bool = True, shared: bool = False) -> BlockStore:
        """A store with the right policy, seeded with pinned inputs.

        ``shared=True`` returns a
        :class:`~repro.memory.shm.SharedMemoryBlockStore`, whose array
        payloads live in shared-memory segments that
        :class:`~repro.runtime.procpool.ProcessRuntime` workers map
        zero-copy (any store works with any runtime; a non-shared store
        simply ships payloads to workers by pickle).
        """
        policy = self.ft_policy if fault_tolerant else self.baseline_policy
        if shared:
            from repro.memory.shm import SharedMemoryBlockStore

            store: BlockStore = SharedMemoryBlockStore(policy)
        else:
            store = BlockStore(policy)
        self.seed_store(store)
        return store

    def seed_store(self, store: BlockStore) -> None:
        """Pin the application's input blocks (default: none)."""
        return None

    def reference(self) -> Any:  # pragma: no cover - abstract
        """Sequential, independently-coded expected result."""
        raise NotImplementedError

    def extract(self, store: BlockStore) -> Any:  # pragma: no cover - abstract
        """Comparable result from a finished execution's store."""
        raise NotImplementedError

    def verify(self, store: BlockStore, rtol: float = 1e-9, atol: float = 1e-9) -> None:
        """Assert the executed result matches the reference."""
        got = self.extract(store)
        want = self.reference()
        if isinstance(want, np.ndarray):
            np.testing.assert_allclose(got, want, rtol=rtol, atol=atol)
        elif got != want:
            raise AssertionError(f"{self.name}: result {got!r} != reference {want!r}")

    # -- misc helpers ----------------------------------------------------------------------

    def describe(self) -> str:
        c = self.config
        return f"{self.name}(n={c.n}, block={c.block}, B={c.blocks})"


def ordered_preds(*candidates: tuple[bool, Key]) -> tuple[Key, ...]:
    """Filter a fixed-order predecessor candidate list by validity flags.

    Keeping predecessor order *fixed and deterministic* matters: the FT
    scheduler's notification bit vector indexes the ordered list.
    """
    return tuple(key for ok, key in candidates if ok)
