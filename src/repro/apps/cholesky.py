"""Tiled Cholesky factorization (lower, right-looking) with memory reuse.

Task keys (lower triangle only, ``j <= i``):

* ``("potrf", k)``     -- factor the pivot tile, version k -> k+1 of (k,k);
* ``("trsm", k, i)``   -- panel solve, i > k, version k -> k+1 of (i,k);
* ``("upd", k, i, j)`` -- trailing update (SYRK when i == j), k < j <= i,
  version k -> k+1 of (i,j).

As in LU, each block version's only reader is the next-step task on the
same block, so the ``reuse`` policy needs no anti-dependence edges.  The
graph reproduces the paper's Table I row exactly:
B = 80 -> T = 88560, E = 255960, S = 238 path nodes.

``potrf(B-1)`` is the natural unique sink.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.base import AppConfig, Application
from repro.apps.kernels import chol_potrf, chol_trsm, chol_update
from repro.graph.taskspec import BlockRef, ComputeContext, Key
from repro.memory.allocator import Reuse
from repro.memory.blockstore import BlockStore


def random_spd_matrix(n: int, seed: int) -> np.ndarray:
    """Random symmetric positive-definite matrix."""
    rng = np.random.default_rng(seed)
    m = rng.uniform(-1.0, 1.0, size=(n, n))
    a = m @ m.T
    a[np.diag_indices(n)] += float(n)
    return a


class CholeskyApp(Application):
    """Tiled Cholesky as a task graph."""

    name = "cholesky"
    baseline_policy = Reuse()
    ft_policy = Reuse()

    def __init__(self, config: AppConfig) -> None:
        super().__init__(config)
        self.a0 = random_spd_matrix(config.n, config.seed + 4)
        self._b = config.block
        self._B = config.blocks

    @staticmethod
    def blk(i: int, j: int) -> tuple:
        return ("a", i, j)

    # -- block/version inverse map ---------------------------------------------------------

    def producer(self, ref: BlockRef) -> Key | None:
        _tag, i, j = ref.block
        v = ref.version
        if v == 0:
            return None  # pinned input tile
        k = v - 1
        if k == j:  # j == min(i, j) in the lower triangle
            if i == j:
                return ("potrf", k)
            return ("trsm", k, i)
        return ("upd", k, i, j)

    # -- spec surface ---------------------------------------------------------------------------

    def sink_key(self) -> Key:
        return ("potrf", self._B - 1)

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        kind = key[0]
        if kind == "potrf":
            k = key[1]
            return (BlockRef(self.blk(k, k), k),)
        if kind == "trsm":
            _, k, i = key
            return (BlockRef(self.blk(i, k), k), BlockRef(self.blk(k, k), k + 1))
        _, k, i, j = key
        refs = [BlockRef(self.blk(i, j), k), BlockRef(self.blk(i, k), k + 1)]
        if j != i:
            refs.append(BlockRef(self.blk(j, k), k + 1))
        return tuple(refs)

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        kind = key[0]
        if kind == "potrf":
            k = key[1]
            return (BlockRef(self.blk(k, k), k + 1),)
        if kind == "trsm":
            _, k, i = key
            return (BlockRef(self.blk(i, k), k + 1),)
        _, k, i, j = key
        return (BlockRef(self.blk(i, j), k + 1),)

    def predecessors(self, key: Key) -> Sequence[Key]:
        preds = []
        for raw in self.inputs(key):
            p = self.producer(BlockRef(*raw))
            if p is not None and p not in preds:
                preds.append(p)
        return tuple(preds)

    def successors(self, key: Key) -> Sequence[Key]:
        B = self._B
        kind = key[0]
        if kind == "potrf":
            k = key[1]
            return tuple(("trsm", k, i) for i in range(k + 1, B))
        if kind == "trsm":
            _, k, i = key
            # L(i,k) feeds updates where it is the left factor (j <= i)
            # and where it is the (transposed) right factor (rows >= i).
            out: list[Key] = [("upd", k, i, j) for j in range(k + 1, i + 1)]
            out += [("upd", k, i2, i) for i2 in range(i + 1, B)]
            return tuple(out)
        _, k, i, j = key
        return (self.producer(BlockRef(self.blk(i, j), k + 2)),)

    def cost(self, key: Key) -> float:
        b3 = float(self._b) ** 3
        kind = key[0]
        if kind == "potrf":
            return b3 / 3.0
        if kind == "trsm":
            return b3
        return 2.0 * b3

    def compute_full(self, key: Key, ctx: ComputeContext) -> None:
        kind = key[0]
        if kind == "potrf":
            k = key[1]
            a = ctx.read(BlockRef(self.blk(k, k), k))
            ctx.write(BlockRef(self.blk(k, k), k + 1), chol_potrf(a))
        elif kind == "trsm":
            _, k, i = key
            a = ctx.read(BlockRef(self.blk(i, k), k))
            l_kk = ctx.read(BlockRef(self.blk(k, k), k + 1))
            ctx.write(BlockRef(self.blk(i, k), k + 1), chol_trsm(l_kk, a))
        else:
            _, k, i, j = key
            a = ctx.read(BlockRef(self.blk(i, j), k))
            l_ik = ctx.read(BlockRef(self.blk(i, k), k + 1))
            l_jk = l_ik if j == i else ctx.read(BlockRef(self.blk(j, k), k + 1))
            ctx.write(BlockRef(self.blk(i, j), k + 1), chol_update(a, l_ik, l_jk))

    # -- experiment surface --------------------------------------------------------------------------

    def seed_store(self, store: BlockStore) -> None:
        b, B = self._b, self._B
        for i in range(B):
            for j in range(i + 1):
                tile = self.a0[i * b : (i + 1) * b, j * b : (j + 1) * b].copy()
                store.pin(BlockRef(self.blk(i, j), 0), tile)

    def reference(self) -> np.ndarray:
        """Lower Cholesky factor via NumPy (the factor is unique)."""
        return np.linalg.cholesky(self.a0)

    def extract(self, store: BlockStore) -> np.ndarray:
        b, B = self._b, self._B
        out = np.zeros_like(self.a0)
        for i in range(B):
            for j in range(i + 1):
                final = j + 1
                out[i * b : (i + 1) * b, j * b : (j + 1) * b] = store.read(
                    BlockRef(self.blk(i, j), final)
                )
        # Zero the strict upper triangle of the diagonal tiles (potrf
        # returns clean lower factors already; the full matrix assembly
        # above only fills the lower block triangle).
        return np.tril(out)

    def verify(self, store: BlockStore, rtol: float = 1e-8, atol: float = 1e-8) -> None:
        got = self.extract(store)
        want = self.reference()
        np.testing.assert_allclose(got, want, rtol=rtol, atol=atol)
