"""Blocked Floyd-Warshall all-pairs shortest paths with two-version blocks.

Classic three-phase blocked FW: at step ``k`` the pivot block ``(k,k)``
updates itself, then the pivot row/column panels update against it, then
every interior block updates against its row/column panels.  Task key
``(k, i, j)`` produces version ``k+1`` of distance block ``(i, j)``;
version 0 is the pinned input matrix.

**Memory reuse and anti-dependences.**  Distance blocks are updated in
place, so the task producing version ``v+1`` of a block must wait for all
readers of version ``v`` -- these write-after-read edges are part of the
task graph ("the dependences specified ensure that all uses of a data
block causally precede a subsequent definition", Section II).  With these
anti-edges the graph's structure counts match the paper's Table I exactly
(B = 40: T = 40^3, E = 308880, S = 120 path nodes).

**Fault-tolerance configuration.**  The paper found FW's recovery cost
depended heavily on fault location because a lost block version forces
recomputation of its whole version chain; they therefore retain *two*
versions per block for the fault-tolerant runs, doubling block memory and
costing ~10% slowdown at scale (Fig. 4d).  Accordingly
``baseline_policy = Reuse()`` and ``ft_policy = TwoVersion()``.

A final ``"sink"`` task reads every block's final version (one extra task
over the paper's T; documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.base import AppConfig, Application
from repro.apps.kernels import fw_diag, fw_minplus, fw_panel_col, fw_panel_row
from repro.graph.taskspec import BlockRef, ComputeContext, Key
from repro.memory.allocator import Reuse, TwoVersion
from repro.memory.blockstore import BlockStore

SINK = "sink"


def random_distance_matrix(n: int, seed: int) -> np.ndarray:
    """Dense nonnegative weight matrix with a zero diagonal."""
    rng = np.random.default_rng(seed)
    d = rng.uniform(1.0, 10.0, size=(n, n))
    np.fill_diagonal(d, 0.0)
    return d


def fw_reference(d: np.ndarray) -> np.ndarray:
    """Independent unblocked Floyd-Warshall."""
    out = d.copy()
    for t in range(out.shape[0]):
        np.minimum(out, out[:, t, None] + out[None, t, :], out=out)
    return out


class FloydWarshallApp(Application):
    """Blocked FW as a task graph: key ``(k, i, j)`` or ``"sink"``."""

    name = "fw"
    baseline_policy = Reuse()
    ft_policy = TwoVersion()

    def __init__(self, config: AppConfig) -> None:
        super().__init__(config)
        self.d0 = random_distance_matrix(config.n, config.seed + 2)
        self._b = config.block
        self._B = config.blocks

    @staticmethod
    def blk(i: int, j: int) -> tuple:
        return ("d", i, j)

    # -- spec surface ----------------------------------------------------------------------

    def sink_key(self) -> Key:
        return SINK

    def predecessors(self, key: Key) -> Sequence[Key]:
        B = self._B
        if key == SINK:
            # Producers of every block's final version: all step B-1 tasks.
            return tuple((B - 1, i, j) for i in range(B) for j in range(B))
        k, i, j = key
        preds: list[Key] = []
        if k > 0:
            preds.append((k - 1, i, j))  # previous version of own block
        if i == k and j == k:
            pass  # diagonal: only the previous version
        elif i == k:
            preds.append((k, k, k))  # row panel waits on updated pivot
        elif j == k:
            preds.append((k, k, k))  # column panel likewise
        else:
            preds.append((k, i, k))  # interior waits on updated panels
            preds.append((k, k, j))
        # Anti-dependences (write-after-read): producing version k+1 of
        # block (i, j) overwrites version k, whose readers must be done.
        if k == i + 1 == j + 1:
            # Pivot block (i, i) at step i was read by all its panels.
            preds.extend((i, i, c) for c in range(self._B) if c != i)
            preds.extend((i, r, i) for r in range(self._B) if r != i)
        elif k == i + 1:
            # Pivot-row panel (i, j) was read by the interiors of step i.
            preds.extend((i, r, j) for r in range(self._B) if r != i)
        elif k == j + 1:
            # Pivot-column panel (i, j) was read by the interiors of step j.
            preds.extend((j, i, c) for c in range(self._B) if c != j)
        return tuple(preds)

    def successors(self, key: Key) -> Sequence[Key]:
        B = self._B
        if key == SINK:
            return ()
        k, i, j = key
        succs: list[Key] = []
        if k + 1 < B:
            succs.append((k + 1, i, j))
        else:
            succs.append(SINK)
        if i == k and j == k:
            succs.extend((k, k, c) for c in range(B) if c != k)
            succs.extend((k, r, k) for r in range(B) if r != k)
            if k + 1 < B:
                # Anti-successor: the step-k+1 overwriter of the pivot
                # block must wait for this read of version k.
                pass  # the diagonal reads only its own block
        elif i == k:
            succs.extend((k, r, j) for r in range(B) if r != k)
            if k + 1 < B:
                succs.append((k + 1, k, k))  # read pivot v(k+1); block its overwriter
        elif j == k:
            succs.extend((k, i, c) for c in range(B) if c != k)
            if k + 1 < B:
                succs.append((k + 1, k, k))
        else:
            if k + 1 < B:
                succs.append((k + 1, i, k))  # read col panel v(k+1)
                succs.append((k + 1, k, j))  # read row panel v(k+1)
        return tuple(succs)

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        B = self._B
        if key == SINK:
            return tuple(BlockRef(self.blk(i, j), B) for i in range(B) for j in range(B))
        k, i, j = key
        refs = [BlockRef(self.blk(i, j), k)]
        if i == k and j == k:
            pass
        elif i == k or j == k:
            refs.append(BlockRef(self.blk(k, k), k + 1))
        else:
            refs.append(BlockRef(self.blk(i, k), k + 1))
            refs.append(BlockRef(self.blk(k, j), k + 1))
        return tuple(refs)

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        if key == SINK:
            return (BlockRef(("fw", "done"), 0),)
        k, i, j = key
        return (BlockRef(self.blk(i, j), k + 1),)

    def producer(self, ref: BlockRef) -> Key | None:
        if ref.block == ("fw", "done"):
            return SINK
        _tag, i, j = ref.block
        if ref.version == 0:
            return None  # pinned input
        return (ref.version - 1, i, j)

    def cost(self, key: Key) -> float:
        if key == SINK:
            return float(self._B) ** 2
        return float(self._b) ** 3

    def compute_full(self, key: Key, ctx: ComputeContext) -> None:
        B = self._B
        if key == SINK:
            total = 0.0
            for i in range(B):
                for j in range(B):
                    total += float(ctx.read(BlockRef(self.blk(i, j), B)).sum())
            ctx.write(BlockRef(("fw", "done"), 0), total)
            return
        k, i, j = key
        prev = ctx.read(BlockRef(self.blk(i, j), k))
        if i == k and j == k:
            out = fw_diag(prev)
        elif i == k:
            diag_new = ctx.read(BlockRef(self.blk(k, k), k + 1))
            out = fw_panel_row(diag_new, prev)
        elif j == k:
            diag_new = ctx.read(BlockRef(self.blk(k, k), k + 1))
            out = fw_panel_col(diag_new, prev)
        else:
            col_new = ctx.read(BlockRef(self.blk(i, k), k + 1))
            row_new = ctx.read(BlockRef(self.blk(k, j), k + 1))
            out = fw_minplus(prev, col_new, row_new)
        ctx.write(BlockRef(self.blk(i, j), k + 1), out)

    # -- experiment surface -----------------------------------------------------------------------

    def seed_store(self, store: BlockStore) -> None:
        b, B = self._b, self._B
        for i in range(B):
            for j in range(B):
                tile = self.d0[i * b : (i + 1) * b, j * b : (j + 1) * b].copy()
                store.pin(BlockRef(self.blk(i, j), 0), tile)

    def reference(self) -> np.ndarray:
        return fw_reference(self.d0)

    def extract(self, store: BlockStore) -> np.ndarray:
        b, B = self._b, self._B
        out = np.empty_like(self.d0)
        for i in range(B):
            for j in range(B):
                out[i * b : (i + 1) * b, j * b : (j + 1) * b] = store.read(
                    BlockRef(self.blk(i, j), B)
                )
        return out
