"""Numerical block kernels for the five benchmark applications.

All kernels are vectorized with NumPy per the HPC-Python guides: the
dynamic-programming kernels sweep anti-diagonals (the only axis without a
loop-carried dependence), and the linear-algebra kernels are expressed as
tile-level BLAS-like operations.  Each kernel is pure: inputs in,
fresh outputs out -- tasks must be stateless for re-execution to be safe
(Theorem 1's assumption).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular


# -- dynamic-programming wavefront kernels --------------------------------------------


def lcs_block(
    xs: np.ndarray,
    ys: np.ndarray,
    top: np.ndarray,
    left: np.ndarray,
    corner: int,
) -> tuple[np.ndarray, np.ndarray]:
    """LCS lengths over one block.

    ``xs`` (length r) and ``ys`` (length c) are the sequence slices for
    this block's rows/columns; ``top``/``left`` are the DP values of the
    row above / column to the left (lengths c and r); ``corner`` is the
    value diagonally above-left.  Returns (bottom_row, right_col) of the
    block, each including the block's own cells only.
    """
    r, c = len(xs), len(ys)
    g = np.empty((r + 1, c + 1), dtype=np.int32)
    g[0, 0] = corner
    g[0, 1:] = top
    g[1:, 0] = left
    match = xs[:, None] == ys[None, :]
    for d in range(2, r + c + 1):
        i = np.arange(max(1, d - c), min(r, d - 1) + 1)
        j = d - i
        diag = g[i - 1, j - 1] + 1
        best = np.maximum(g[i - 1, j], g[i, j - 1])
        g[i, j] = np.where(match[i - 1, j - 1], diag, best)
    return g[r, 1:].copy(), g[1:, c].copy()


def sw_block(
    xs: np.ndarray,
    ys: np.ndarray,
    top: np.ndarray,
    left: np.ndarray,
    corner: int,
    match_score: int = 2,
    mismatch_penalty: int = 1,
    gap_penalty: int = 1,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Smith-Waterman (linear gap) scores over one block.

    Same frame convention as :func:`lcs_block`; additionally returns the
    block's maximum cell value (local alignment score candidates).
    """
    r, c = len(xs), len(ys)
    g = np.empty((r + 1, c + 1), dtype=np.int32)
    g[0, 0] = corner
    g[0, 1:] = top
    g[1:, 0] = left
    sub = np.where(xs[:, None] == ys[None, :], match_score, -mismatch_penalty).astype(np.int32)
    for d in range(2, r + c + 1):
        i = np.arange(max(1, d - c), min(r, d - 1) + 1)
        j = d - i
        diag = g[i - 1, j - 1] + sub[i - 1, j - 1]
        gap = np.maximum(g[i - 1, j], g[i, j - 1]) - gap_penalty
        g[i, j] = np.maximum(np.maximum(diag, gap), 0)
    interior = g[1:, 1:]
    return g[r, 1:].copy(), g[1:, c].copy(), int(interior.max(initial=0))


# -- Floyd-Warshall tile kernels ---------------------------------------------------------


def fw_diag(d_kk: np.ndarray) -> np.ndarray:
    """Phase-1 update: run Floyd-Warshall within the pivot block."""
    d = d_kk.copy()
    for t in range(d.shape[0]):
        np.minimum(d, d[:, t, None] + d[None, t, :], out=d)
    return d


def fw_minplus(d: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``min(d, a (min,+) b)``: the phase-3 interior tile update.

    ``a`` and ``b`` are the already-final column and row panels, so pivot
    order is irrelevant; vectorized one pivot at a time to keep the
    working set at O(b^2) instead of O(b^3).
    """
    out = d.copy()
    for t in range(a.shape[1]):
        np.minimum(out, a[:, t, None] + b[None, t, :], out=out)
    return out


def fw_panel_row(diag_new: np.ndarray, d_kj: np.ndarray) -> np.ndarray:
    """Phase-2 pivot-row panel update (in-place pivot sweep).

    ``d[r,c] = min(d[r,c], diag_new[r,t] + d[t,c])`` with ``d[t,c]`` taken
    from the *partially updated* panel, as the sequential algorithm does.
    """
    out = d_kj.copy()
    for t in range(out.shape[0]):
        np.minimum(out, diag_new[:, t, None] + out[None, t, :], out=out)
    return out


def fw_panel_col(diag_new: np.ndarray, d_ik: np.ndarray) -> np.ndarray:
    """Phase-2 pivot-column panel update (in-place pivot sweep)."""
    out = d_ik.copy()
    for t in range(out.shape[1]):
        np.minimum(out, out[:, t, None] + diag_new[None, t, :], out=out)
    return out


# -- LU tile kernels -----------------------------------------------------------------------


def lu_getrf(a: np.ndarray) -> np.ndarray:
    """Unpivoted LU of one tile; returns the packed L\\U tile (unit lower)."""
    lu = a.astype(np.float64, copy=True)
    n = lu.shape[0]
    for k in range(n - 1):
        pivot = lu[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError("zero pivot in unpivoted LU; input not diagonally dominant")
        lu[k + 1 :, k] /= pivot
        lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu


def lu_trsm_row(lu_kk: np.ndarray, a_kj: np.ndarray) -> np.ndarray:
    """U-panel solve: ``L(k,k)^-1 @ A(k,j)`` with unit-lower L."""
    return solve_triangular(lu_kk, a_kj, lower=True, unit_diagonal=True)


def lu_trsm_col(lu_kk: np.ndarray, a_ik: np.ndarray) -> np.ndarray:
    """L-panel solve: ``A(i,k) @ U(k,k)^-1``."""
    return solve_triangular(lu_kk, a_ik.T, lower=False, trans="T").T


def gemm_update(a_ij: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Trailing update ``A(i,j) - left @ right``."""
    return a_ij - left @ right


# -- Cholesky tile kernels --------------------------------------------------------------------


def chol_potrf(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of one SPD tile."""
    return np.linalg.cholesky(a)


def chol_trsm(l_kk: np.ndarray, a_ik: np.ndarray) -> np.ndarray:
    """Panel solve: ``A(i,k) @ L(k,k)^-T``."""
    return solve_triangular(l_kk, a_ik.T, lower=True).T


def chol_update(a_ij: np.ndarray, l_ik: np.ndarray, l_jk: np.ndarray) -> np.ndarray:
    """Trailing update ``A(i,j) - L(i,k) @ L(j,k)^T`` (SYRK when i == j)."""
    return a_ij - l_ik @ l_jk.T
