"""Blocked longest common subsequence (LCS).

The dependence structure is the classic 2-D wavefront: block ``(i, j)``
needs the bottom row of the block above, the right column of the block to
the left, and the corner cell of the diagonal block.  The paper's Table I
instance is 512K x 512K elements in 2K x 2K blocks (B = 256, T = 65536,
E = 195585, S = 510).

LCS is the one benchmark where the paper's memory-reuse strategy does not
apply: every block's boundary is part of the final output, so blocks are
single-assignment and every task is simultaneously ``v=0`` and ``v=last``
("each data block has, at most, three uses ... re-execution amounts are
low and similar for all task types" -- Table II discussion).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.base import AppConfig, Application, ordered_preds
from repro.apps.kernels import lcs_block
from repro.graph.taskspec import BlockRef, ComputeContext, Key
from repro.memory.allocator import SingleAssignment
from repro.memory.blockstore import BlockStore

_ALPHABET = 4


def random_sequences(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, _ALPHABET, size=n, dtype=np.int8),
        rng.integers(0, _ALPHABET, size=n, dtype=np.int8),
    )


def lcs_reference(x: np.ndarray, y: np.ndarray) -> int:
    """Independent O(n*m) rolling-row LCS (row-at-a-time, no blocking)."""
    prev = np.zeros(len(y) + 1, dtype=np.int64)
    for xi in x:
        cur = np.zeros_like(prev)
        match = y == xi
        for j in range(1, len(y) + 1):
            if match[j - 1]:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = cur[j - 1] if cur[j - 1] >= prev[j] else prev[j]
        prev = cur
    return int(prev[-1])


class LCSApp(Application):
    """Blocked LCS as a task graph: key ``(i, j)`` = block coordinates."""

    name = "lcs"
    baseline_policy = SingleAssignment()
    ft_policy = SingleAssignment()

    def __init__(self, config: AppConfig) -> None:
        super().__init__(config)
        self.x, self.y = random_sequences(config.n, config.seed)
        self._b = config.block
        self._B = config.blocks

    # -- spec surface -----------------------------------------------------------------

    def sink_key(self) -> Key:
        return (self._B - 1, self._B - 1)

    def predecessors(self, key: Key) -> Sequence[Key]:
        i, j = key
        return ordered_preds(
            (i > 0, (i - 1, j)),
            (j > 0, (i, j - 1)),
            (i > 0 and j > 0, (i - 1, j - 1)),
        )

    def successors(self, key: Key) -> Sequence[Key]:
        i, j = key
        B = self._B
        return ordered_preds(
            (i + 1 < B, (i + 1, j)),
            (j + 1 < B, (i, j + 1)),
            (i + 1 < B and j + 1 < B, (i + 1, j + 1)),
        )

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        return tuple(BlockRef(("lcs", p), 0) for p in self.predecessors(key))

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        return (BlockRef(("lcs", key), 0),)

    def producer(self, ref: BlockRef) -> Key:
        tag, key = ref.block
        return key

    def cost(self, key: Key) -> float:
        return float(self._b) ** 2

    def compute_full(self, key: Key, ctx: ComputeContext) -> None:
        i, j = key
        b = self._b
        xs = self.x[i * b : (i + 1) * b]
        ys = self.y[j * b : (j + 1) * b]
        if i > 0:
            top = ctx.read(BlockRef(("lcs", (i - 1, j)), 0))[0]
        else:
            top = np.zeros(b, dtype=np.int32)
        if j > 0:
            left = ctx.read(BlockRef(("lcs", (i, j - 1)), 0))[1]
        else:
            left = np.zeros(b, dtype=np.int32)
        if i > 0 and j > 0:
            corner = int(ctx.read(BlockRef(("lcs", (i - 1, j - 1)), 0))[0][-1])
        else:
            corner = 0
        bottom, right = lcs_block(xs, ys, top, left, corner)
        ctx.write(BlockRef(("lcs", key), 0), (bottom, right))

    # -- experiment surface --------------------------------------------------------------

    def reference(self) -> int:
        return lcs_reference(self.x, self.y)

    def extract(self, store: BlockStore) -> int:
        bottom, _right = store.read(BlockRef(("lcs", self.sink_key()), 0))
        return int(bottom[-1])
