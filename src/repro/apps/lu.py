"""Tiled LU decomposition (right-looking, no pivoting) with memory reuse.

Task keys:

* ``("getrf", k)``   -- factor the pivot tile, version k -> k+1 of (k,k);
* ``("trsmr", k, j)`` -- U-panel solve, j > k, version k -> k+1 of (k,j);
* ``("trsmc", k, i)`` -- L-panel solve, i > k, version k -> k+1 of (i,k);
* ``("gemm", k, i, j)`` -- trailing update, i,j > k, version k -> k+1 of (i,j).

Block ``(i, j)`` is updated in place: versions ``1..min(i,j)+1`` share one
buffer under the ``reuse`` policy; version 0 is the pinned input tile.
Every version has exactly one reader -- the next-step task on the same
block -- which is also its overwriter, so (unlike Floyd-Warshall) no
write-after-read anti-dependences are needed.  With this structure the
graph reproduces the paper's Table I row exactly:
B = 80 -> T = 173880, E = 508760, S = 238 path nodes.

The input matrix is made strongly diagonally dominant so unpivoted LU is
numerically safe.  ``getrf(B-1)`` is the natural unique sink.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.base import AppConfig, Application
from repro.apps.kernels import gemm_update, lu_getrf, lu_trsm_col, lu_trsm_row
from repro.graph.taskspec import BlockRef, ComputeContext, Key
from repro.memory.allocator import Reuse
from repro.memory.blockstore import BlockStore


def random_dd_matrix(n: int, seed: int) -> np.ndarray:
    """Random matrix with strong diagonal dominance (stable unpivoted LU)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] += float(n)
    return a


class LUApp(Application):
    """Tiled unpivoted LU as a task graph."""

    name = "lu"
    baseline_policy = Reuse()
    ft_policy = Reuse()

    def __init__(self, config: AppConfig) -> None:
        super().__init__(config)
        self.a0 = random_dd_matrix(config.n, config.seed + 3)
        self._b = config.block
        self._B = config.blocks

    @staticmethod
    def blk(i: int, j: int) -> tuple:
        return ("a", i, j)

    # -- block/version inverse map -----------------------------------------------------

    def producer(self, ref: BlockRef) -> Key | None:
        _tag, i, j = ref.block
        v = ref.version
        if v == 0:
            return None  # pinned input tile
        k = v - 1
        if k == min(i, j):
            if i == j:
                return ("getrf", k)
            if i < j:
                return ("trsmr", k, j)
            return ("trsmc", k, i)
        return ("gemm", k, i, j)

    # -- spec surface --------------------------------------------------------------------

    def sink_key(self) -> Key:
        return ("getrf", self._B - 1)

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        kind = key[0]
        if kind == "getrf":
            k = key[1]
            return (BlockRef(self.blk(k, k), k),)
        if kind == "trsmr":
            _, k, j = key
            return (BlockRef(self.blk(k, j), k), BlockRef(self.blk(k, k), k + 1))
        if kind == "trsmc":
            _, k, i = key
            return (BlockRef(self.blk(i, k), k), BlockRef(self.blk(k, k), k + 1))
        _, k, i, j = key
        return (
            BlockRef(self.blk(i, j), k),
            BlockRef(self.blk(i, k), k + 1),
            BlockRef(self.blk(k, j), k + 1),
        )

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        kind = key[0]
        if kind == "getrf":
            k = key[1]
            return (BlockRef(self.blk(k, k), k + 1),)
        if kind == "trsmr":
            _, k, j = key
            return (BlockRef(self.blk(k, j), k + 1),)
        if kind == "trsmc":
            _, k, i = key
            return (BlockRef(self.blk(i, k), k + 1),)
        _, k, i, j = key
        return (BlockRef(self.blk(i, j), k + 1),)

    def predecessors(self, key: Key) -> Sequence[Key]:
        preds = []
        for raw in self.inputs(key):
            p = self.producer(BlockRef(*raw))
            if p is not None:
                preds.append(p)
        return tuple(preds)

    def successors(self, key: Key) -> Sequence[Key]:
        B = self._B
        kind = key[0]
        if kind == "getrf":
            k = key[1]
            out: list[Key] = [("trsmr", k, j) for j in range(k + 1, B)]
            out += [("trsmc", k, i) for i in range(k + 1, B)]
            return tuple(out)
        if kind == "trsmr":
            _, k, j = key
            return tuple(("gemm", k, i, j) for i in range(k + 1, B))
        if kind == "trsmc":
            _, k, i = key
            return tuple(("gemm", k, i, j) for j in range(k + 1, B))
        _, k, i, j = key
        return (self.producer(BlockRef(self.blk(i, j), k + 2)),)

    def cost(self, key: Key) -> float:
        b3 = float(self._b) ** 3
        kind = key[0]
        if kind == "getrf":
            return (2.0 / 3.0) * b3
        if kind in ("trsmr", "trsmc"):
            return b3
        return 2.0 * b3

    def compute_full(self, key: Key, ctx: ComputeContext) -> None:
        kind = key[0]
        if kind == "getrf":
            k = key[1]
            a = ctx.read(BlockRef(self.blk(k, k), k))
            ctx.write(BlockRef(self.blk(k, k), k + 1), lu_getrf(a))
        elif kind == "trsmr":
            _, k, j = key
            a = ctx.read(BlockRef(self.blk(k, j), k))
            lu_kk = ctx.read(BlockRef(self.blk(k, k), k + 1))
            ctx.write(BlockRef(self.blk(k, j), k + 1), lu_trsm_row(lu_kk, a))
        elif kind == "trsmc":
            _, k, i = key
            a = ctx.read(BlockRef(self.blk(i, k), k))
            lu_kk = ctx.read(BlockRef(self.blk(k, k), k + 1))
            ctx.write(BlockRef(self.blk(i, k), k + 1), lu_trsm_col(lu_kk, a))
        else:
            _, k, i, j = key
            a = ctx.read(BlockRef(self.blk(i, j), k))
            left = ctx.read(BlockRef(self.blk(i, k), k + 1))
            right = ctx.read(BlockRef(self.blk(k, j), k + 1))
            ctx.write(BlockRef(self.blk(i, j), k + 1), gemm_update(a, left, right))

    # -- experiment surface -----------------------------------------------------------------

    def seed_store(self, store: BlockStore) -> None:
        b, B = self._b, self._B
        for i in range(B):
            for j in range(B):
                tile = self.a0[i * b : (i + 1) * b, j * b : (j + 1) * b].copy()
                store.pin(BlockRef(self.blk(i, j), 0), tile)

    def reference(self) -> np.ndarray:
        """Packed L\\U of the whole matrix via the independent unblocked
        kernel (identical in exact arithmetic to the blocked result)."""
        return lu_getrf(self.a0)

    def extract(self, store: BlockStore) -> np.ndarray:
        b, B = self._b, self._B
        out = np.empty_like(self.a0)
        for i in range(B):
            for j in range(B):
                final = min(i, j) + 1
                out[i * b : (i + 1) * b, j * b : (j + 1) * b] = store.read(
                    BlockRef(self.blk(i, j), final)
                )
        return out

    def verify(self, store: BlockStore, rtol: float = 1e-8, atol: float = 1e-8) -> None:
        got = self.extract(store)
        want = self.reference()
        np.testing.assert_allclose(got, want, rtol=rtol, atol=atol)
