"""Application registry and the standard experiment configurations.

``PAPER_CONFIGS`` are the exact Table I instances (used structure-only:
Table I is pure graph analytics).  ``DEFAULT_CONFIGS`` are the scaled
instances the execution experiments run at -- same block structure, small
enough that the discrete-event simulator finishes a figure's sweep in
seconds.  ``scaled_loss`` converts the paper's absolute loss sizes (1, 8,
64, 512 tasks) to the scaled graphs proportionally.
"""

from __future__ import annotations

from repro.apps.base import AppConfig, Application
from repro.apps.cholesky import CholeskyApp
from repro.apps.floyd_warshall import FloydWarshallApp
from repro.apps.lcs import LCSApp
from repro.apps.lu import LUApp
from repro.apps.smith_waterman import SmithWatermanApp

APP_CLASSES: dict[str, type[Application]] = {
    "lcs": LCSApp,
    "sw": SmithWatermanApp,
    "fw": FloydWarshallApp,
    "lu": LUApp,
    "cholesky": CholeskyApp,
}

APP_NAMES: tuple[str, ...] = tuple(APP_CLASSES)

#: Table I instances (paper scale).  SW's exact decomposition in the paper
#: follows a BSP strip scheme we could not reconstruct from the text; we
#: use the same blocked-wavefront structure as LCS (see EXPERIMENTS.md).
PAPER_CONFIGS: dict[str, AppConfig] = {
    "lcs": AppConfig(n=512 * 1024, block=2 * 1024),
    "sw": AppConfig(n=6144, block=128),
    "fw": AppConfig(n=5120, block=128),
    "lu": AppConfig(n=10240, block=128),
    "cholesky": AppConfig(n=10240, block=128),
}

#: Scaled instances for executed experiments (~1.5-3k tasks each).
DEFAULT_CONFIGS: dict[str, AppConfig] = {
    "lcs": AppConfig(n=1536, block=32),       # B=48, T=2304
    "sw": AppConfig(n=1536, block=32),        # B=48, T=2304
    "fw": AppConfig(n=192, block=16),         # B=12, T=1729
    "lu": AppConfig(n=320, block=16),         # B=20, T=2870
    "cholesky": AppConfig(n=384, block=16),   # B=24, T=2600
}

#: Larger instances for speedup studies: wavefront apps get structural
#: parallelism ~= B/2 = 48, so the Figure 4 curves keep climbing at 44
#: workers instead of saturating (see EXPERIMENTS.md).
LARGE_CONFIGS: dict[str, AppConfig] = {
    "lcs": AppConfig(n=3072, block=32),       # B=96, T=9216
    "sw": AppConfig(n=3072, block=32),        # B=96, T=9216
    "fw": AppConfig(n=256, block=16),         # B=16, T=4097
    "lu": AppConfig(n=448, block=16),         # B=28, T=7714
    "cholesky": AppConfig(n=512, block=16),   # B=32, T=6544
}

#: Tiny instances for fast tests.
TINY_CONFIGS: dict[str, AppConfig] = {
    "lcs": AppConfig(n=64, block=16),         # B=4
    "sw": AppConfig(n=64, block=16),          # B=4
    "fw": AppConfig(n=32, block=8),           # B=4
    "lu": AppConfig(n=40, block=8),           # B=5
    "cholesky": AppConfig(n=40, block=8),     # B=5
}


def make_app(
    name: str,
    config: AppConfig | None = None,
    scale: str = "default",
    light: bool = False,
) -> Application:
    """Instantiate a benchmark by name at a named scale or explicit config.

    ``light=True`` replaces numerical kernels with token writes (identical
    graph structure, store versioning, and fault-detection behaviour;
    results are not verifiable) -- used by the timing harness, where time
    is virtual anyway.
    """
    name = name.strip().lower()
    if name not in APP_CLASSES:
        raise ValueError(f"unknown app {name!r}; expected one of {APP_NAMES}")
    if config is None:
        table = {"default": DEFAULT_CONFIGS, "tiny": TINY_CONFIGS,
                 "large": LARGE_CONFIGS, "paper": PAPER_CONFIGS}
        if scale not in table:
            raise ValueError(f"unknown scale {scale!r}; expected default/tiny/large/paper")
        config = table[scale][name]
    app = APP_CLASSES[name](config)
    app.light = light
    return app


#: Task counts the paper reports in Table I (the denominators for scaling
#: absolute loss sizes).  SW uses the paper's value directly because its
#: BSP strip decomposition is not reconstructible from the text.
PAPER_TASK_COUNTS: dict[str, int] = {
    "lcs": 65536,
    "sw": 132650,
    "fw": 64000,
    "lu": 173880,
    "cholesky": 88560,
}


def scaled_loss(name: str, paper_count: int, config: AppConfig | None = None) -> int:
    """Scale one of the paper's absolute loss sizes (e.g. 512 tasks of a
    65536-task LCS) to a scaled instance, preserving the lost fraction."""
    cfg = config or DEFAULT_CONFIGS[name]
    scaled_tasks = _task_count(name, cfg)
    return max(1, round(paper_count * scaled_tasks / PAPER_TASK_COUNTS[name]))


def _task_count(name: str, cfg: AppConfig) -> int:
    """Closed-form task counts (avoids materializing paper-scale graphs)."""
    B = cfg.blocks
    if name in ("lcs", "sw"):
        return B * B
    if name == "fw":
        return B * B * B + 1  # + the collection sink
    if name == "lu":
        return B * (B + 1) * (2 * B + 1) // 6
    if name == "cholesky":
        return sum(1 + (m - 1) + (m - 1) * m // 2 for m in range(1, B + 1))
    raise ValueError(name)
