"""Blocked Smith-Waterman local alignment with memory reuse.

Same 2-D wavefront dependence shape as LCS, but following the paper the
implementation *reuses* data buffers: once row ``i-2``'s boundaries have
been consumed (all their readers live in rows <= i-1), row ``i``'s blocks
overwrite them.  Physically, block id ``("sw", i % 2, j)`` holds version
``i // 2`` for task ``(i, j)`` -- a two-row rotating buffer pool, one
buffer per (parity, column) pair under the ``reuse`` retention policy.

This is what makes Smith-Waterman interesting for fault tolerance:
recovering a task can require boundary data whose buffer has been reused,
cascading re-execution up the column version chain (the large ``v=last``
re-execution counts of Table II).

The global alignment score is threaded through the DP as a running
maximum (each task's output carries ``max`` over its block and all its
predecessors), so the sink block's running maximum is the final answer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.base import AppConfig, Application, ordered_preds
from repro.apps.kernels import sw_block
from repro.apps.lcs import random_sequences
from repro.graph.taskspec import BlockRef, ComputeContext, Key
from repro.memory.allocator import Reuse
from repro.memory.blockstore import BlockStore

MATCH = 2
MISMATCH = 1
GAP = 1


def sw_reference(x: np.ndarray, y: np.ndarray) -> int:
    """Independent rolling-row Smith-Waterman (linear gap)."""
    prev = np.zeros(len(y) + 1, dtype=np.int64)
    best = 0
    for xi in x:
        cur = np.zeros_like(prev)
        sub = np.where(y == xi, MATCH, -MISMATCH)
        for j in range(1, len(y) + 1):
            v = max(0, prev[j - 1] + sub[j - 1], prev[j] - GAP, cur[j - 1] - GAP)
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return int(best)


class SmithWatermanApp(Application):
    """Blocked SW as a task graph: key ``(i, j)`` = block coordinates."""

    name = "sw"
    baseline_policy = Reuse()
    ft_policy = Reuse()

    def __init__(self, config: AppConfig) -> None:
        super().__init__(config)
        self.x, self.y = random_sequences(config.n, config.seed + 1)
        self._b = config.block
        self._B = config.blocks

    # -- block/version mapping (the memory-reuse scheme) ----------------------------------

    def block_of(self, key: Key) -> BlockRef:
        i, j = key
        return BlockRef(("sw", i % 2, j), i // 2)

    # -- spec surface ------------------------------------------------------------------------

    def sink_key(self) -> Key:
        return (self._B - 1, self._B - 1)

    def predecessors(self, key: Key) -> Sequence[Key]:
        i, j = key
        # The last entry is a write-after-read anti-dependence: task (i, j)
        # overwrites the buffer holding (i-2, j)'s output, whose readers
        # are (i-1, j) [a data pred], (i-1, j+1), and (i-2, j+1) [a pred of
        # (i-1, j+1)] -- so waiting on (i-1, j+1) makes the reuse safe
        # ("all uses of a data block causally precede a subsequent
        # definition", Section II).
        return ordered_preds(
            (i > 0, (i - 1, j)),
            (j > 0, (i, j - 1)),
            (i > 0 and j > 0, (i - 1, j - 1)),
            (i > 1 and j + 1 < self._B, (i - 1, j + 1)),
        )

    def successors(self, key: Key) -> Sequence[Key]:
        i, j = key
        B = self._B
        return ordered_preds(
            (i + 1 < B, (i + 1, j)),
            (j + 1 < B, (i, j + 1)),
            (i + 1 < B and j + 1 < B, (i + 1, j + 1)),
            (i >= 1 and i + 1 < B and j > 0, (i + 1, j - 1)),
        )

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        return tuple(self.block_of(p) for p in self.predecessors(key))

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        return (self.block_of(key),)

    def producer(self, ref: BlockRef) -> Key:
        _tag, parity, j = ref.block
        return (2 * ref.version + parity, j)

    def cost(self, key: Key) -> float:
        return float(self._b) ** 2

    def compute_full(self, key: Key, ctx: ComputeContext) -> None:
        i, j = key
        b = self._b
        xs = self.x[i * b : (i + 1) * b]
        ys = self.y[j * b : (j + 1) * b]
        running = 0
        if i > 0:
            up = ctx.read(self.block_of((i - 1, j)))
            top = up[0]
            running = max(running, up[2])
        else:
            top = np.zeros(b, dtype=np.int32)
        if j > 0:
            lf = ctx.read(self.block_of((i, j - 1)))
            left = lf[1]
            running = max(running, lf[2])
        else:
            left = np.zeros(b, dtype=np.int32)
        if i > 0 and j > 0:
            dg = ctx.read(self.block_of((i - 1, j - 1)))
            corner = int(dg[0][-1])
            running = max(running, dg[2])
        else:
            corner = 0
        bottom, right, blockmax = sw_block(
            xs, ys, top, left, corner,
            match_score=MATCH, mismatch_penalty=MISMATCH, gap_penalty=GAP,
        )
        ctx.write(self.block_of(key), (bottom, right, max(running, blockmax)))

    # -- experiment surface -----------------------------------------------------------------------

    def reference(self) -> int:
        return sw_reference(self.x, self.y)

    def extract(self, store: BlockStore) -> int:
        return int(store.read(self.block_of(self.sink_key()))[2])
