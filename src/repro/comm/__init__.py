"""`repro.comm`: pluggable connect/listen communication layer.

One contract (:class:`~repro.comm.core.Comm` /
:class:`~repro.comm.core.Listener`), one wire format
(:mod:`repro.comm.frame`'s length-prefixed pickle frames), three
transports resolved by address scheme:

* ``inproc://name`` -- loopback queues (tests, the explorer);
* ``pipe://`` -- ``multiprocessing`` pipes (what
  :class:`~repro.runtime.procpool.ProcessRuntime` dispatches over);
* ``tcp://host:port`` -- sockets with connect timeout, jittered
  retry/backoff, and heartbeat liveness (what
  :class:`~repro.runtime.cluster.ClusterRuntime` runs on).

Peer loss on any transport collapses into
:class:`~repro.comm.core.CommClosedError`, which the runtimes translate
into ``WORKER_DOWN`` → :class:`~repro.exceptions.WorkerCrashError` → the
untouched FT recovery path.  See docs/DISTRIBUTED.md.
"""

from repro.comm.core import (
    Address,
    Comm,
    CommClosedError,
    Listener,
    connect,
    connect_with_retry,
    listen,
    parse_address,
    register_backend,
)
from repro.comm.frame import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    OversizedFrameError,
    TruncatedFrameError,
    dumps,
    encode_message,
    loads,
    pack_frame,
    pack_frames,
)

# Importing the backend modules is what registers their schemes.
from repro.comm import inproc as _inproc  # noqa: F401,E402
from repro.comm import pipe as _pipe  # noqa: F401,E402
from repro.comm import tcp as _tcp  # noqa: F401,E402
from repro.comm.pipe import PipeComm, pipe_pair, wrap_connection

__all__ = [
    "Address",
    "Comm",
    "CommClosedError",
    "Listener",
    "connect",
    "connect_with_retry",
    "listen",
    "parse_address",
    "register_backend",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "FrameError",
    "OversizedFrameError",
    "TruncatedFrameError",
    "dumps",
    "encode_message",
    "loads",
    "pack_frame",
    "pack_frames",
    "PipeComm",
    "pipe_pair",
    "wrap_connection",
]
