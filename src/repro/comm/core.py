"""Comm core: the `connect`/`listen` entry points and the `Comm` contract.

An *address* is ``scheme://location``; the scheme picks a backend:

========== ===================================================== ===========
scheme     transport                                             location
========== ===================================================== ===========
inproc     in-process loopback queues (tests, the explorer)      any token
pipe       ``multiprocessing.connection`` pipe (ProcessRuntime)  (unused)
tcp        sockets + frame codec + heartbeats (ClusterRuntime)   host:port
========== ===================================================== ===========

Every backend hands out the same two objects:

* :class:`Comm` -- one bidirectional message channel.  ``send(msg)`` and
  ``recv(timeout=...)`` move whole Python messages (the frame codec is a
  transport detail); both raise :class:`CommClosedError` once the peer
  is gone, which is the *only* failure signal callers handle -- a dead
  process, a severed socket, and a missed heartbeat all collapse into
  it.  ``send`` and ``recv`` are each safe from one thread at a time
  (one writer, one reader -- the pattern every runtime here uses); they
  need not be safe against concurrent calls to the *same* method.
* :class:`Listener` -- an accept loop that invokes ``handler(comm)`` on
  its own thread for each inbound connection.

``connect``/``listen`` resolve the scheme through a registry the three
backend modules populate on import, so adding a transport is a module +
one :func:`register_backend` call -- the runtimes never name a backend.

:func:`connect_with_retry` adds the client-side liveness policy: bounded
attempts with jittered exponential backoff, for workers racing the
parent's ``listen`` at startup and for the parent re-dialing a
replacement worker after a crash.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, NamedTuple

from repro.exceptions import ReproError


class CommClosedError(ReproError):
    """The peer is gone: closed, crashed, severed, or heartbeat-silent.

    Deliberately one class for every flavor of peer loss -- callers
    (``ProcessRuntime._submit``, ``ClusterRuntime``) translate it into
    the ``WORKER_DOWN`` → ``WorkerCrashError`` recovery path without
    caring *how* the peer died.
    """

    def __init__(self, message: str = "comm closed") -> None:
        super().__init__(message)


class Address(NamedTuple):
    """A parsed ``scheme://location`` address."""

    scheme: str
    location: str

    def __str__(self) -> str:  # round-trips through parse_address
        return f"{self.scheme}://{self.location}"


def parse_address(addr: str) -> Address:
    """Split ``scheme://location``; raise on a missing/unknown-less scheme."""
    scheme, sep, location = addr.partition("://")
    if not sep or not scheme:
        raise ValueError(f"address {addr!r} is not of the form scheme://location")
    return Address(scheme, location)


class Comm:
    """One bidirectional message channel between two endpoints.

    Subclasses implement the five primitives below.  Messages are
    arbitrary picklable Python objects; delivery is ordered and
    reliable until the peer is lost, after which every primitive
    raises :class:`CommClosedError`.
    """

    #: Human-readable peer address, for telemetry.
    peer: str = "?"

    def send(self, message: Any) -> None:
        """Ship one message; raises :class:`CommClosedError` on a dead peer."""
        raise NotImplementedError

    def send_oob(self, message: Any) -> None:
        """Ship one message with protocol-5 out-of-band buffer treatment:
        large contiguous payloads (numpy blocks, pre-encoded
        ``frame.Encoded`` segments) travel as scattered buffer segments
        instead of being copied into the pickle stream.

        Semantically identical to :meth:`send` -- same ordering, same
        failure signal, and the receiver's plain ``recv`` returns the
        reconstructed message (buffer payloads may arrive as read-only
        views over a transport buffer; see ``frame.OOBFrame`` for the
        ownership rule).  The base implementation falls back to plain
        ``send``: without a ``buffer_callback``, protocol-5 pickling
        serializes every buffer in-band, which is always correct, just
        not zero-copy.  Backends override with a vectored path.
        """
        self.send(message)

    def recv(self, timeout: float | None = None) -> Any:
        """The next message.  ``timeout=None`` blocks until a message or
        peer loss; a finite timeout raises :class:`TimeoutError` if
        nothing arrives in time (the peer may still be healthy)."""
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether ``recv`` would return without blocking.  Returns True
        too when the channel is closed -- the pending "message" is the
        :class:`CommClosedError` that recv will raise."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the channel.  Idempotent; never raises for a peer
        that beat us to it."""
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    # context-manager sugar: every test closes comms this way
    def __enter__(self) -> "Comm":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Listener:
    """An accept loop bound to an address.

    ``handler(comm)`` runs on a listener-owned thread per inbound
    connection.  ``address`` is the concrete bound address (e.g. with
    the kernel-assigned port filled in), suitable for handing to a
    worker process as its connect target.
    """

    address: str = "?"

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# scheme registry


class _Backend(NamedTuple):
    connect: Callable[[str], Comm]
    listen: Callable[[str, Callable[[Comm], None]], Listener]


_BACKENDS: dict[str, _Backend] = {}


def register_backend(
    scheme: str,
    connect: Callable[[str], Comm],
    listen: Callable[[str, Callable[[Comm], None]], Listener],
) -> None:
    """Install a transport for ``scheme`` (called by backend modules on import)."""
    _BACKENDS[scheme] = _Backend(connect, listen)


def _backend(addr: str) -> tuple[_Backend, Address]:
    parsed = parse_address(addr)
    try:
        return _BACKENDS[parsed.scheme], parsed
    except KeyError:
        known = ", ".join(sorted(_BACKENDS)) or "none registered"
        raise ValueError(f"unknown comm scheme {parsed.scheme!r} (known: {known})") from None


def connect(addr: str) -> Comm:
    """Dial ``addr`` once; :class:`CommClosedError` if nobody is listening."""
    backend, parsed = _backend(addr)
    return backend.connect(parsed.location)


def listen(addr: str, handler: Callable[[Comm], None]) -> Listener:
    """Bind ``addr`` and serve inbound connections through ``handler``."""
    backend, parsed = _backend(addr)
    return backend.listen(parsed.location, handler)


def connect_with_retry(
    addr: str,
    attempts: int = 8,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
    rng: random.Random | None = None,
) -> Comm:
    """Dial ``addr`` with jittered exponential backoff between attempts.

    Sleeps ``min(max_delay, base_delay * 2**i) * uniform(0.5, 1.0)``
    after failed attempt ``i`` -- full-jitter-style, so a fleet of
    workers dialing one freshly-bound parent does not stampede in
    lockstep.  Raises the final :class:`CommClosedError` once the
    attempt budget is spent.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    rng = rng if rng is not None else random.Random()
    last: Exception | None = None
    for i in range(attempts):
        try:
            return connect(addr)
        except (CommClosedError, OSError) as exc:
            last = exc
            if i + 1 < attempts:
                delay = min(max_delay, base_delay * (2.0**i))
                time.sleep(delay * (0.5 + 0.5 * rng.random()))
    raise CommClosedError(f"connect to {addr} failed after {attempts} attempts: {last}")
