"""Length-prefixed frame codec: the one wire format every backend speaks.

A *frame* is ``8-byte little-endian unsigned length`` + ``payload``.  A
*payload* is a pickled message (protocol ``HIGHEST_PROTOCOL``), produced
by :func:`dumps` and consumed by :func:`loads`.  Stream transports (TCP)
run the full codec; datagram-ish transports that already preserve
message boundaries (``multiprocessing`` pipes, the in-process loopback)
reuse only the payload layer, so a message that round-trips on one
backend round-trips bit-identically on all of them -- which is what the
wire-safety tests in ``tests/comm/`` pin down for the exception
hierarchy and the shared-memory descriptors.

**The zero-copy data plane** rides the same codec through a second,
*multi-segment* frame kind.  :func:`dumps_oob` pickles a message with
protocol-5 out-of-band buffers: large contiguous payloads (numpy blocks)
are never copied into the pickle stream -- the pickler emits a small
*meta* stream plus a list of :class:`pickle.PickleBuffer` views over the
original array memory.  On the wire that becomes one header whose high
bit (:data:`OOB_FLAG`) marks the frame as scattered, a length table,
and the segments themselves -- which a gather-send (``socket.sendmsg``)
ships straight from the source buffers, no join.  The decoder
reassembles the segments into one pooled receive buffer and yields an
:class:`OOBFrame`: zero-copy read-only ``memoryview`` segments that
:func:`loads_oob` hands to ``pickle.loads(buffers=...)``, so numpy
blocks rematerialize as views over the receive buffer itself.

**Buffer-lifetime safety** is structural, not conventional.  A pooled
receive buffer is recycled only when :meth:`BufferPool.give_back` can
prove nothing aliases it: a ``bytearray`` with live buffer exports
(an ``np.frombuffer`` array, a ``memoryview``) refuses to resize with
``BufferError``, which :meth:`BufferPool.exports_live` probes.  A
consumer that wants to outlive the transport buffer copies out
(:meth:`OOBFrame.take`, or an owned-array copy on cache insert); one
that doesn't simply keeps its views and the buffer is quietly abandoned
to them instead of being reused underneath.  Use-after-recycle is
therefore impossible by construction, and ``tests/comm/test_oob.py``
pins it.

Safety rails, tested on both the encode and decode side:

* **Oversized frames.**  :func:`dumps` / :func:`dumps_oob` refuse to
  produce -- and :class:`FrameDecoder` refuses to accept -- a payload
  larger than ``max_bytes`` (default :data:`MAX_FRAME_BYTES`).  A
  corrupt or adversarial length header therefore cannot make the
  receiver allocate unbounded memory: the decoder raises
  :class:`OversizedFrameError` from the header/table alone.
* **Truncated frames.**  A stream that ends mid-frame (killed peer,
  severed connection) surfaces as :class:`TruncatedFrameError` from
  :meth:`FrameDecoder.close`, never as a silently short message.

Batching is first-class: :func:`pack_frames` concatenates many frames
into one buffer for a single ``send``/``write`` syscall, and the decoder
yields every complete frame it has absorbed.
"""

from __future__ import annotations

import pickle
import struct
import threading
from typing import Any, Iterable, Iterator, NamedTuple

from repro.exceptions import ReproError

#: Default ceiling on one payload's size: 256 MiB.  Big enough for any
#: block a benchmark ships, small enough that a garbage length header
#: cannot OOM the receiver.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Frame header: unsigned 64-bit little-endian payload length.
_HEADER = struct.Struct("<Q")
HEADER_BYTES = _HEADER.size

#: High bit of the header marks a multi-segment (out-of-band) frame; the
#: low bits then carry the segment count, not a byte length.  Safe to
#: steal: MAX_FRAME_BYTES is far below 2**63, so a plain length can
#: never set it and plain frames stay bit-identical to the v7 wire.
OOB_FLAG = 1 << 63

#: Ceiling on segments per OOB frame (meta + buffers).  Way above any
#: real job batch; exists so a corrupt header cannot demand a gigabyte
#: length table.
MAX_OOB_SEGMENTS = 4096

#: Buffers smaller than this stay in-band: below it, per-segment framing
#: and syscall overhead cost more than the memcpy they would save.
OOB_MIN_BYTES = 4096


class FrameError(ReproError):
    """Base class for frame-codec failures (a *protocol* problem, never a
    detected task fault -- these do not route through recovery)."""


class OversizedFrameError(FrameError):
    """A payload exceeded the frame-size ceiling (encode or decode side)."""

    def __init__(self, nbytes: int, limit: int) -> None:
        super().__init__(f"frame payload of {nbytes} bytes exceeds the {limit}-byte limit")
        self.nbytes = nbytes
        self.limit = limit


class TruncatedFrameError(FrameError):
    """The stream ended mid-frame: ``missing`` more bytes were expected."""

    def __init__(self, have: int, want: int) -> None:
        super().__init__(f"stream truncated mid-frame: have {have} of {want} payload bytes")
        self.have = have
        self.want = want


# ---------------------------------------------------------------------------
# payload layer (shared by every backend)


def dumps(message: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into a payload, enforcing the size ceiling."""
    payload = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_bytes:
        raise OversizedFrameError(len(payload), max_bytes)
    return payload


def loads(payload: bytes) -> Any:
    """Inverse of :func:`dumps`."""
    return pickle.loads(payload)


def dumps_oob(
    message: Any,
    max_bytes: int = MAX_FRAME_BYTES,
    oob_min_bytes: int = OOB_MIN_BYTES,
) -> tuple[bytes, list[pickle.PickleBuffer]]:
    """Serialize with protocol-5 out-of-band buffers: ``(meta, buffers)``.

    ``meta`` is the pickle stream with every large contiguous buffer
    (numpy block payloads, big ``bytes``) *extracted*: the buffers ride
    separately as :class:`pickle.PickleBuffer` views over the original
    memory -- zero copies on the encode side.  Small or non-contiguous
    buffers stay in-band (framing them separately costs more than the
    memcpy saves).  :func:`loads_oob` is the inverse.
    """
    buffers: list[pickle.PickleBuffer] = []

    # buffer_callback convention: a *truthy* return keeps the buffer
    # in-band; a *falsy* return extracts it out-of-band.
    def keep_in_band(pb: pickle.PickleBuffer) -> bool:
        try:
            raw = pb.raw()  # raises for non-contiguous memory
        except BufferError:
            return True
        if raw.nbytes < oob_min_bytes or len(buffers) >= MAX_OOB_SEGMENTS - 1:
            return True
        buffers.append(pb)
        return False

    meta = pickle.dumps(message, protocol=5, buffer_callback=keep_in_band)
    total = len(meta) + sum(b.raw().nbytes for b in buffers)
    if total > max_bytes:
        raise OversizedFrameError(total, max_bytes)
    return meta, buffers


def loads_oob(meta: Any, buffers: Iterable[Any]) -> Any:
    """Inverse of :func:`dumps_oob`.  ``buffers`` may be any
    buffer-protocol objects (the decoder's memoryviews, PickleBuffers,
    bytes): numpy payloads rematerialize as zero-copy views over them."""
    return pickle.loads(meta, buffers=buffers)


class Encoded(NamedTuple):
    """One message pre-encoded by :func:`dumps_oob`, shippable *inside*
    another OOB message.

    The parent's send-side encoded-block cache stores these: pickling an
    ``Encoded`` through :meth:`Comm.send_oob` re-emits only the tiny
    ``meta`` stream -- the buffer segments ride the outer frame's scatter
    list untouched, so a block fetched by W workers is pickled once and
    gathered W times.  On the receive side ``buffers`` rematerialize as
    memoryviews over the transport buffer and :meth:`load` decodes the
    original value as zero-copy views.
    """

    meta: bytes
    buffers: tuple

    def load(self) -> Any:
        return loads_oob(self.meta, self.buffers)

    @property
    def nbytes(self) -> int:
        return len(self.meta) + sum(memoryview(b).nbytes for b in self.buffers)


def encode_oob(
    message: Any,
    max_bytes: int = MAX_FRAME_BYTES,
    oob_min_bytes: int = OOB_MIN_BYTES,
) -> Encoded:
    """:func:`dumps_oob` wrapped as one :class:`Encoded` value."""
    meta, buffers = dumps_oob(message, max_bytes, oob_min_bytes)
    return Encoded(meta, tuple(buffers))


# ---------------------------------------------------------------------------
# frame layer (stream transports)


def pack_frame(payload: bytes) -> bytes:
    """One header + payload, ready for a stream write."""
    return _HEADER.pack(len(payload)) + payload


def pack_frames(payloads: Iterable[bytes]) -> bytes:
    """Many frames in one contiguous buffer (one ``sendall`` for a batch)."""
    parts: list[bytes] = []
    for p in payloads:
        parts.append(_HEADER.pack(len(p)))
        parts.append(p)
    return b"".join(parts)


def pack_frame_oob(meta: bytes, buffers: Iterable[Any]) -> list[Any]:
    """One multi-segment frame as a gather list: ``[header+table, meta,
    *raw buffer views]`` -- ready for ``socket.sendmsg``; nothing is
    joined or copied."""
    raws = [
        b.raw() if isinstance(b, pickle.PickleBuffer) else memoryview(b)
        for b in buffers
    ]
    lens = [len(meta)] + [r.nbytes for r in raws]
    if len(lens) > MAX_OOB_SEGMENTS:
        raise FrameError(f"{len(lens)} OOB segments exceed the {MAX_OOB_SEGMENTS} cap")
    head = _HEADER.pack(OOB_FLAG | len(lens)) + b"".join(_HEADER.pack(n) for n in lens)
    return [head, meta, *raws]


def unpack_frames(buf: bytes, max_bytes: int = MAX_FRAME_BYTES) -> list[bytes]:
    """Inverse of :func:`pack_frames`: the payloads of a packed buffer.

    The receive side of a legacy micro-batched ``("jobs", ...)`` dispatch
    frame: the whole batch arrives as one message, and this splits it
    back into per-job payloads.  Raises :class:`TruncatedFrameError` on a
    buffer that ends mid-frame and :class:`OversizedFrameError` on a
    corrupt length header, exactly like the streaming decoder.
    """
    decoder = FrameDecoder(max_bytes)
    decoder.feed(buf)
    decoder.close()
    return list(decoder.frames())


class BufferPool:
    """Reusable receive buffers with structural use-after-recycle safety.

    ``lease(n)`` hands out a ``bytearray`` of at least ``n`` bytes,
    reusing a pooled one when possible.  ``give_back`` re-pools it only
    when :meth:`exports_live` proves no view or array still aliases it;
    otherwise the buffer is abandoned to its consumers (garbage
    collection reclaims it when the last view dies) and a fresh one
    serves the next frame.  Thread-safe: the TCP pump and a recycling
    sweep may race.
    """

    def __init__(self, max_buffers: int = 4, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_buffers = max_buffers
        self.max_bytes = max_bytes
        self._free: list[bytearray] = []
        self._lock = threading.Lock()

    @staticmethod
    def exports_live(buf: bytearray) -> bool:
        """Whether anything still aliases ``buf``.  A bytearray with live
        buffer exports refuses to resize -- the one probe the interpreter
        itself guarantees is export-exact."""
        try:
            buf.append(0)
            buf.pop()
            return False
        except BufferError:
            return True

    def lease(self, nbytes: int) -> bytearray:
        with self._lock:
            for i, buf in enumerate(self._free):
                if len(buf) >= nbytes:
                    return self._free.pop(i)
        return bytearray(max(nbytes, 1))

    def give_back(self, buf: bytearray) -> bool:
        """Re-pool ``buf`` if nothing aliases it; returns whether it was
        (or safely could have been) retired from its consumer's view."""
        if self.exports_live(buf):
            return False
        with self._lock:
            pooled = sum(len(b) for b in self._free)
            if len(self._free) < self.max_buffers and pooled + len(buf) <= self.max_bytes:
                self._free.append(buf)
        return True


class OOBFrame:
    """One decoded multi-segment frame: ``meta`` (owned bytes) plus
    zero-copy read-only ``buffers`` over a pooled receive buffer.

    Ownership rule: the views are valid indefinitely -- the underlying
    buffer is recycled only once every view (and everything built on
    one, e.g. an ``np.frombuffer`` array) is released or dead; holding a
    view simply pins the buffer out of the pool.  A consumer that wants
    compact long-term ownership calls :meth:`take`, which copies the
    segments out and frees the transport buffer immediately.
    """

    __slots__ = ("meta", "buffers", "_buf", "_pool")

    def __init__(
        self,
        meta: bytes,
        buffers: tuple,
        buf: bytearray | None,
        pool: BufferPool | None,
    ) -> None:
        self.meta = meta
        self.buffers = buffers
        self._buf = buf
        self._pool = pool

    @property
    def nbytes(self) -> int:
        return len(self.meta) + sum(v.nbytes for v in self.buffers)

    def load(self) -> Any:
        """Decode the message; buffer-backed payloads are views into the
        receive buffer (see the ownership rule above)."""
        return loads_oob(self.meta, self.buffers)

    def take(self) -> "OOBFrame":
        """Copy the segments into owned memory and recycle the transport
        buffer now.  After ``take`` the frame's views are safe forever,
        independent of pool reuse."""
        if self._buf is not None:
            # Never force-release the old views: a decoded message may
            # hold the *same* view objects (pickle resolves out-of-band
            # PickleBuffers to the exact buffer items it was given), so
            # releasing them would kill the consumer's copies too.  Drop
            # our references and let the pool's export probe decide.
            self.buffers = tuple(memoryview(bytes(v)) for v in self.buffers)
            buf, self._buf = self._buf, None
            if self._pool is not None:
                self._pool.give_back(buf)
        return self

    def try_recycle(self) -> bool:
        """Return the receive buffer to the pool if no consumer still
        aliases it.  Idempotent; safe to retry until it reports True.
        Drops the frame's own views (``load`` is no longer possible), so
        only consumer-held aliases keep the buffer pinned."""
        if self._buf is None:
            return True
        # Dropping our references releases each view *iff* nothing else
        # holds it (refcounting): a consumer sharing the view object, or
        # an array exporting from it, keeps the buffer visibly aliased
        # and the export probe below refuses to re-pool it.
        self.buffers = ()
        buf = self._buf
        if self._pool is not None:
            if not self._pool.give_back(buf):
                return False  # a consumer still aliases the buffer
        elif BufferPool.exports_live(buf):
            return False
        self._buf = None
        return True


#: Decoder states.
_ST_HEADER, _ST_TABLE, _ST_BODY = 0, 1, 2


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunk stream.

    Feed whatever the transport hands you (``feed``), iterate the
    complete payloads (``frames``) -- ``bytes`` for plain frames, an
    :class:`OOBFrame` for multi-segment ones -- and ``close()`` when the
    stream ends, which raises :class:`TruncatedFrameError` if the peer
    died mid-frame.  Length headers are validated against ``max_bytes``
    *before* any payload is buffered.

    Transports that want to skip the intermediate chunk copy can ask for
    the current payload destination (:meth:`direct_destination`) and
    ``recv_into`` it, reporting progress with :meth:`direct_advance` --
    large frames then land in their final buffer straight off the
    socket.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES, pool: BufferPool | None = None) -> None:
        self.max_bytes = max_bytes
        self.pool = pool if pool is not None else BufferPool()
        self._ready: list[Any] = []
        self._scratch = bytearray()  # header/table accumulation
        self._state = _ST_HEADER
        self._scratch_need = HEADER_BYTES
        self._seg_lens: list[int] | None = None  # OOB segment lengths
        self._need = 0  # body bytes expected
        self._filled = 0  # body bytes received
        self._dest: bytearray | None = None
        self._dest_view: memoryview | None = None

    # -- the feed path -------------------------------------------------------

    def feed(self, chunk: Any) -> int:
        """Absorb ``chunk``; return how many frames are now ready."""
        mv = memoryview(chunk)
        while mv.nbytes:
            if self._state == _ST_BODY:
                take = min(mv.nbytes, self._need - self._filled)
                assert self._dest_view is not None
                self._dest_view[self._filled : self._filled + take] = mv[:take]
                mv = mv[take:]
                self._advance_body(take)
            elif (
                self._state == _ST_HEADER
                and not self._scratch
                and mv.nbytes >= HEADER_BYTES
            ):
                # Fast path for the dominant shape -- a whole plain frame
                # sitting in the fed chunk -- skipping the scratch
                # accumulator and the bytearray destination entirely.
                (word,) = _HEADER.unpack_from(mv)
                if word & OOB_FLAG:
                    nsegs = word ^ OOB_FLAG
                    if not 1 <= nsegs <= MAX_OOB_SEGMENTS:
                        raise OversizedFrameError(
                            nsegs * HEADER_BYTES, self.max_bytes
                        )
                    self._state = _ST_TABLE
                    self._scratch_need = HEADER_BYTES * nsegs
                    mv = mv[HEADER_BYTES:]
                    continue
                if word > self.max_bytes:
                    raise OversizedFrameError(word, self.max_bytes)
                end = HEADER_BYTES + int(word)
                if mv.nbytes >= end:
                    self._ready.append(bytes(mv[HEADER_BYTES:end]))
                    mv = mv[end:]
                else:
                    self._begin_body(int(word), oob=False)
                    mv = mv[HEADER_BYTES:]
            else:
                take = min(mv.nbytes, self._scratch_need - len(self._scratch))
                self._scratch += mv[:take]
                mv = mv[take:]
                if len(self._scratch) == self._scratch_need:
                    self._consume_scratch()
        return len(self._ready)

    def _consume_scratch(self) -> None:
        if self._state == _ST_HEADER:
            (word,) = _HEADER.unpack(self._scratch)
            self._scratch.clear()
            if word & OOB_FLAG:
                nsegs = word ^ OOB_FLAG
                if not 1 <= nsegs <= MAX_OOB_SEGMENTS:
                    # A runaway segment count is the same rail as a
                    # runaway length: an allocation demand we refuse
                    # from the header alone.
                    raise OversizedFrameError(nsegs * HEADER_BYTES, self.max_bytes)
                self._state = _ST_TABLE
                self._scratch_need = HEADER_BYTES * nsegs
            else:
                if word > self.max_bytes:
                    raise OversizedFrameError(word, self.max_bytes)
                self._begin_body(int(word), oob=False)
        else:  # _ST_TABLE
            n = self._scratch_need // HEADER_BYTES
            lens = list(struct.unpack(f"<{n}Q", self._scratch))
            self._scratch.clear()
            total = sum(lens)
            if total > self.max_bytes:
                raise OversizedFrameError(total, self.max_bytes)
            self._seg_lens = lens
            self._begin_body(total, oob=True)

    def _begin_body(self, need: int, oob: bool) -> None:
        self._state = _ST_BODY
        self._need = need
        self._filled = 0
        if oob:
            self._dest = self.pool.lease(need)
        else:
            self._dest = bytearray(need)
        self._dest_view = memoryview(self._dest)
        if need == 0:
            self._complete_body()

    def _advance_body(self, n: int) -> None:
        self._filled += n
        if self._filled == self._need:
            self._complete_body()

    def _complete_body(self) -> None:
        dest = self._dest
        assert dest is not None and self._dest_view is not None
        self._dest_view.release()
        if self._seg_lens is None:
            self._ready.append(bytes(memoryview(dest)[: self._need]))
        else:
            mv = memoryview(dest)
            off = self._seg_lens[0]
            meta = bytes(mv[:off])
            views = []
            for n in self._seg_lens[1:]:
                views.append(mv[off : off + n].toreadonly())
                off += n
            mv.release()
            self._ready.append(OOBFrame(meta, tuple(views), dest, self.pool))
        self._dest = self._dest_view = None
        self._seg_lens = None
        self._state = _ST_HEADER
        self._scratch_need = HEADER_BYTES
        self._need = self._filled = 0

    # -- the direct (recv_into) path ----------------------------------------

    def direct_destination(self) -> memoryview | None:
        """The writable tail of the current frame body, for a transport
        that wants to ``recv_into`` it directly -- or ``None`` while the
        decoder is mid-header/table (feed those; they are tiny)."""
        if self._state == _ST_BODY and self._filled < self._need:
            assert self._dest_view is not None
            return self._dest_view[self._filled : self._need]
        return None

    def direct_advance(self, n: int) -> int:
        """Report ``n`` bytes written through :meth:`direct_destination`;
        returns how many frames are now ready."""
        if self._state != _ST_BODY or self._filled + n > self._need:
            raise FrameError("direct_advance outside a frame body")
        self._advance_body(n)
        return len(self._ready)

    # -- draining ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Complete frames decoded but not yet taken."""
        return len(self._ready)

    def next_frame(self) -> Any:
        """The oldest ready payload (``bytes`` or :class:`OOBFrame`), or
        ``None``."""
        return self._ready.pop(0) if self._ready else None

    def frames(self) -> Iterator[Any]:
        """Drain every ready payload."""
        while self._ready:
            yield self._ready.pop(0)

    def close(self) -> None:
        """Declare end-of-stream; raises if a frame was left incomplete."""
        if self._state == _ST_BODY:
            raise TruncatedFrameError(self._filled, self._need)
        if self._scratch:
            raise TruncatedFrameError(len(self._scratch), self._scratch_need)


def encode_message(message: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """``pack_frame(dumps(message))`` -- the full stream encoding."""
    return pack_frame(dumps(message, max_bytes))


def encode_message_oob(message: Any, max_bytes: int = MAX_FRAME_BYTES) -> list[Any]:
    """The gather-list stream encoding of one message: a plain single
    frame when nothing qualified for out-of-band treatment, else a
    multi-segment frame (``pack_frame_oob``).  Every element supports
    the buffer protocol, ready for a vectored send."""
    meta, buffers = dumps_oob(message, max_bytes)
    if not buffers:
        return [pack_frame(meta)]
    return pack_frame_oob(meta, buffers)
