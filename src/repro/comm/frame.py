"""Length-prefixed frame codec: the one wire format every backend speaks.

A *frame* is ``8-byte little-endian unsigned length`` + ``payload``.  A
*payload* is a pickled message (protocol ``HIGHEST_PROTOCOL``), produced
by :func:`dumps` and consumed by :func:`loads`.  Stream transports (TCP)
run the full codec; datagram-ish transports that already preserve
message boundaries (``multiprocessing`` pipes, the in-process loopback)
reuse only the payload layer, so a message that round-trips on one
backend round-trips bit-identically on all of them -- which is what the
wire-safety tests in ``tests/comm/`` pin down for the exception
hierarchy and the shared-memory descriptors.

Safety rails, tested on both the encode and decode side:

* **Oversized frames.**  :func:`dumps` refuses to produce -- and
  :class:`FrameDecoder` refuses to accept -- a payload larger than
  ``max_bytes`` (default :data:`MAX_FRAME_BYTES`).  A corrupt or
  adversarial length header therefore cannot make the receiver allocate
  unbounded memory: the decoder raises :class:`OversizedFrameError`
  after reading just the 8-byte header.
* **Truncated frames.**  A stream that ends mid-frame (killed peer,
  severed connection) surfaces as :class:`TruncatedFrameError` from
  :meth:`FrameDecoder.close`, never as a silently short message.

Batching is first-class: :func:`pack_frames` concatenates many frames
into one buffer for a single ``send``/``write`` syscall, and the decoder
yields every complete frame it has absorbed.  This is the on-ramp for
the dispatch fast path (ROADMAP item 4): micro-batched task dispatch is
*this* codec fed more than one payload per call.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterable, Iterator

from repro.exceptions import ReproError

#: Default ceiling on one payload's size: 256 MiB.  Big enough for any
#: block a benchmark ships, small enough that a garbage length header
#: cannot OOM the receiver.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Frame header: unsigned 64-bit little-endian payload length.
_HEADER = struct.Struct("<Q")
HEADER_BYTES = _HEADER.size


class FrameError(ReproError):
    """Base class for frame-codec failures (a *protocol* problem, never a
    detected task fault -- these do not route through recovery)."""


class OversizedFrameError(FrameError):
    """A payload exceeded the frame-size ceiling (encode or decode side)."""

    def __init__(self, nbytes: int, limit: int) -> None:
        super().__init__(f"frame payload of {nbytes} bytes exceeds the {limit}-byte limit")
        self.nbytes = nbytes
        self.limit = limit


class TruncatedFrameError(FrameError):
    """The stream ended mid-frame: ``missing`` more bytes were expected."""

    def __init__(self, have: int, want: int) -> None:
        super().__init__(f"stream truncated mid-frame: have {have} of {want} payload bytes")
        self.have = have
        self.want = want


# ---------------------------------------------------------------------------
# payload layer (shared by every backend)


def dumps(message: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into a payload, enforcing the size ceiling."""
    payload = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_bytes:
        raise OversizedFrameError(len(payload), max_bytes)
    return payload


def loads(payload: bytes) -> Any:
    """Inverse of :func:`dumps`."""
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# frame layer (stream transports)


def pack_frame(payload: bytes) -> bytes:
    """One header + payload, ready for a stream write."""
    return _HEADER.pack(len(payload)) + payload


def pack_frames(payloads: Iterable[bytes]) -> bytes:
    """Many frames in one contiguous buffer (one ``sendall`` for a batch)."""
    parts: list[bytes] = []
    for p in payloads:
        parts.append(_HEADER.pack(len(p)))
        parts.append(p)
    return b"".join(parts)


def unpack_frames(buf: bytes, max_bytes: int = MAX_FRAME_BYTES) -> list[bytes]:
    """Inverse of :func:`pack_frames`: the payloads of a packed buffer.

    The receive side of a micro-batched ``("jobs", ...)`` dispatch frame:
    the whole batch arrives as one message, and this splits it back into
    per-job payloads.  Raises :class:`TruncatedFrameError` on a buffer
    that ends mid-frame and :class:`OversizedFrameError` on a corrupt
    length header, exactly like the streaming decoder.
    """
    decoder = FrameDecoder(max_bytes)
    decoder.feed(buf)
    decoder.close()
    return list(decoder.frames())


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunk stream.

    Feed whatever the transport hands you (``feed``), iterate the
    complete payloads (``frames``), and ``close()`` when the stream ends
    -- which raises :class:`TruncatedFrameError` if the peer died
    mid-frame.  The decoder validates each length header against
    ``max_bytes`` *before* buffering the payload.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buf = bytearray()
        self._need: int | None = None  # payload bytes awaited, None = awaiting header
        self._ready: list[bytes] = []

    def feed(self, chunk: bytes) -> int:
        """Absorb ``chunk``; return how many frames are now ready."""
        self._buf.extend(chunk)
        while True:
            if self._need is None:
                if len(self._buf) < HEADER_BYTES:
                    break
                (need,) = _HEADER.unpack_from(self._buf)
                if need > self.max_bytes:
                    raise OversizedFrameError(need, self.max_bytes)
                del self._buf[:HEADER_BYTES]
                self._need = need
            if len(self._buf) < self._need:
                break
            self._ready.append(bytes(self._buf[: self._need]))
            del self._buf[: self._need]
            self._need = None
        return len(self._ready)

    @property
    def pending(self) -> int:
        """Complete frames decoded but not yet taken."""
        return len(self._ready)

    def next_frame(self) -> bytes | None:
        """The oldest ready payload, or ``None``."""
        return self._ready.pop(0) if self._ready else None

    def frames(self) -> Iterator[bytes]:
        """Drain every ready payload."""
        while self._ready:
            yield self._ready.pop(0)

    def close(self) -> None:
        """Declare end-of-stream; raises if a frame was left incomplete."""
        if self._need is not None:
            raise TruncatedFrameError(len(self._buf), self._need)
        if self._buf:
            raise TruncatedFrameError(len(self._buf), HEADER_BYTES)


def encode_message(message: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """``pack_frame(dumps(message))`` -- the full stream encoding."""
    return pack_frame(dumps(message, max_bytes))
