"""In-process loopback backend: ``inproc://<name>``.

Two queues and no bytes on the wire -- but the *messages* still pass
through the payload codec (:func:`repro.comm.frame.dumps` /
:func:`~repro.comm.frame.loads`), so anything that is not wire-safe
fails here too, in a plain single-process test, before it ever reaches
a pipe or a socket.  This is the backend the comm tests and the cluster
selftest's connection-sever path run on.

Listeners live in a process-local registry keyed by name; ``connect``
performs a rendezvous: it builds the queue pair, hands the server side
to the listener's handler (run on a listener-owned thread, matching the
TCP backend's threading shape), and returns the client side.

Severing: :meth:`InprocComm.sever` drops the channel *without* the
polite close handshake -- the peer just stops hearing from us, exactly
like a yanked network cable.  The cluster runtime uses this to test the
connection-severed recovery path without killing any process.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Any, Callable, NamedTuple

from repro.comm import frame
from repro.comm.core import Comm, CommClosedError, Listener, register_backend

#: Sentinel a closing endpoint enqueues so the peer's blocking recv wakes.
_CLOSED = object()


class _OOBItem(NamedTuple):
    """A queue item produced by ``send_oob``: the pickle-5 meta stream
    plus the extracted :class:`pickle.PickleBuffer` views.  In-process
    the views alias the *sender's* buffers directly -- true zero copy --
    which is safe because block payloads are write-once by the store
    discipline (and the same aliasing the shm path already exposes)."""

    meta: bytes
    buffers: tuple


class InprocComm(Comm):
    """One side of a loopback channel (a send queue and a recv queue)."""

    def __init__(self, send_q: "queue.Queue[Any]", recv_q: "queue.Queue[Any]", peer: str) -> None:
        self._send_q = send_q
        self._recv_q = recv_q
        self._closed = False
        self._peer_gone = False
        self._head: Any = None  # payload buffered by poll()
        self._has_head = False
        self.peer = peer

    def send(self, message: Any) -> None:
        if self._closed or self._peer_gone:
            raise CommClosedError(f"send on closed inproc comm to {self.peer}")
        # Encode even though no bytes move: wire-safety is enforced on
        # every backend, so pickle failures surface in loopback tests.
        self._send_q.put(frame.dumps(message))

    def send_oob(self, message: Any) -> None:
        if self._closed or self._peer_gone:
            raise CommClosedError(f"send on closed inproc comm to {self.peer}")
        meta, buffers = frame.dumps_oob(message)
        self._send_q.put(_OOBItem(meta, tuple(buffers)))

    @staticmethod
    def _decode(item: Any) -> Any:
        if isinstance(item, _OOBItem):
            return frame.loads_oob(item.meta, item.buffers)
        return frame.loads(item)

    def recv(self, timeout: float | None = None) -> Any:
        if self._has_head:
            payload, self._head, self._has_head = self._head, None, False
            return self._decode(payload)
        if self._closed or self._peer_gone:
            raise CommClosedError(f"recv on closed inproc comm to {self.peer}")
        try:
            item = self._recv_q.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(f"no message within {timeout}s from {self.peer}") from None
        if item is _CLOSED:
            self._peer_gone = True
            raise CommClosedError(f"inproc peer {self.peer} closed")
        return self._decode(item)

    def poll(self, timeout: float = 0.0) -> bool:
        if self._has_head or self._closed or self._peer_gone:
            return True
        try:
            item = self._recv_q.get(timeout=timeout if timeout > 0 else None) \
                if timeout > 0 else self._recv_q.get_nowait()
        except queue.Empty:
            return False
        if item is _CLOSED:
            self._peer_gone = True
        else:
            self._head, self._has_head = item, True
        return True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._send_q.put(_CLOSED)

    def sever(self) -> None:
        """Die impolitely: stop the channel with no close notification.

        The peer's next blocking ``recv`` still has to wake, so the
        sentinel is enqueued -- what "impolite" means here is that *this*
        side refuses all further traffic immediately, mid-protocol,
        regardless of handshake state.
        """
        self._closed = True
        self._peer_gone = True
        self._send_q.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed or self._peer_gone


class InprocListener(Listener):
    def __init__(self, name: str, handler: Callable[[Comm], None]) -> None:
        self.address = f"inproc://{name}"
        self._name = name
        self._handler = handler
        self._closed = False
        self._threads: list[threading.Thread] = []

    def _accept(self, server_comm: InprocComm) -> None:
        if self._closed:
            raise CommClosedError(f"listener {self.address} is closed")
        t = threading.Thread(
            target=self._handler, args=(server_comm,), daemon=True, name="repro-inproc-accept"
        )
        self._threads.append(t)
        t.start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with _REGISTRY_LOCK:
            if _REGISTRY.get(self._name) is self:
                del _REGISTRY[self._name]


_REGISTRY: dict[str, InprocListener] = {}
_REGISTRY_LOCK = threading.Lock()
_ANON = itertools.count()


def _listen(location: str, handler: Callable[[Comm], None]) -> Listener:
    name = location or f"anon-{next(_ANON)}"
    listener = InprocListener(name, handler)
    with _REGISTRY_LOCK:
        if name in _REGISTRY:
            raise OSError(f"inproc://{name} is already bound")
        _REGISTRY[name] = listener
    return listener


def _connect(location: str) -> Comm:
    with _REGISTRY_LOCK:
        listener = _REGISTRY.get(location)
    if listener is None:
        raise CommClosedError(f"nobody listening on inproc://{location}")
    a_to_b: queue.Queue[Any] = queue.Queue()
    b_to_a: queue.Queue[Any] = queue.Queue()
    client = InprocComm(a_to_b, b_to_a, peer=f"inproc://{location}")
    server = InprocComm(b_to_a, a_to_b, peer=f"inproc://{location}#client")
    listener._accept(server)
    return client


register_backend("inproc", _connect, _listen)
