"""Pipe backend: ``pipe://`` over ``multiprocessing.connection``.

This wraps the exact transport :class:`~repro.runtime.procpool.ProcessRuntime`
used before the comm layer existed -- a ``multiprocessing.Pipe``
connection pair -- behind the :class:`~repro.comm.core.Comm` contract,
so the procpool dispatch loop speaks the same interface as the cluster
runtime while its bytes move exactly as before (``Connection.send`` /
``recv``, which already preserve message boundaries: no length-prefix
framing needed, the OS pipe *is* the frame).

Because a pipe's two ends are created together by the parent and one is
inherited by the child at fork/spawn, there is no dial step:
``pipe_pair()`` replaces ``multiprocessing.Pipe()`` and
:func:`wrap_connection` adapts an existing ``Connection`` (the child's
inherited end).  ``connect``/``listen`` by address string are
deliberately unsupported -- a pipe has no address space -- and raise
``ValueError`` pointing callers at ``pipe_pair``.

**Full-duplex under pipelined dispatch.**  The pair is a socketpair
underneath, so the two directions are independent: one thread may block
in ``send`` (the flat-combining flusher shipping a ``jobs`` batch) while
another blocks in ``poll``/``recv`` (the drain leader collecting
streamed replies) on the *same* end, concurrently and safely.  What the
:class:`~repro.comm.core.Comm` contract still requires -- and the
pipelined dispatch layer enforces with its per-channel send/recv locks
-- is at most one sender and one receiver at a time.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
from typing import Any, Callable

from repro.comm import frame
from repro.comm.core import Comm, CommClosedError, Listener, register_backend

#: The errors a multiprocessing Connection raises once the peer is gone.
_DEAD_PEER = (BrokenPipeError, EOFError, ConnectionResetError, OSError)

#: First byte of a multi-segment (OOB) message group.  A pickle stream
#: (protocol >= 2) always opens with the PROTO opcode ``0x80``, so one
#: byte discriminates the two message kinds unambiguously.
_OOB_MAGIC = 0xB5

#: How many transport buffers a PipeComm keeps an eye on for recycling
#: before abandoning the oldest to its consumers.
_MAX_LENT = 64


class PipeComm(Comm):
    """A :class:`Comm` over one end of a ``multiprocessing`` pipe."""

    __slots__ = ("_conn", "_closed", "peer", "_pool", "_lent")

    def __init__(self, conn: Any, peer: str = "pipe://") -> None:
        self._conn = conn
        self._closed = False
        self.peer = peer
        self._pool = frame.BufferPool()
        self._lent: list[frame.OOBFrame] = []

    def send(self, message: Any) -> None:
        if self._closed:
            raise CommClosedError(f"send on closed pipe comm ({self.peer})")
        self._sweep_lent()
        try:
            self._conn.send(message)
        except _DEAD_PEER as exc:
            raise CommClosedError(f"pipe peer gone during send: {exc}") from exc

    def send_oob(self, message: Any) -> None:
        """Ship with out-of-band buffers: a magic-prefixed length table,
        then the meta stream and every buffer as its own pipe message --
        the Connection writes each straight from the source memory, no
        join and no intermediate pickle copy."""
        if self._closed:
            raise CommClosedError(f"send on closed pipe comm ({self.peer})")
        self._sweep_lent()
        meta, buffers = frame.dumps_oob(message)
        try:
            if not buffers:
                self._conn.send_bytes(meta)
                return
            raws = [b.raw() for b in buffers]
            lens = [len(meta)] + [r.nbytes for r in raws]
            table = struct.pack(f"<BI{len(lens)}Q", _OOB_MAGIC, len(lens), *lens)
            self._conn.send_bytes(table)
            self._conn.send_bytes(meta)
            for raw in raws:
                self._conn.send_bytes(raw)
        except _DEAD_PEER as exc:
            raise CommClosedError(f"pipe peer gone during send: {exc}") from exc

    def _recv_oob(self, table: bytes) -> Any:
        """Reassemble one multi-segment group into a pooled buffer and
        decode it as zero-copy views (the OOBFrame ownership rule)."""
        (nsegs,) = struct.unpack_from("<I", table, 1)
        lens = struct.unpack_from(f"<{nsegs}Q", table, 5)
        total = sum(lens)
        if total > frame.MAX_FRAME_BYTES:
            raise frame.OversizedFrameError(total, frame.MAX_FRAME_BYTES)
        buf = self._pool.lease(total)
        with memoryview(buf) as mv:
            off = 0
            for n in lens:
                got = self._conn.recv_bytes_into(mv[off : off + n])
                if got != n:
                    raise frame.FrameError(
                        f"OOB segment size mismatch: expected {n}, got {got}"
                    )
                off += n
        meta = bytes(memoryview(buf)[: lens[0]])
        views = []
        off = lens[0]
        for n in lens[1:]:
            views.append(memoryview(buf)[off : off + n].toreadonly())
            off += n
        oob = frame.OOBFrame(meta, tuple(views), buf, self._pool)
        message = oob.load()
        if not oob.try_recycle():
            self._lent.append(oob)
        return message

    def _sweep_lent(self) -> None:
        """Retry recycling transport buffers whose consumers have let go."""
        if self._lent:
            self._lent = [f for f in self._lent if not f.try_recycle()]
            del self._lent[:-_MAX_LENT]

    def recv(self, timeout: float | None = None) -> Any:
        if self._closed:
            raise CommClosedError(f"recv on closed pipe comm ({self.peer})")
        self._sweep_lent()
        try:
            if timeout is not None and not self._conn.poll(timeout):
                raise TimeoutError(f"no message within {timeout}s on {self.peer}")
            data = self._conn.recv_bytes()
            if data[:1] == bytes([_OOB_MAGIC]):
                return self._recv_oob(data)
            # A plain message: Connection.send pickled it, recv_bytes
            # handed us the identical payload -- decode it ourselves.
            return pickle.loads(data)
        except _DEAD_PEER as exc:
            raise CommClosedError(f"pipe peer gone during recv: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            return True
        try:
            return self._conn.poll(timeout)
        except _DEAD_PEER:
            return True  # the pending "message" is CommClosedError

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def fileno(self) -> int:
        """Underlying descriptor (procpool's liveness poll wants it)."""
        return self._conn.fileno()

    @property
    def connection(self) -> Any:
        """The raw ``multiprocessing`` Connection -- what a parent hands
        to ``Process(args=...)`` so the child can inherit this end."""
        return self._conn


def wrap_connection(conn: Any, peer: str = "pipe://") -> PipeComm:
    """Adapt an existing ``multiprocessing`` Connection (e.g. the end a
    worker process inherited) into a :class:`PipeComm`."""
    return PipeComm(conn, peer)


def pipe_pair(ctx: Any | None = None) -> tuple[PipeComm, PipeComm]:
    """A connected (parent_comm, child_comm) pair -- the comm-layer
    replacement for ``multiprocessing.Pipe()``.

    ``ctx`` is a multiprocessing context (for start-method control);
    the child end's underlying connection is reachable as ``._conn``
    for inheritance across the process boundary.
    """
    mp = ctx if ctx is not None else multiprocessing
    parent_conn, child_conn = mp.Pipe()
    return (
        PipeComm(parent_conn, peer="pipe://child"),
        PipeComm(child_conn, peer="pipe://parent"),
    )


def _no_connect(location: str) -> Comm:
    raise ValueError("pipe:// has no address space; use repro.comm.pipe.pipe_pair()")


def _no_listen(location: str, handler: Callable[[Comm], None]) -> Listener:
    raise ValueError("pipe:// has no address space; use repro.comm.pipe.pipe_pair()")


register_backend("pipe", _no_connect, _no_listen)
