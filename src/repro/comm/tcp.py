"""TCP backend: ``tcp://host:port`` -- sockets, frames, heartbeats.

The one backend that crosses a machine boundary, and therefore the one
that has to *detect* peer loss rather than be told about it:

* **Framing.**  TCP is a byte stream, so every message rides the
  length-prefixed codec from :mod:`repro.comm.frame`; a
  :class:`~repro.comm.frame.FrameDecoder` per connection reassembles
  chunks into payloads and enforces the oversize ceiling before
  buffering.
* **Connect timeout.**  ``connect`` bounds the dial
  (:data:`CONNECT_TIMEOUT_SECONDS`); retry/backoff policy lives one
  level up in :func:`repro.comm.core.connect_with_retry`.
* **Heartbeat liveness.**  :meth:`TCPComm.start_heartbeat` sends a tiny
  protocol-level frame every ``interval`` seconds from a dedicated
  thread.  The receiving side swallows heartbeats transparently (they
  never surface from ``recv``) and timestamps *every* inbound byte, so
  :meth:`TCPComm.idle_seconds` measures true peer silence: a parent
  that sees ``idle_seconds() > timeout`` on a connection whose worker
  should be heartbeating declares the worker dead even when the kernel
  never delivers an RST (the powered-off-node case).

``TCP_NODELAY`` is set on every connection: dispatch messages are small
and latency-bound, and Nagle would batch them against us.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.comm import frame
from repro.comm.core import Comm, CommClosedError, Listener, register_backend

#: Bound on one dial attempt (retry policy is connect_with_retry's job).
CONNECT_TIMEOUT_SECONDS = 5.0

#: Default gap between heartbeat frames (see docs/DISTRIBUTED.md for tuning).
HEARTBEAT_INTERVAL_SECONDS = 0.25

#: Socket read granularity.
_RECV_CHUNK = 1 << 16

#: A frame body this large reads straight off the socket into its final
#: buffer (``recv_into`` through the decoder's direct path); smaller
#: remainders stay on the chunked path, whose one copy is cheaper than
#: an extra syscall per small frame.
_DIRECT_RECV_MIN = 1 << 14

#: ``sendmsg`` gather lists are chunked to this many iovecs per call
#: (the kernel's IOV_MAX is typically 1024; Python does not expose it).
_IOV_CAP = 512

#: How many receive buffers a TCPComm keeps an eye on for recycling
#: before abandoning the oldest to its consumers.
_MAX_LENT = 64

#: Protocol-level liveness message; never surfaces from ``recv``.
_HEARTBEAT = ("__hb__",)


class TCPComm(Comm):
    """A :class:`Comm` over one connected TCP socket."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - exotic transports only
            pass
        self._sock = sock
        self._pool = frame.BufferPool()
        self._decoder = frame.FrameDecoder(pool=self._pool)
        self._inbox: deque[Any] = deque()
        self._lent: list[frame.OOBFrame] = []
        self._send_lock = threading.Lock()
        self._closed = False
        self._eof = False
        self._last_recv = time.monotonic()
        self._hb_stop: threading.Event | None = None
        self.peer = peer

    # -- sending ------------------------------------------------------------

    def _sendmsg_all(self, parts: list[Any]) -> None:
        """Gather-write every part (header, payload views) with
        ``socket.sendmsg`` -- no concatenation copy -- looping over
        partial sends and chunking long iovec lists.  Caller holds the
        send lock."""
        views = [memoryview(p) for p in parts if len(p)]
        while views:
            try:
                sent = self._sock.sendmsg(views[:_IOV_CAP])  # verify: ok=blocking-under-lock (write serialization is this lock's whole job; nothing else is ever taken under it)
            except OSError as exc:
                self._eof = True
                raise CommClosedError(f"tcp peer {self.peer} gone during send: {exc}") from exc
            while sent:
                head = views[0]
                if head.nbytes <= sent:
                    sent -= head.nbytes
                    views.pop(0)
                else:
                    views[0] = head[sent:]
                    sent = 0

    def send(self, message: Any) -> None:
        payload = frame.dumps(message)
        with self._send_lock:
            if self._closed:
                raise CommClosedError(f"send on closed tcp comm to {self.peer}")
            self._sendmsg_all([frame._HEADER.pack(len(payload)), payload])  # verify: ok=blocking-under-lock (send_lock exists to serialize wire writes; sending under it is its purpose)

    def send_oob(self, message: Any) -> None:
        """Ship with protocol-5 out-of-band buffers: one multi-segment
        frame whose header + length table + segments go out as a single
        gather list -- block payloads travel straight from their source
        arrays to the socket."""
        parts = frame.encode_message_oob(message)
        with self._send_lock:
            if self._closed:
                raise CommClosedError(f"send on closed tcp comm to {self.peer}")
            self._sendmsg_all(parts)  # verify: ok=blocking-under-lock (send_lock exists to serialize wire writes; sending under it is its purpose)

    def _try_send(self, message: Any) -> bool:
        """Best-effort send that refuses to wait for the send lock --
        the heartbeat path, so a multi-MiB transfer in flight (whose
        bytes refresh the peer's liveness clock anyway) is never queued
        behind by a liveness probe."""
        payload = frame.dumps(message)
        if not self._send_lock.acquire(blocking=False):
            return False
        try:
            if self._closed:
                raise CommClosedError(f"send on closed tcp comm to {self.peer}")
            self._sendmsg_all([frame._HEADER.pack(len(payload)), payload])
        finally:
            self._send_lock.release()
        return True

    # -- receiving ----------------------------------------------------------

    def _sweep_lent(self) -> None:
        """Retry recycling receive buffers whose consumers have let go."""
        if self._lent:
            self._lent = [f for f in self._lent if not f.try_recycle()]
            del self._lent[:-_MAX_LENT]

    def _drain_decoder(self) -> None:
        for payload in self._decoder.frames():
            if isinstance(payload, frame.OOBFrame):
                self._inbox.append(payload.load())
                if not payload.try_recycle():
                    self._lent.append(payload)
                continue
            message = frame.loads(payload)
            if message == _HEARTBEAT:
                continue  # liveness only; _last_recv already updated
            self._inbox.append(message)

    def _pump(self, deadline: float | None) -> None:
        """Read the socket until a data message is buffered, EOF, or deadline."""
        self._sweep_lent()
        while not self._inbox and not self._eof and not self._closed:
            if deadline is None:
                wait: float | None = None
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    return
            try:
                readable, _, _ = select.select([self._sock], [], [], wait)
            except (OSError, ValueError):  # socket closed under us
                self._eof = True
                return
            if not readable:
                return
            dest = self._decoder.direct_destination()
            try:
                if dest is not None and dest.nbytes >= _DIRECT_RECV_MIN:
                    # Large frame body: land the bytes in their final
                    # buffer straight off the socket, no staging copy.
                    n = self._sock.recv_into(dest)
                    dest.release()
                    if n == 0:
                        self._eof = True
                        return
                    self._last_recv = time.monotonic()
                    self._decoder.direct_advance(n)
                else:
                    if dest is not None:
                        dest.release()
                    chunk = self._sock.recv(_RECV_CHUNK)
                    if not chunk:
                        self._eof = True
                        return
                    self._last_recv = time.monotonic()
                    self._decoder.feed(chunk)  # OversizedFrameError propagates: protocol bug
            except OSError:
                self._eof = True
                return
            self._drain_decoder()

    def recv(self, timeout: float | None = None) -> Any:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._inbox:
                return self._inbox.popleft()
            if self._closed or self._eof:
                raise CommClosedError(f"tcp peer {self.peer} is gone")
            self._pump(deadline)
            if not self._inbox and not self._eof:
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(f"no message within {timeout}s from {self.peer}")

    def poll(self, timeout: float = 0.0) -> bool:
        if self._inbox or self._closed or self._eof:
            return True
        self._pump(time.monotonic() + timeout)
        return bool(self._inbox) or self._eof

    # -- liveness -----------------------------------------------------------

    def idle_seconds(self) -> float:
        """Seconds since the last byte arrived from the peer (heartbeats
        count: a silent-but-heartbeating peer reads as alive)."""
        return time.monotonic() - self._last_recv

    def start_heartbeat(self, interval: float = HEARTBEAT_INTERVAL_SECONDS) -> None:
        """Send a liveness frame every ``interval`` seconds until close.

        The sender thread dies quietly when the peer does -- liveness
        *detection* is the receiving side's job (``idle_seconds``), and
        the application reader will see ``CommClosedError`` on its own.
        """
        if self._hb_stop is not None:
            return
        stop = threading.Event()
        self._hb_stop = stop

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    # Non-blocking: if a large transfer holds the send
                    # lock, skip the beat -- the in-flight bytes refresh
                    # the peer's liveness clock better than a heartbeat
                    # queued behind them would.
                    self._try_send(_HEARTBEAT)
                except CommClosedError:
                    return

        threading.Thread(target=beat, daemon=True, name="repro-heartbeat").start()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._hb_stop is not None:
            self._hb_stop.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed or self._eof


class TCPListener(Listener):
    """Accept loop on a bound socket; one handler thread per connection."""

    def __init__(self, host: str, port: int, handler: Callable[[Comm], None]) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        self._sock = sock
        self._handler = handler
        self._closed = False
        bound_host, bound_port = sock.getsockname()[:2]
        self.address = f"tcp://{bound_host}:{bound_port}"
        self.port = bound_port
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-tcp-accept"
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, addr = self._sock.accept()
            except OSError:
                return  # listener closed
            comm = TCPComm(conn, peer=f"tcp://{addr[0]}:{addr[1]}")
            threading.Thread(
                target=self._handler, args=(comm,), daemon=True, name="repro-tcp-serve"
            ).start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def _parse_hostport(location: str) -> tuple[str, int]:
    host, sep, port = location.rpartition(":")
    if not sep:
        raise ValueError(f"tcp address needs host:port, got {location!r}")
    return host or "127.0.0.1", int(port)


def _connect(location: str) -> Comm:
    host, port = _parse_hostport(location)
    try:
        sock = socket.create_connection((host, port), timeout=CONNECT_TIMEOUT_SECONDS)
    except OSError as exc:
        raise CommClosedError(f"connect to tcp://{host}:{port} failed: {exc}") from exc
    sock.settimeout(None)
    return TCPComm(sock, peer=f"tcp://{host}:{port}")


def _listen(location: str, handler: Callable[[Comm], None]) -> Listener:
    host, port = _parse_hostport(location)
    return TCPListener(host, port, handler)


register_backend("tcp", _connect, _listen)
