"""Core schedulers: baseline NABBIT and the paper's fault-tolerant variant.

Typical usage::

    from repro.core import FTScheduler
    from repro.runtime import SimulatedRuntime
    from repro.memory import BlockStore, Reuse

    sched = FTScheduler(spec, SimulatedRuntime(workers=8, seed=1),
                        store=BlockStore(Reuse()))
    result = sched.run()
    print(result.makespan, result.trace.reexecutions)

``run_scheduler`` wraps construction + execution for the common cases.
"""

from __future__ import annotations

from repro.core.ft import FTScheduler
from repro.core.hooks import NULL_HOOKS, CompositeHooks, NullHooks, SchedulerHooks
from repro.core.nabbit import NabbitScheduler
from repro.core.records import TaskRecord
from repro.core.recovery_table import RecoveryTable
from repro.core.result import SchedulerResult
from repro.core.status import TaskStatus
from repro.core.taskmap import TaskMap

from repro.graph.taskspec import TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.runtime.api import Runtime
from repro.runtime.costmodel import CostModel
from repro.runtime.inline import InlineRuntime


def run_scheduler(
    spec: TaskGraphSpec,
    runtime: Runtime | None = None,
    fault_tolerant: bool = True,
    store: BlockStore | None = None,
    cost_model: CostModel | None = None,
    hooks: SchedulerHooks | None = None,
    strict_context: bool = True,
) -> SchedulerResult:
    """Execute ``spec`` once and return the :class:`SchedulerResult`.

    Defaults to the fault-tolerant scheduler on a serial
    :class:`~repro.runtime.inline.InlineRuntime` with a single-assignment
    block store -- the simplest correct configuration.
    """
    runtime = runtime or InlineRuntime()
    if fault_tolerant:
        sched: FTScheduler | NabbitScheduler = FTScheduler(
            spec,
            runtime,
            store=store,
            cost_model=cost_model,
            hooks=hooks,
            strict_context=strict_context,
        )
    else:
        sched = NabbitScheduler(
            spec, runtime, store=store, cost_model=cost_model, hooks=hooks,
            strict_context=strict_context
        )
    return sched.run()


__all__ = [
    "FTScheduler",
    "NabbitScheduler",
    "SchedulerResult",
    "SchedulerHooks",
    "NullHooks",
    "CompositeHooks",
    "NULL_HOOKS",
    "TaskRecord",
    "TaskMap",
    "TaskStatus",
    "RecoveryTable",
    "run_scheduler",
]
