"""The fault-tolerant dynamic task-graph scheduler (Section IV).

This implements the *shaded* algorithm of Figures 2 and 3 on top of the
same frame structure as :class:`~repro.core.nabbit.NabbitScheduler`:

* every access to a task record or data block sits inside a
  ``try/except FaultError`` whose handler routes recovery to the failing
  task (Guarantee 5's "identify which task's fault resulted in the
  failure");
* life numbers are threaded through every frame and recovery is
  deduplicated per (key, life) through the
  :class:`~repro.core.recovery_table.RecoveryTable` (Guarantee 1);
* join-counter decrements are gated by the per-predecessor bit vector
  (Guarantee 3);
* a recovering task rebuilds its notify array by scanning successors
  (REINITNOTIFYENTRY -- Guarantee 4) and then re-executes as if newly
  created (RECOVERTASK -> INITANDCOMPUTE -- Guarantee 2);
* faults observed while computing reset the consumer (RESETNODE) and
  re-traverse its predecessors (Guarantee 5);
* recovery routines are themselves guarded, so failures during recovery
  replace the incarnation and start over (Guarantee 6).

Routine mapping (paper -> method):

====================  =============================
INITANDCOMPUTE        :meth:`FTScheduler._init_and_compute`
TRYINITCOMPUTE        :meth:`FTScheduler._try_init_compute`
NOTIFYONCE            :meth:`FTScheduler._notify_once`
COMPUTEANDNOTIFY      :meth:`FTScheduler._compute_and_notify` +
                      :meth:`FTScheduler._publish_and_notify`
NOTIFYSUCCESSOR       :meth:`FTScheduler._notify_successor`
RECOVERTASKONCE       :meth:`FTScheduler._recover_task_once`
ISRECOVERING          :meth:`RecoveryTable.check_and_claim` (negated)
RECOVERTASK           :meth:`FTScheduler._recover_task`
REINITNOTIFYENTRY     :meth:`FTScheduler._reinit_notify_entry`
RESETNODE             :meth:`FTScheduler._reset_node`
====================  =============================

The paper's ``B.overwritten`` test in TRYINITCOMPUTE is realized as an
availability check of exactly the block versions the consumer needs from
that predecessor (:meth:`FTScheduler._ensure_outputs_available`), covering
both eviction under memory reuse and data corruption.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.hooks import NULL_HOOKS, SchedulerHooks
from repro.core.records import TaskRecord
from repro.core.recovery_table import RecoveryTable
from repro.core.result import SchedulerResult
from repro.core.status import TaskStatus
from repro.core.taskmap import TaskMap
from repro.exceptions import (
    DataCorruptionError,
    FaultError,
    OverwrittenError,
    SchedulerError,
    TaskCorruptionError,
    WorkerCrashError,
)
from repro.graph.taskspec import BlockRef, TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.memory.context import StoreComputeContext
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import Runtime
from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame
from repro.runtime.tracing import ExecutionTrace

Key = Hashable


class FTScheduler:
    """Work-stealing task-graph scheduler with selective, localized
    recovery from detected soft faults."""

    name = "ft"

    def __init__(
        self,
        spec: TaskGraphSpec,
        runtime: Runtime,
        store: BlockStore | None = None,
        cost_model: CostModel | None = None,
        hooks: SchedulerHooks | None = None,
        trace: ExecutionTrace | None = None,
        strict_context: bool = True,
        max_recoveries: int = 1_000_000,
        record_events: bool = False,
        event_log: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spec = spec
        self.runtime = runtime
        self.store = store if store is not None else BlockStore()
        self.cost_model = cost_model or CostModel()
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        self.trace = trace or ExecutionTrace()
        self.strict_context = strict_context
        self.max_recoveries = max_recoveries
        if event_log is None and record_events:
            event_log = EventLog()
        self.log = event_log if event_log is not None else NULL_LOG
        """Structured observability log (:mod:`repro.obs`).  Disabled by
        default (``NULL_LOG``); pass ``event_log=EventLog()`` -- or the
        legacy ``record_events=True`` -- to record the run's lifecycle:
        every event carries the task key and life number, timestamped and
        worker-attributed by the runtime."""
        # Identity-fast observability guard: NULL_LOG is the one shared
        # disabled log, so `is not NULL_LOG` short-circuits without even a
        # class-attribute read; `enabled` still covers custom disabled logs.
        self._obs = self.log is not NULL_LOG and self.log.enabled
        # Same idiom for the two other per-task overheads nobody pays for
        # by default: hook dispatch (NULL_HOOKS is the shared no-op) and
        # frame-label formatting, whose f-strings repr task keys on every
        # spawn but are only ever read by timeline-recording runtimes.
        self._hooked = self.hooks is not NULL_HOOKS
        self._lbl = bool(getattr(runtime, "record_timeline", False))
        # Compute-phase dispatch seam: process-pool runtimes expose
        # compute_dispatch(spec, key, ctx, life) to run the (pure,
        # stateless) kernel off-process (life only attributes telemetry);
        # every other runtime computes in place.
        self._dispatch = getattr(runtime, "compute_dispatch", None)
        # Serial runtimes (inline, simulated) execute frames one at a
        # time, so trace-counter bumps need no lock; threaded runtimes
        # re-arm it.  Unknown runtimes default to the safe locked path.
        if getattr(runtime, "concurrent_frames", True):
            self.trace.assume_concurrent()
        else:
            self.trace.assume_serial()
        self.log.bind_runtime(runtime)
        if self._obs and getattr(self.hooks, "event_log", False) is None:
            # Fault injectors accept an event_log; share ours unless the
            # caller wired their own.
            hooks.event_log = self.log
        if self._obs and getattr(self.store, "event_log", False) is None:
            # Detection-capable stores (repro.detect.ChecksumStore) emit
            # SDC_DETECTED; share the run's log the same way.
            self.store.event_log = self.log
        if getattr(self.store, "trace", False) is None:
            self.store.trace = self.trace
        if getattr(self.hooks, "trace", False) is None:
            # Detectors bump SDC_* trace counters; keep them paired with
            # the events they emit into the shared log (replay parity).
            self.hooks.trace = self.trace
        self.map = TaskMap(lambda k: len(tuple(spec.predecessors(k))))
        self.recovery_table = RecoveryTable()
        self._compute_factor = self.cost_model.compute_factor(self.store.policy.keep)
        # The cost model is frozen; hoist the per-charge constants the hot
        # paths read on every task out of the attribute chain.
        cm = self.cost_model
        self._c_init = cm.ft_init_cost
        self._c_lock = cm.lock_cost
        self._c_atomic = cm.atomic_cost
        self._c_notify = cm.atomic_cost + cm.ft_notify_cost
        self._c_recovery = cm.recovery_table_cost
        self._c_reinit = cm.reinit_scan_cost
        # consumer key -> {producer key -> [BlockRefs consumed from it]},
        # built lazily; the spec's footprint is immutable, so the scan in
        # _ensure_outputs_available only ever needs to happen once per key.
        self._needs_cache: dict[Key, dict[Key, list[BlockRef]]] = {}
        # key -> (inputs, outputs) as frozensets, shared between compute
        # contexts and the needs scan above so each task's footprint is
        # pulled from the spec at most once per run.
        self._fp_cache: dict[Key, tuple[frozenset, frozenset]] = {}
        self.metrics = metrics if metrics is not None else NULL_METRICS
        """Live metrics registry (:mod:`repro.obs.live`).  Disabled by
        default (``NULL_METRICS``); pass ``metrics=MetricsRegistry()`` to
        publish pull-based gauges over the run's trace counters and the
        block store's occupancy (the scheduler hot paths are never taxed
        -- gauges are read only when sampled)."""
        self._mx = self.metrics is not NULL_METRICS
        if self._mx:
            self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose the live :class:`ExecutionTrace` counters (and the block
        store's occupancy) as callback gauges: the counters already exist
        and already update on the hot path, so live visibility costs one
        ``getattr`` per counter per collector tick."""
        trace = self.trace
        self.metrics.gauge(
            "repro_scheduler_info", "constant 1, labelled by scheduler", scheduler=self.name
        ).set(1)
        for name in sorted(ExecutionTrace.SCALAR_COUNTERS):
            self.metrics.callback_gauge(
                f"repro_trace_{name}",
                lambda n=name: getattr(trace, n),
                f"live ExecutionTrace counter {name}",
            )
        for name in ("total_computes", "total_recoveries", "tasks_computed"):
            self.metrics.callback_gauge(
                f"repro_trace_{name}",
                lambda n=name: getattr(trace, n),
                f"live ExecutionTrace aggregate {name}",
            )
        register = getattr(self.store, "register_metrics", None)
        if register is not None:
            register(self.metrics)

    @property
    def events(self) -> list[tuple]:
        """Recovery-path narrative as legacy tuples, derived from the
        structured log: ``("compute_fault", key, life, exc_type, source)``,
        ``("recovery", key, new_life)``, ``("recovery_skipped", key,
        life)``, ``("reset", key, life)``, ``("reinit", key, successor)``,
        ``("stale_frame", key, life)``.  Prefer ``self.log.events`` (full
        structured stream) for new code."""
        out: list[tuple] = []
        for e in self.log.events:
            if e.kind is EventKind.COMPUTE_FAULT:
                out.append(("compute_fault", e.key, e.life, e.data["exc"], e.data["source"]))
            elif e.kind is EventKind.RECOVERY:
                out.append(("recovery", e.key, e.life))
            elif e.kind is EventKind.RECOVERY_SKIPPED:
                out.append(("recovery_skipped", e.key, e.life))
            elif e.kind is EventKind.RESET:
                out.append(("reset", e.key, e.life))
            elif e.kind is EventKind.REINIT:
                out.append(("reinit", e.key, e.data["successor"]))
            elif e.kind is EventKind.STALE_FRAME:
                out.append(("stale_frame", e.key, e.life))
        return out

    # -- public API -------------------------------------------------------------------

    def run(self) -> SchedulerResult:
        """Execute the graph to completion (recovering any faults) and
        return the result bundle."""
        skey = self.spec.sink_key()
        sink, life, inserted = self.map.insert_if_absent(skey)
        if not inserted:
            raise SchedulerError("scheduler instances are single-use; create a new one")
        if self._obs:
            self.log.emit(EventKind.TASK_CREATED, skey, life)
        root = Frame(lambda: self._init_and_compute(sink, skey, life), label=f"init:{skey!r}")
        run = self.runtime.execute(root)
        final, _ = self.map.get(skey)
        status = final.status if final is not None else None  # verify: ok=lock-discipline (post-quiescence read; every worker has drained)
        if status is not TaskStatus.COMPLETED:
            raise SchedulerError(
                f"execution quiesced but sink {skey!r} is "
                f"{status.name if status else 'missing'} -- hung task graph"
            )
        return SchedulerResult(run=run, trace=self.trace, store=self.store, scheduler=self.name)

    # -- Figure 2 routines (with shaded additions) ---------------------------------------

    def _init_and_compute(self, A: TaskRecord, key: Key, life: int) -> None:
        """INITANDCOMPUTE: explore predecessors, then self-notify.

        The *before compute* injection point sits after the traversal is
        issued: the task now waits for notifications (Section VI.B).
        """
        if self._stale(A, key, life):
            return
        self.runtime.charge(self._c_init)
        for pkey in self.spec.predecessors(key):
            self.runtime.spawn(
                lambda pk=pkey: self._try_init_compute(A, key, life, pk),
                label=f"try:{key!r}<-{pkey!r}" if self._lbl else "",
            )
        if self._hooked:
            self.hooks.on_task_waiting(A)
        self._notify_once(A, key, key, life)

    def _try_init_compute(self, A: TaskRecord, key: Key, life: int, pkey: Key) -> None:
        """TRYINITCOMPUTE: visit predecessor ``pkey``; register for
        notification, notify immediately, or detect its failure."""
        if self._stale(A, key, life):
            return
        B, blife, inserted = self.map.insert_if_absent(pkey)
        if inserted:
            if self._obs:
                self.log.emit(EventKind.TASK_CREATED, pkey, blife)
            self.runtime.spawn(
                lambda: self._init_and_compute(B, pkey, blife),
                label=f"init:{pkey!r}" if self._lbl else "",
            )
        finished = True
        try:
            # Stale-traversal gate: if A's notification bit for pkey is
            # already clear, A was notified through a notify array (e.g.
            # one registered by a previous incarnation before recovery) and
            # has no outstanding need for B's outputs.  Re-examining B here
            # would misread a *legal* post-consumption overwrite of its
            # outputs as a failure and trigger a spurious recovery cascade.
            ind = self.spec.pred_index(key, pkey)
            self.runtime.charge(self._c_lock)
            with A.lock:
                waiting = bool(A.bit_vector & (1 << ind))
            if not waiting:
                self.trace.count_stale_notification()
                if self._obs:
                    self.log.emit(EventKind.NOTIFY_STALE, key, life, src=pkey)
                return
            # check() raises iff corrupted; testing the flag first keeps
            # the fault-free path to one attribute load per observation.
            if B.corrupted:
                B.check()
            self.runtime.charge(self._c_lock)
            with B.lock:
                if B.status < TaskStatus.COMPUTED:
                    # B must notify A once computed.
                    B.notify_array.append(key)
                    finished = False
            if finished:
                # The paper's "if (B.overwritten) throw": B has computed,
                # but are the versions A needs still resident and clean?
                self._ensure_outputs_available(key, pkey)
        except FaultError as exc:
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, pkey, blife, exc=type(exc).__name__)
            finished = False
            self._recover_task_once(pkey, blife)
        if finished:
            self._notify_once(A, key, pkey, life)

    def _notify_once(self, A: TaskRecord, key: Key, pkey: Key, life: int) -> None:
        """NOTIFYONCE: decrement the join counter only if ``pkey``'s bit in
        the notification bit vector was still set (Guarantee 3)."""
        try:
            if A.corrupted:
                A.check()
            ind = self.spec.pred_index(key, pkey)
            self.runtime.charge(self._c_notify)
            with A.lock:
                success = A.try_unset_bit(ind)
                if success:
                    A.join -= 1
                    val = A.join
            if success:
                self.trace.count_notification()
                if self._obs:
                    self.log.emit(EventKind.NOTIFY, key, life, src=pkey)
                if val < 0:
                    raise SchedulerError(f"join underflow on {key!r} via {pkey!r}")
                if val == 0:
                    self._compute_and_notify(A, key, life)
            else:
                self.trace.count_stale_notification()
                if self._obs:
                    self.log.emit(EventKind.NOTIFY_STALE, key, life, src=pkey)
        except FaultError as exc:
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
            self._recover_task_once(key, life)

    def _compute_and_notify(self, A: TaskRecord, key: Key, life: int) -> None:
        """COMPUTEANDNOTIFY, first half: run the user COMPUTE function.

        The *after compute* injection point fires between COMPUTE's return
        and the status publication, and is observed immediately by the
        computing thread (the Figure 1 narrative: "task B fails right
        after its computation, and the failure is detected by the thread
        operating on task B").
        """
        try:
            if A.corrupted:
                A.check()
            self.trace.count_compute(key)
            if self._obs:
                self.log.emit(EventKind.COMPUTE_BEGIN, key, life)
            self.runtime.charge(float(self.spec.cost(key)) * self._compute_factor)
            fp = self._fp_cache.get(key)
            if fp is None:
                fp = (frozenset(self.spec.inputs(key)), frozenset(self.spec.outputs(key)))
                self._fp_cache[key] = fp
            ctx = StoreComputeContext(
                self.spec, self.store, key, strict=self.strict_context, footprint=fp
            )
            if self._dispatch is not None:
                self._dispatch(self.spec, key, ctx, life)
            else:
                self.spec.compute(key, ctx)
            if self._hooked:
                self.hooks.on_after_compute(A)
            if A.corrupted:
                A.check()
            if self._obs:
                self.log.emit(EventKind.COMPUTE_END, key, life)
            self.runtime.spawn(
                lambda: self._publish_and_notify(A, key, life),
                label=f"publish:{key!r}" if self._lbl else "",
            )
        except FaultError as exc:
            self.trace.count_compute_failure(key)
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
            self._handle_compute_fault(A, key, life, exc)

    def _publish_and_notify(self, A: TaskRecord, key: Key, life: int) -> None:
        """COMPUTEANDNOTIFY, second half: publish Computed, drain the
        notify array to stability, mark Completed.

        The *after notify* injection point fires once the task has
        finished notifying -- such a fault is only ever observed by a
        later reader of the task or its data, and may never be (the paper:
        "a failed task whose successors already have been computed is not
        recovered")."""
        cm = self.cost_model
        try:
            if A.corrupted:
                A.check()
            self.runtime.charge(cm.atomic_cost)
            with A.lock:
                A.status = TaskStatus.COMPUTED
            if self._obs:
                self.log.emit(EventKind.TASK_COMPUTED, key, life)
            notified = 0
            while True:
                with A.lock:
                    batch = A.notify_array[notified:]
                for skey in batch:
                    self.runtime.spawn(
                        lambda sk=skey: self._notify_successor(key, sk),
                        label=f"notify:{key!r}->{skey!r}" if self._lbl else "",
                    )
                notified += len(batch)
                self.runtime.charge(cm.lock_cost)
                with A.lock:
                    if len(A.notify_array) == notified:
                        A.status = TaskStatus.COMPLETED
                        break
            if self._obs:
                self.log.emit(EventKind.TASK_COMPLETED, key, life)
            if self._hooked:
                self.hooks.on_after_notify(A)
        except FaultError as exc:
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
            self._recover_task_once(key, life)

    def _notify_successor(self, key: Key, skey: Key) -> None:
        """NOTIFYSUCCESSOR: forward a completion notification to the
        successor's *current* incarnation."""
        S, slife = self.map.get(skey)
        if S is None:
            raise SchedulerError(f"notify target {skey!r} vanished from the task map")
        self._notify_once(S, skey, key, slife)

    # -- Figure 3 recovery routines -------------------------------------------------------

    def _recover_task_once(self, key: Key, life: int) -> None:
        """RECOVERTASKONCE: recover ``(key, life)`` unless some thread
        already owns that incarnation's recovery (Guarantee 1)."""
        self.runtime.charge(self._c_recovery)
        if self.recovery_table.check_and_claim(key, life):
            if self._obs:
                # Time the whole recovery routine (incarnation install +
                # successor rescan + re-spawn) as a worker-attributed span
                # so the attribution report can price the paper's
                # localized-recovery claim on real runs.
                t0 = self.log.now()
                self._recover_task(key)
                self.log.emit(
                    EventKind.SPAN, key, life, phase="recovery",
                    wall=self.log.now() - t0, t0=t0,
                )
            else:
                self._recover_task(key)
        else:
            self.trace.count_recovery_skip()
            if self._obs:
                self.log.emit(EventKind.RECOVERY_SKIPPED, key, life)

    def _recover_task(self, key: Key) -> None:
        """RECOVERTASK: install a new incarnation, rebuild its notify array
        from its successors' bit vectors, and re-execute it as if newly
        created.  Failures during recovery retry with the next incarnation
        (Guarantee 6)."""
        while True:
            T, life = self.map.replace(key)
            T.recovery = True
            self.trace.count_recovery(key)
            if self._obs:
                self.log.emit(EventKind.RECOVERY, key, life)
            if self.trace.total_recoveries > self.max_recoveries:
                raise SchedulerError(
                    f"recovery budget exceeded ({self.max_recoveries}); "
                    "livelocked recovery cascade"
                )
            try:
                for skey in self.spec.successors(key):
                    self.trace.count_reinit_scan()
                    if self._obs:
                        self.log.emit(EventKind.REINIT_SCAN, key, life, successor=skey)
                    S, slife = self.map.get(skey)
                    if S is None:
                        # Successor not yet expanded; when it is created it
                        # will traverse this (fresh) incarnation normally.
                        continue
                    self._reinit_notify_entry(T, key, S, skey, slife)
                self.runtime.spawn(
                    lambda: self._init_and_compute(T, key, life),
                    label=f"recover:{key!r}#{life}" if self._lbl else "",
                )
                return
            except FaultError as exc:
                self.trace.count_fault_observed()
                if self._obs:
                    self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
                if not self.recovery_table.check_and_claim(key, life):
                    # Another thread owns the newer incarnation's recovery.
                    self.trace.count_recovery_skip()
                    if self._obs:
                        self.log.emit(EventKind.RECOVERY_SKIPPED, key, life)
                    return
                # else: we own it; loop and retry with a fresh incarnation.

    def _reinit_notify_entry(
        self, T: TaskRecord, key: Key, S: TaskRecord, skey: Key, slife: int
    ) -> None:
        """REINITNOTIFYENTRY: re-enqueue successor ``skey`` if it is still
        waiting on a notification from ``key`` (Guarantee 4)."""
        self.runtime.charge(self._c_reinit)
        try:
            S.check()
            ind = self.spec.pred_index(skey, key)
            with S.lock:
                # Ignore Computed and Completed successors; peeking the
                # status under the same lock as the bit keeps the pair
                # coherent (a successor cannot publish between the two).
                waiting = S.status is TaskStatus.VISITED and bool(S.bit_vector & (1 << ind))
            if waiting:
                with T.lock:
                    T.notify_array.append(skey)
                self.trace.count_notify_reinit()
                if self._obs:
                    self.log.emit(EventKind.REINIT, key, T.life, successor=skey)
        except FaultError as exc:
            if isinstance(exc, TaskCorruptionError) and exc.key == skey:
                self.trace.count_fault_observed()
                if self._obs:
                    self.log.emit(EventKind.FAULT_OBSERVED, skey, slife, exc=type(exc).__name__)
                self._recover_task_once(skey, slife)
            else:
                raise

    def _reset_node(self, A: TaskRecord, key: Key, life: int) -> None:
        """RESETNODE: a fault in one of A's *inputs* was observed while A
        computed; re-arm A's join counter and bit vector and replay its
        predecessor traversal, which will find and recover the failed
        producer (Guarantee 5)."""
        try:
            A.check()
            self.runtime.charge(self._c_lock)
            with A.lock:
                A.reset_for_reuse()
            self.trace.count_reset()
            if self._obs:
                self.log.emit(EventKind.RESET, key, life)
            self._init_and_compute(A, key, life)
        except FaultError as exc:
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
            self._recover_task_once(key, life)

    # -- fault routing helpers --------------------------------------------------------------

    def _stale(self, A: TaskRecord, key: Key, life: int) -> bool:
        """True iff this frame belongs to a replaced (dead) incarnation.

        This is the purpose of threading life numbers through the call
        stack (Guarantee 1's machinery): frames spawned for an incarnation
        that recovery has since replaced must not act -- in particular
        they must not re-examine predecessor outputs that the *live*
        incarnation already consumed and legally overwrote, which would
        cascade into spurious recoveries.  The live incarnation re-runs
        the whole traversal itself (Guarantee 2), so dropping stale frames
        loses nothing.
        """
        current, cur_life = self.map.get(key)
        if current is A and cur_life == life:
            return False
        self.trace.count_stale_frame()
        if self._obs:
            self.log.emit(EventKind.STALE_FRAME, key, life)
        return True

    def _handle_compute_fault(self, A: TaskRecord, key: Key, life: int, exc: FaultError) -> None:
        """The COMPUTEANDNOTIFY catch block: recover A if the fault is A's
        own; otherwise reset A so the replayed traversal repairs the
        failed input's producer."""
        source = self._fault_source(exc)
        if self._obs:
            self.log.emit(
                EventKind.COMPUTE_FAULT, key, life, exc=type(exc).__name__, source=source
            )
        if source == key or source is None:
            self._recover_task_once(key, life)
        else:
            self._reset_node(A, key, life)

    def _fault_source(self, exc: FaultError) -> Key | None:
        """Identify the task whose failure caused ``exc``."""
        if isinstance(exc, TaskCorruptionError):
            return exc.key
        if isinstance(exc, WorkerCrashError):
            # The worker process died mid-compute: the parent-side inputs
            # and bookkeeping are intact, so the failed work is the task's
            # own compute phase -- recover the task, not a producer.
            return exc.key
        if isinstance(exc, (DataCorruptionError, OverwrittenError)):
            if exc.producer is not None:
                return exc.producer
            return self.spec.producer(BlockRef(exc.block, exc.version))
        return None

    def _ensure_outputs_available(self, consumer: Key, pkey: Key) -> None:
        """Raise if any block version ``consumer`` needs from predecessor
        ``pkey`` is corrupted or no longer resident."""
        needs = self._needs_cache.get(consumer)
        if needs is None:
            fp = self._fp_cache.get(consumer)
            raws = fp[0] if fp is not None else self.spec.inputs(consumer)
            needs = {}
            for raw in raws:
                ref = raw if type(raw) is BlockRef else BlockRef(*raw)
                needs.setdefault(self.spec.producer(ref), []).append(ref)
            self._needs_cache[consumer] = needs
        for ref in needs.get(pkey, ()):
            status = self.store.status_of(ref)
            if status == "ok":
                continue
            if status == "corrupted":
                raise DataCorruptionError(ref.block, ref.version, producer=pkey)
            raise OverwrittenError(
                ref.block, ref.version, self.store.newest_resident(ref.block), producer=pkey
            )
