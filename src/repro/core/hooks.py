"""Scheduler lifecycle hooks -- the seam where faults are injected.

The paper injects faults by a-priori selecting tasks and the point in
their lifetime where the fault fires; "when a fault is injected, a flag is
set to mark the fault, which is then observed by a thread accessing that
task" (Section VI.B).  The scheduler therefore exposes the three lifetime
points of the paper's taxonomy and calls the bound hook object at each;
:mod:`repro.faults` provides the real injector, and the default
:class:`NullHooks` makes fault-free runs zero-cost.

Hooks only *mark* corruption (record flags, block-store flags); detection
happens later at access sites, exactly like the paper's methodology.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.records import TaskRecord


class SchedulerHooks(Protocol):
    """Callbacks at the three fault-injection points of Section VI.B."""

    def on_task_waiting(self, record: TaskRecord) -> None:
        """*before compute*: the task finished traversing its predecessors
        and is waiting to be scheduled."""
        ...

    def on_after_compute(self, record: TaskRecord) -> None:
        """*after compute*: COMPUTE returned; successors not yet notified."""
        ...

    def on_after_notify(self, record: TaskRecord) -> None:
        """*after notify*: every enqueued successor has been notified."""
        ...


class NullHooks:
    """No-fault default: every hook is a no-op."""

    def on_task_waiting(self, record: TaskRecord) -> None:
        return None

    def on_after_compute(self, record: TaskRecord) -> None:
        return None

    def on_after_notify(self, record: TaskRecord) -> None:
        return None


NULL_HOOKS = NullHooks()
