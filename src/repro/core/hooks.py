"""Scheduler lifecycle hooks -- the seam where faults are injected.

The paper injects faults by a-priori selecting tasks and the point in
their lifetime where the fault fires; "when a fault is injected, a flag is
set to mark the fault, which is then observed by a thread accessing that
task" (Section VI.B).  The scheduler therefore exposes the three lifetime
points of the paper's taxonomy and calls the bound hook object at each;
:mod:`repro.faults` provides the real injector, and the default
:class:`NullHooks` makes fault-free runs zero-cost.

Hooks only *mark* corruption (record flags, block-store flags); detection
happens later at access sites, exactly like the paper's methodology.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.records import TaskRecord


class SchedulerHooks(Protocol):
    """Callbacks at the three fault-injection points of Section VI.B."""

    def on_task_waiting(self, record: TaskRecord) -> None:
        """*before compute*: the task finished traversing its predecessors
        and is waiting to be scheduled."""
        ...

    def on_after_compute(self, record: TaskRecord) -> None:
        """*after compute*: COMPUTE returned; successors not yet notified."""
        ...

    def on_after_notify(self, record: TaskRecord) -> None:
        """*after notify*: every enqueued successor has been notified."""
        ...


class NullHooks:
    """No-fault default: every hook is a no-op."""

    def on_task_waiting(self, record: TaskRecord) -> None:
        return None

    def on_after_compute(self, record: TaskRecord) -> None:
        return None

    def on_after_notify(self, record: TaskRecord) -> None:
        return None


class CompositeHooks:
    """Fan one hook seam out to several implementations, in order.

    The detection subsystem needs this: a silent-fault injector and a
    replication detector both attach at the same lifecycle points, and
    their order is semantic -- the injector listed first corrupts the
    just-published outputs *before* the detector compares them, exactly
    the window a real SDC would occupy.

    The ``event_log`` / ``trace`` properties mirror the single-hook
    convention the schedulers rely on: the getter reports ``None`` while
    *any* child still has an unwired slot (so the scheduler shares its
    own), and the setter fills exactly those children, leaving ones the
    caller wired explicitly untouched.
    """

    def __init__(self, *hooks: SchedulerHooks) -> None:
        self.hooks: tuple[SchedulerHooks, ...] = tuple(h for h in hooks if h is not None)

    def on_task_waiting(self, record: TaskRecord) -> None:
        for h in self.hooks:
            h.on_task_waiting(record)

    def on_after_compute(self, record: TaskRecord) -> None:
        for h in self.hooks:
            h.on_after_compute(record)

    def on_after_notify(self, record: TaskRecord) -> None:
        for h in self.hooks:
            h.on_after_notify(record)

    def _shared(self, attr: str):
        found = None
        for h in self.hooks:
            if not hasattr(h, attr):
                continue
            value = getattr(h, attr)
            if value is None:
                return None  # at least one child still needs wiring
            if found is None:
                found = value
        return found

    @property
    def event_log(self):
        return self._shared("event_log")

    @event_log.setter
    def event_log(self, log) -> None:
        for h in self.hooks:
            if hasattr(h, "event_log") and h.event_log is None:
                h.event_log = log

    @property
    def trace(self):
        return self._shared("trace")

    @trace.setter
    def trace(self, trace) -> None:
        for h in self.hooks:
            if hasattr(h, "trace") and h.trace is None:
                h.trace = trace


NULL_HOOKS = NullHooks()
