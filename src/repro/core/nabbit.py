"""The baseline NABBIT dynamic task-graph scheduler (Section III).

This is the *non-shaded* algorithm of Figure 2: work-stealing execution of
a dynamic task graph with join counters and notify arrays, and **no**
fault-tolerance machinery -- no life numbers, no bit vectors, no recovery
table, no try/catch.  It is the paper's ``baseline`` configuration in
Figure 4 and the overhead reference for everything else.

Routine mapping (paper -> method):

====================  =============================
INITANDCOMPUTE        :meth:`NabbitScheduler._init_and_compute`
TRYINITCOMPUTE        :meth:`NabbitScheduler._try_init_compute`
NOTIFYONCE            :meth:`NabbitScheduler._notify_once`
COMPUTEANDNOTIFY      :meth:`NabbitScheduler._compute_and_notify` +
                      :meth:`NabbitScheduler._publish_and_notify`
NOTIFYSUCCESSOR       :meth:`NabbitScheduler._notify_successor`
====================  =============================

COMPUTEANDNOTIFY is split at the point between ``COMPUTE(A)`` and
``A.status = Computed``: the publication half runs as a separately spawned
frame.  On a real machine the split is a no-op (the continuation usually
runs immediately on the same worker); under the virtual-time simulator it
guarantees that a task's completion becomes *visible* only after its
compute cost has elapsed, so successor start times respect dependences.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.hooks import NULL_HOOKS, SchedulerHooks
from repro.core.records import TaskRecord
from repro.core.result import SchedulerResult
from repro.core.status import TaskStatus
from repro.core.taskmap import TaskMap
from repro.exceptions import SchedulerError
from repro.graph.taskspec import TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.memory.context import StoreComputeContext
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import Runtime
from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame
from repro.runtime.tracing import ExecutionTrace

Key = Hashable


class NabbitScheduler:
    """Fault-oblivious work-stealing task-graph scheduler."""

    name = "nabbit"

    def __init__(
        self,
        spec: TaskGraphSpec,
        runtime: Runtime,
        store: BlockStore | None = None,
        cost_model: CostModel | None = None,
        hooks: SchedulerHooks | None = None,
        trace: ExecutionTrace | None = None,
        strict_context: bool = True,
        event_log: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spec = spec
        self.runtime = runtime
        self.store = store if store is not None else BlockStore()
        self.cost_model = cost_model or CostModel()
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        """Lifecycle hooks (:mod:`repro.core.hooks`).  The baseline has no
        recovery path, so hooks here serve *measurement*: a silent-fault
        injector or detector (:mod:`repro.detect`) can attach to quantify
        what an unprotected scheduler lets through.  Any corruption a
        hook marks will surface as an uncaught fault -- honest behavior
        for a fault-oblivious scheduler."""
        self.trace = trace or ExecutionTrace()
        self.strict_context = strict_context
        self.log = event_log if event_log is not None else NULL_LOG
        """Structured observability log (:mod:`repro.obs`); the baseline
        emits the task-lifecycle subset (created / compute / computed /
        completed / notify) -- it has no fault path."""
        # Identity-fast observability guard; see FTScheduler.__init__.
        self._obs = self.log is not NULL_LOG and self.log.enabled
        # Hot-path guards, mirroring FTScheduler: skip no-op hook dispatch
        # and build frame labels only for timeline-recording runtimes.
        self._hooked = self.hooks is not NULL_HOOKS
        self._lbl = bool(getattr(runtime, "record_timeline", False))
        # Same compute-phase dispatch seam as FTScheduler: process-pool
        # runtimes run the kernel off-process.  The baseline has no
        # recovery path, so a WorkerCrashError fails the run.
        self._dispatch = getattr(runtime, "compute_dispatch", None)
        # Serial runtimes (inline, simulated) execute frames one at a
        # time, so trace-counter bumps need no lock; threaded runtimes
        # re-arm it.  Unknown runtimes default to the safe locked path.
        if getattr(runtime, "concurrent_frames", True):
            self.trace.assume_concurrent()
        else:
            self.trace.assume_serial()
        self.log.bind_runtime(runtime)
        if self._obs and getattr(self.hooks, "event_log", False) is None:
            hooks.event_log = self.log
        if self._obs and getattr(self.store, "event_log", False) is None:
            self.store.event_log = self.log
        if getattr(self.store, "trace", False) is None:
            self.store.trace = self.trace
        if getattr(self.hooks, "trace", False) is None:
            self.hooks.trace = self.trace
        self.map = TaskMap(lambda k: len(tuple(spec.predecessors(k))))
        self._compute_factor = self.cost_model.compute_factor(self.store.policy.keep)
        # The cost model is frozen; hoist the per-charge constants.
        self._c_lock = self.cost_model.lock_cost
        self._c_atomic = self.cost_model.atomic_cost
        self.metrics = metrics if metrics is not None else NULL_METRICS
        """Live metrics registry; see :attr:`FTScheduler.metrics`."""
        self._mx = self.metrics is not NULL_METRICS
        if self._mx:
            self._register_metrics()

    def _register_metrics(self) -> None:
        """Pull-based gauges over the live trace counters and the store;
        mirrors :meth:`FTScheduler._register_metrics`."""
        trace = self.trace
        self.metrics.gauge(
            "repro_scheduler_info", "constant 1, labelled by scheduler", scheduler=self.name
        ).set(1)
        for name in sorted(ExecutionTrace.SCALAR_COUNTERS):
            self.metrics.callback_gauge(
                f"repro_trace_{name}",
                lambda n=name: getattr(trace, n),
                f"live ExecutionTrace counter {name}",
            )
        for name in ("total_computes", "total_recoveries", "tasks_computed"):
            self.metrics.callback_gauge(
                f"repro_trace_{name}",
                lambda n=name: getattr(trace, n),
                f"live ExecutionTrace aggregate {name}",
            )
        register = getattr(self.store, "register_metrics", None)
        if register is not None:
            register(self.metrics)

    # -- public API -------------------------------------------------------------------

    def run(self) -> SchedulerResult:
        """Execute the graph to completion and return the result bundle."""
        skey = self.spec.sink_key()
        sink, _, inserted = self.map.insert_if_absent(skey)
        if not inserted:
            raise SchedulerError("scheduler instances are single-use; create a new one")
        if self._obs:
            self.log.emit(EventKind.TASK_CREATED, skey, 1)
        root = Frame(lambda: self._init_and_compute(sink, skey), label=f"init:{skey!r}")
        run = self.runtime.execute(root)
        final, _ = self.map.get(skey)
        status = final.status if final is not None else None  # verify: ok=lock-discipline (post-quiescence read; every worker has drained)
        if status is not TaskStatus.COMPLETED:
            raise SchedulerError(
                f"execution quiesced but sink {skey!r} is "
                f"{status.name if status else 'missing'} -- hung task graph"
            )
        return SchedulerResult(run=run, trace=self.trace, store=self.store, scheduler=self.name)

    # -- scheduler routines (Figure 2, non-shaded) --------------------------------------

    def _init_and_compute(self, A: TaskRecord, key: Key) -> None:
        """INITANDCOMPUTE: explore predecessors, then self-notify."""
        for pkey in self.spec.predecessors(key):
            self.runtime.spawn(
                lambda pk=pkey: self._try_init_compute(A, key, pk),
                label=f"try:{key!r}<-{pkey!r}" if self._lbl else "",
            )
        if self._hooked:
            self.hooks.on_task_waiting(A)
        self._notify_once(A, key, key)

    def _try_init_compute(self, A: TaskRecord, key: Key, pkey: Key) -> None:
        """TRYINITCOMPUTE: create/visit predecessor ``pkey``; register for
        notification or notify immediately."""
        B, _, inserted = self.map.insert_if_absent(pkey)
        if inserted:
            if self._obs:
                self.log.emit(EventKind.TASK_CREATED, pkey, 1)
            self.runtime.spawn(
                lambda: self._init_and_compute(B, pkey),
                label=f"init:{pkey!r}" if self._lbl else "",
            )
        self.runtime.charge(self._c_lock)
        finished = True
        with B.lock:
            if B.status < TaskStatus.COMPUTED:
                B.notify_array.append(key)
                finished = False
        if finished:
            self._notify_once(A, key, pkey)

    def _notify_once(self, A: TaskRecord, key: Key, pkey: Key) -> None:
        """NOTIFYONCE (baseline): unconditionally decrement the join counter."""
        self.runtime.charge(self._c_atomic)
        with A.lock:
            A.join -= 1
            val = A.join
        self.trace.count_notification()
        if self._obs:
            self.log.emit(EventKind.NOTIFY, key, 1, src=pkey)
        if val < 0:
            raise SchedulerError(f"join counter underflow on {key!r} (notified by {pkey!r})")
        if val == 0:
            self._compute_and_notify(A, key)

    def _compute_and_notify(self, A: TaskRecord, key: Key) -> None:
        """COMPUTEANDNOTIFY, first half: run the user COMPUTE function."""
        self.trace.count_compute(key)
        if self._obs:
            self.log.emit(EventKind.COMPUTE_BEGIN, key, 1)
        self.runtime.charge(float(self.spec.cost(key)) * self._compute_factor)
        ctx = StoreComputeContext(self.spec, self.store, key, strict=self.strict_context)
        if self._dispatch is not None:
            self._dispatch(self.spec, key, ctx, 1)
        else:
            self.spec.compute(key, ctx)
        if self._hooked:
            self.hooks.on_after_compute(A)
        if self._obs:
            self.log.emit(EventKind.COMPUTE_END, key, 1)
        self.runtime.spawn(
            lambda: self._publish_and_notify(A, key),
            label=f"publish:{key!r}" if self._lbl else "",
        )

    def _publish_and_notify(self, A: TaskRecord, key: Key) -> None:
        """COMPUTEANDNOTIFY, second half: publish Computed status and drain
        the notify array until it is stable, then mark Completed."""
        cm = self.cost_model
        self.runtime.charge(cm.atomic_cost)
        with A.lock:
            A.status = TaskStatus.COMPUTED
        if self._obs:
            self.log.emit(EventKind.TASK_COMPUTED, key, 1)
        notified = 0
        while True:
            with A.lock:
                batch = A.notify_array[notified:]
            for skey in batch:
                self.runtime.spawn(
                    lambda sk=skey: self._notify_successor(key, sk),
                    label=f"notify:{key!r}->{skey!r}" if self._lbl else "",
                )
            notified += len(batch)
            self.runtime.charge(cm.lock_cost)
            with A.lock:
                done = len(A.notify_array) == notified
                if done:
                    A.status = TaskStatus.COMPLETED
            if done:
                if self._obs:
                    self.log.emit(EventKind.TASK_COMPLETED, key, 1)
                if self._hooked:
                    self.hooks.on_after_notify(A)
                return

    def _notify_successor(self, key: Key, skey: Key) -> None:
        """NOTIFYSUCCESSOR: forward a completion notification."""
        S, _ = self.map.get(skey)
        if S is None:
            raise SchedulerError(f"notify target {skey!r} vanished from the task map")
        self._notify_once(S, skey, key)
