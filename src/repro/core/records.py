"""Runtime task records: the per-task state of Section III plus the
fault-tolerance additions of Section IV.

Fields mirror the paper:

* ``join`` -- the join counter, initialized to ``1 + |preds|``.  The extra
  slot is the task's *self-notification*: INITANDCOMPUTE issues it after
  finishing the predecessor traversal, so a task never computes before its
  own exploration frame is done (no sync needed -- the NABBIT trick).
* ``notify_array`` -- successors enqueued for completion notification.
* ``status`` -- VISITED / COMPUTED / COMPLETED.
* ``bit_vector`` (FT only) -- one bit per entry of the ordered predecessor
  list, plus the self slot; a set bit means "this notification is still
  outstanding".  NOTIFYONCE decrements ``join`` only after atomically
  clearing the corresponding bit, making re-notification by recovered
  predecessors idempotent (Guarantee 3).
* ``life`` (FT only) -- the incarnation number this record was created
  with (Guarantee 1).
* ``corrupted`` -- the detected-fault flag: set by the injector, observed
  by every subsequent access via :meth:`TaskRecord.check` ("once an error
  is detected, all subsequent accesses ... observe the error").

The bit vector is a plain int bitmask; on CPython all mutations happen
under the record's lock, standing in for the paper's atomics.
"""

from __future__ import annotations

import threading
from typing import Hashable, List

from repro.core.status import TaskStatus
from repro.exceptions import TaskCorruptionError


class TaskRecord:
    """Mutable runtime state for one incarnation of one task."""

    __slots__ = (
        "key",
        "life",
        "n_preds",
        "join",
        "bit_vector",
        "notify_array",
        "status",
        "corrupted",
        "recovery",
        "lock",
    )

    def __init__(self, key: Hashable, n_preds: int, life: int = 1) -> None:
        self.key = key
        self.life = life
        self.n_preds = n_preds
        # +1 for the self-notification issued at the end of the
        # predecessor traversal (see module docstring).
        self.join = n_preds + 1
        self.bit_vector = (1 << (n_preds + 1)) - 1
        self.notify_array: List[Hashable] = []
        self.status = TaskStatus.VISITED
        self.corrupted = False
        self.recovery = False
        self.lock = threading.Lock()

    # -- fault observation ---------------------------------------------------------

    def check(self) -> None:
        """Observe the record; raise if a detected fault has marked it."""
        if self.corrupted:
            raise TaskCorruptionError(self.key, self.life)

    # -- join-counter protocol (always under ``lock`` in threaded mode) -------------

    def try_unset_bit(self, index: int) -> bool:
        """ATOMICBITUNSET: clear bit ``index``; True iff it was set."""
        mask = 1 << index
        if self.bit_vector & mask:
            self.bit_vector &= ~mask
            return True
        return False

    def reset_for_reuse(self) -> None:
        """RESETNODE state re-arm: restore join counter and bit vector so
        the predecessor traversal can be replayed from scratch."""
        self.join = self.n_preds + 1
        self.bit_vector = (1 << (self.n_preds + 1)) - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskRecord(key={self.key!r}, life={self.life}, join={self.join}, "
            f"status={self.status.name}, corrupted={self.corrupted})"
        )
