"""The recovery table R of Guarantee 1: each failure recovered at most once.

``R`` maps a task key to the most recent life number whose failure has an
owner performing recovery.  Observers of a failed incarnation race through
:meth:`RecoveryTable.check_and_claim`; exactly one wins:

* no record yet -> insert ``life``; caller recovers (paper's
  INSERTRECORD path);
* record equals ``life - 1`` -> advance it (the paper's CAS
  ``life-1 -> life``); caller recovers this *new* incarnation's failure;
* anything else -> some thread already owns recovery of this (or a newer)
  incarnation; caller stands down.

The paper expresses this as a lock-free insert + compare-and-swap on a
concurrent hash map; one mutex per table gives the same linearized
semantics on CPython.
"""

from __future__ import annotations

import threading
from typing import Hashable


class RecoveryTable:
    """Tracks which (key, life) failures have a recovery owner."""

    def __init__(self) -> None:
        self._table: dict[Hashable, int] = {}
        self._lock = threading.Lock()
        self.claims = 0
        self.rejections = 0

    def check_and_claim(self, key: Hashable, life: int) -> bool:
        """Return True iff the caller must perform recovery of ``(key, life)``.

        This is the negation of the paper's ISRECOVERING: ISRECOVERING
        returns *false* to the single thread that should recover.
        """
        with self._lock:
            current = self._table.get(key)
            if current is None or current == life - 1:
                self._table[key] = life
                self.claims += 1
                return True
            self.rejections += 1
            return False

    def recovering_life(self, key: Hashable) -> int | None:
        """Most recent life whose recovery has been claimed (None if never)."""
        with self._lock:
            return self._table.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)
