"""The recovery table R of Guarantee 1: each failure recovered at most once.

``R`` maps a task key to the most recent life number whose failure has an
owner performing recovery.  Observers of a failed incarnation race through
:meth:`RecoveryTable.check_and_claim`; exactly one wins:

* no record yet -> insert ``life``; caller recovers (paper's
  INSERTRECORD path);
* record equals ``life - 1`` -> advance it (the paper's CAS
  ``life-1 -> life``); caller recovers this *new* incarnation's failure;
* anything else -> some thread already owns recovery of this (or a newer)
  incarnation; caller stands down.

The paper expresses this as a lock-free insert + compare-and-swap on a
concurrent hash map.  Here the check-then-claim for a key is serialized
under that key's *stripe* lock (``hash(key) % n_stripes``), which gives
the same linearized at-most-one-owner semantics per key while letting
recoveries of unrelated keys claim concurrently -- recovery storms after
a burst of faults no longer convoy behind one table mutex.
"""

from __future__ import annotations

import threading
from typing import Hashable

#: Default stripe count; matches :data:`repro.core.taskmap.DEFAULT_STRIPES`
#: rationale (comfortably above the worker counts this repo runs).
DEFAULT_STRIPES = 16


class RecoveryTable:
    """Tracks which (key, life) failures have a recovery owner."""

    def __init__(self, n_stripes: int = DEFAULT_STRIPES) -> None:
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self._table: dict[Hashable, int] = {}
        self._n_stripes = n_stripes
        self._locks = tuple(threading.Lock() for _ in range(n_stripes))
        self._claims = [0] * n_stripes
        self._rejections = [0] * n_stripes

    def check_and_claim(self, key: Hashable, life: int) -> bool:
        """Return True iff the caller must perform recovery of ``(key, life)``.

        This is the negation of the paper's ISRECOVERING: ISRECOVERING
        returns *false* to the single thread that should recover.  All
        claimants of ``key`` serialize on its stripe lock, so for any
        ``(key, life)`` at most one caller ever returns True.
        """
        stripe = hash(key) % self._n_stripes
        with self._locks[stripe]:
            current = self._table.get(key)
            if current is None or current == life - 1:
                self._table[key] = life
                self._claims[stripe] += 1
                return True
            self._rejections[stripe] += 1
            return False

    def recovering_life(self, key: Hashable) -> int | None:
        """Most recent life whose recovery has been claimed (None if never).

        Lock-free: a single ``dict.get`` of an int value is atomic under
        the GIL and the value for a key only ever increases, so a caller
        sees some claimed life that was current at the lookup -- the same
        guarantee the locked read gave (staleness was always possible the
        instant the lock was released).
        """
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)  # atomic snapshot under the GIL

    @property
    def n_stripes(self) -> int:
        return self._n_stripes

    @property
    def claims(self) -> int:
        return sum(self._claims)

    @property
    def rejections(self) -> int:
        return sum(self._rejections)
