"""Scheduler run results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.blockstore import BlockStore
from repro.runtime.api import RunResult
from repro.runtime.tracing import ExecutionTrace


@dataclass
class SchedulerResult:
    """Everything one task-graph execution produced.

    ``makespan`` is virtual time on the simulated runtime, wall-clock
    seconds on the threaded runtime, and accumulated charge on the inline
    runtime -- always compare runs executed on the same runtime kind.
    """

    run: RunResult
    trace: ExecutionTrace
    store: BlockStore
    scheduler: str
    """"nabbit" (baseline) or "ft" (fault-tolerant)."""

    @property
    def makespan(self) -> float:
        return self.run.makespan

    def overhead_vs(self, baseline: "SchedulerResult") -> float:
        """Relative slowdown vs ``baseline`` in percent (the paper's
        recovery-overhead metric)."""
        if baseline.makespan <= 0:
            raise ValueError("baseline makespan must be positive")
        return 100.0 * (self.makespan - baseline.makespan) / baseline.makespan
