"""Task lifecycle states (Section III).

A task record moves monotonically through::

    VISITED ---> COMPUTED ---> COMPLETED
    (inserted)   (COMPUTE ran) (all enqueued successors notified)

Recovery never rewinds a record's status; instead the record is *replaced*
by a fresh ``VISITED`` incarnation (Guarantee 2), so status comparisons
such as ``status < COMPUTED`` stay valid on every incarnation.
"""

from __future__ import annotations

import enum


class TaskStatus(enum.IntEnum):
    VISITED = 0
    COMPUTED = 1
    COMPLETED = 2
