"""Concurrent task map: key -> current :class:`TaskRecord` incarnation.

The paper stores task *pointers* in a concurrent hash map keyed by int64
task keys; recovery replaces the pointer with a new incarnation and bumps
the key's *life number* (Guarantee 1).  Life numbers are tracked per key
in the map itself so they survive record replacement.

The map also remembers, per key, the number of predecessors -- records
must be created fully initialized (join counter, bit vector) because other
threads may operate on a record the instant it becomes visible.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

from repro.core.records import TaskRecord


class TaskMap:
    """Thread-safe mapping of task keys to their live incarnation."""

    def __init__(self, n_preds_of: Callable[[Hashable], int]) -> None:
        self._n_preds_of = n_preds_of
        self._records: dict[Hashable, TaskRecord] = {}
        self._lock = threading.Lock()
        self._inserts = 0
        self._replacements = 0

    def insert_if_absent(self, key: Hashable) -> tuple[TaskRecord, int, bool]:
        """INSERTTASKIFABSENT + GETTASK: returns ``(record, life, inserted)``.

        Exactly one caller per key observes ``inserted=True`` and becomes
        responsible for spawning the task's INITANDCOMPUTE.
        """
        with self._lock:
            rec = self._records.get(key)
            if rec is not None:
                return rec, rec.life, False
            rec = TaskRecord(key, self._n_preds_of(key), life=1)
            self._records[key] = rec
            self._inserts += 1
            return rec, 1, True

    def get(self, key: Hashable) -> tuple[TaskRecord | None, int]:
        """GETTASK: current incarnation and its life (``(None, 0)`` if absent)."""
        with self._lock:
            rec = self._records.get(key)
            if rec is None:
                return None, 0
            return rec, rec.life

    def replace(self, key: Hashable) -> tuple[TaskRecord, int]:
        """REPLACETASK: install a fresh incarnation with the next life number.

        The key must already be present -- only failed (hence previously
        inserted) tasks are ever replaced.
        """
        with self._lock:
            old = self._records[key]
            rec = TaskRecord(key, self._n_preds_of(key), life=old.life + 1)
            self._records[key] = rec
            self._replacements += 1
            return rec, rec.life

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._records

    @property
    def inserts(self) -> int:
        return self._inserts

    @property
    def replacements(self) -> int:
        return self._replacements
