"""Concurrent task map: key -> current :class:`TaskRecord` incarnation.

The paper stores task *pointers* in a concurrent hash map keyed by int64
task keys; recovery replaces the pointer with a new incarnation and bumps
the key's *life number* (Guarantee 1).  Life numbers are tracked per key
in the map itself so they survive record replacement.

The map also remembers, per key, the number of predecessors -- records
must be created fully initialized (join counter, bit vector) because other
threads may operate on a record the instant it becomes visible.

Concurrency design (this file is on the hot path of every scheduler
operation):

* **Lock striping.**  Mutations take one of ``n_stripes`` locks selected
  by ``hash(key) % n_stripes``, so inserts/replacements of unrelated keys
  proceed in parallel instead of convoying behind a single map mutex.
  Both callers racing on the *same* key hash to the same stripe, which is
  all the exactly-once insert guarantee needs.
* **Optimistic lock-free reads.**  ``get`` (and the hit path of
  ``insert_if_absent``) read the shared dict without any lock; see the
  ``get`` docstring for the memory-ordering argument.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

from repro.core.records import TaskRecord

#: Default stripe count.  Must be a power of two only by convention (any
#: positive count is correct); 16 comfortably exceeds the worker counts
#: this repo runs (<= 32) while keeping the lock array cache-friendly.
DEFAULT_STRIPES = 16


class TaskMap:
    """Thread-safe mapping of task keys to their live incarnation."""

    def __init__(
        self,
        n_preds_of: Callable[[Hashable], int],
        n_stripes: int = DEFAULT_STRIPES,
    ) -> None:
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self._n_preds_of = n_preds_of
        self._records: dict[Hashable, TaskRecord] = {}
        self._n_stripes = n_stripes
        self._locks = tuple(threading.Lock() for _ in range(n_stripes))
        self._inserts = [0] * n_stripes
        self._replacements = [0] * n_stripes

    def insert_if_absent(self, key: Hashable) -> tuple[TaskRecord, int, bool]:
        """INSERTTASKIFABSENT + GETTASK: returns ``(record, life, inserted)``.

        Exactly one caller per key observes ``inserted=True`` and becomes
        responsible for spawning the task's INITANDCOMPUTE.

        The hit path (key already resident -- the common case during
        notification re-traversal) is lock-free; the miss path takes only
        the key's stripe lock and re-checks under it, so two racing
        inserters of the same key serialize on that stripe and exactly one
        performs the insert.
        """
        rec = self._records.get(key)  # optimistic lock-free hit path
        if rec is not None:
            return rec, rec.life, False
        stripe = hash(key) % self._n_stripes
        with self._locks[stripe]:
            rec = self._records.get(key)
            if rec is not None:
                return rec, rec.life, False
            rec = TaskRecord(key, self._n_preds_of(key), life=1)
            self._records[key] = rec
            self._inserts[stripe] += 1
            return rec, 1, True

    def get(self, key: Hashable) -> tuple[TaskRecord | None, int]:
        """GETTASK: current incarnation and its life (``(None, 0)`` if absent).

        **Lock-free.**  Memory-ordering argument (CPython): the single
        ``dict.get`` is one atomic operation under the GIL, so it observes
        either the pre-insert, pre-replace, or post-replace state of the
        key -- never a torn entry.  The returned record is safe to use
        unlocked because records are *published fully initialized*:
        ``insert_if_absent``/``replace`` construct the ``TaskRecord``
        (join counter, bit vector, life) completely before the one store
        that makes it reachable, and ``TaskRecord.life`` is immutable for
        the lifetime of the object -- a new incarnation is a new object,
        never an in-place update.  Hence ``(rec, rec.life)`` is always an
        internally consistent pair, exactly as if the read had happened
        under the old map mutex at the instant of the dict lookup.  The
        only admissible anomaly is staleness -- a caller may see the
        previous incarnation of a key that is concurrently being replaced
        -- which the locked implementation permitted too (the lookup
        linearizes before the replacement) and which the scheduler's life
        numbers are designed to detect (Guarantee 6 stale-frame gating).
        """
        rec = self._records.get(key)
        if rec is None:
            return None, 0
        return rec, rec.life

    def replace(self, key: Hashable) -> tuple[TaskRecord, int]:
        """REPLACETASK: install a fresh incarnation with the next life number.

        The key must already be present -- only failed (hence previously
        inserted) tasks are ever replaced.  Serialized per stripe, so two
        recoveries of different keys can replace concurrently while
        replacements of one key are totally ordered.
        """
        stripe = hash(key) % self._n_stripes
        with self._locks[stripe]:
            old = self._records[key]
            rec = TaskRecord(key, self._n_preds_of(key), life=old.life + 1)
            self._records[key] = rec
            self._replacements[stripe] += 1
            return rec, rec.life

    def __len__(self) -> int:
        return len(self._records)  # atomic snapshot under the GIL

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records  # single atomic dict probe

    @property
    def n_stripes(self) -> int:
        return self._n_stripes

    @property
    def inserts(self) -> int:
        return sum(self._inserts)

    @property
    def replacements(self) -> int:
        return sum(self._replacements)
