"""Silent-fault detection: turn SDCs into the faults the scheduler heals.

The paper's FT scheduler recovers from *detected* faults and leaves
detection out of scope.  This subsystem closes the loop, following the
selective-replication line of work (Reitz & Fohry; Nather, Fohry &
Reitz):

* :class:`ChecksumStore` -- fingerprints every published block version
  and verifies on consumer access; a mismatch raises the existing
  corruption path.
* :class:`SilentFaultInjector` -- mutates block payloads *without*
  setting flags; only a detector (or a wrong answer) reveals the fault.
* :class:`ReplicationDetector` + policies -- duplicate-and-compare /
  triple-vote re-execution of selected tasks, wired as scheduler hooks.
* :func:`account_escapes` -- post-run coverage: injected vs detected vs
  escaped, with SDC_* events in the structured log.

Workflow::

    from repro.core.hooks import CompositeHooks
    from repro.detect import (ChecksumStore, ReplicationDetector,
                              SilentFaultInjector, plan_silent_faults,
                              account_escapes)

    store = ChecksumStore(app.ft_policy)
    app.seed_store(store)
    plan = plan_silent_faults(app, count=2, seed=7)
    injector = SilentFaultInjector(plan, app, store)
    detector = ReplicationDetector(app, store)  # optional second layer
    log = EventLog()
    FTScheduler(app, runtime, store=store,
                hooks=CompositeHooks(injector, detector),
                event_log=log).run()
    report = account_escapes(injector, log)
    print(report.summary())   # coverage, escapes, replica overhead

See docs/DETECTION.md for the threat model and measured overheads.
"""

from repro.detect.checksum import ChecksumStore, DetectionStats, SharedMemoryChecksumStore
from repro.detect.digest import (
    DEFAULT_DIGEST,
    DIGESTS,
    canonical_bytes,
    digest_from_name,
    fingerprint,
)
from repro.detect.policy import (
    DetectionPolicy,
    ReplicateAll,
    ReplicateByCriticality,
    ReplicateNone,
    ReplicateSampled,
    policy_from_name,
)
from repro.detect.replicate import ReplicaContext, ReplicationDetector
from repro.detect.report import DetectionReport, account_escapes
from repro.detect.silent import SilentFaultInjector, default_mutator, plan_silent_faults

__all__ = [
    "ChecksumStore",
    "SharedMemoryChecksumStore",
    "DetectionStats",
    "canonical_bytes",
    "fingerprint",
    "digest_from_name",
    "DIGESTS",
    "DEFAULT_DIGEST",
    "DetectionPolicy",
    "ReplicateAll",
    "ReplicateNone",
    "ReplicateByCriticality",
    "ReplicateSampled",
    "policy_from_name",
    "ReplicationDetector",
    "ReplicaContext",
    "SilentFaultInjector",
    "default_mutator",
    "plan_silent_faults",
    "DetectionReport",
    "account_escapes",
]
