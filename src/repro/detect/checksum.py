"""Checksummed block store: detect-on-access for *silent* corruption.

The base :class:`~repro.memory.blockstore.BlockStore` realizes the
paper's fault model, where detection is assumed ("once an error is
detected ..."): injectors set flags, accesses observe them.  A *silent*
fault sets no flag -- the payload is simply wrong.  ``ChecksumStore``
closes that gap: every published version is fingerprinted at write time
(:mod:`repro.detect.digest`), and consumer-facing accesses (``read``,
``status_of``, ``is_available``) re-fingerprint the payload and compare.
A mismatch is converted into the store's ordinary corruption path -- the
flag is set, ``DataCorruptionError`` raised -- which the FT scheduler
already recovers from.  Detection is thus a *translation layer*: silent
faults in, detected faults out, no scheduler changes needed.

Counting discipline (see ``StoreStats`` and the regression tests): a
checksum-detected read marks the flag once (``corruptions_marked``) and
counts one ``corrupted_reads``; later reads of the same version take the
flag path in the base class and never reach verification, so nothing is
double-counted when a version is both checksum-mismatched and
flag-corrupted.

Pinned versions (resilient input data) are never fingerprinted or
verified, mirroring their immunity to ``mark_corrupted``.  ``peek``
stays non-faulting and non-verifying: it is the introspection side door
for reports and must not mutate detection state.

Thread-safety: fingerprints live in a side table under a dedicated
lock.  Fingerprint computation happens outside the slot lock; the only
write/write race on one version is recovery replay, which the recovery
table serializes per incarnation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Hashable

from repro.detect.digest import DEFAULT_DIGEST, Digest, canonical_bytes, digest_from_name
from repro.exceptions import DataCorruptionError
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import AllocationPolicy
from repro.memory.blockstore import BlockStore
from repro.memory.shm import SharedMemoryBackend
from repro.obs.events import EventKind

_MISSING = object()


@dataclass
class DetectionStats:
    """Checksum-layer counters (detection coverage and overhead)."""

    fingerprints: int = 0
    """Versions fingerprinted at write time."""

    verifications: int = 0
    """Consumer accesses that re-fingerprinted and compared."""

    mismatches: int = 0
    """Verifications that caught a silent corruption."""

    unverified_reads: int = 0
    """Accesses with no fingerprint on record (pinned inputs)."""

    digest_seconds: float = 0.0
    """Wall-clock time spent fingerprinting (write + verify side); the
    direct cost of the detection layer."""

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)


class ChecksumStore(BlockStore):
    """Block store that fingerprints every published version and verifies
    on consumer access, raising the existing corruption path on mismatch."""

    def __init__(
        self,
        policy: AllocationPolicy | None = None,
        digest: str | Digest = DEFAULT_DIGEST,
        verify_on_read: bool = True,
        trace: Any = None,
        event_log: Any = None,
    ) -> None:
        super().__init__(policy)
        self.digest_name = digest if isinstance(digest, str) else getattr(
            digest, "__name__", "custom"
        )
        self._digest = digest_from_name(digest) if isinstance(digest, str) else digest
        self.verify_on_read = verify_on_read
        self.detection = DetectionStats()
        self.trace = trace
        """Optional :class:`~repro.runtime.tracing.ExecutionTrace`; bumps
        ``sdc_detected`` on each mismatch.  Schedulers share theirs at
        construction time when this is left ``None``."""
        self.event_log = event_log
        """Optional :class:`~repro.obs.events.EventLog` for SDC_DETECTED
        events (shared by the schedulers when left ``None``)."""
        self._sums: dict[tuple[Hashable, int], int | bytes] = {}
        self._detected: set[tuple[Hashable, int]] = set()
        self._sums_lock = threading.Lock()

    # -- producer side -----------------------------------------------------------

    def write(self, ref: BlockRef, data: Any) -> None:
        fp = self._fingerprint(data)
        super().write(ref, data)
        with self._sums_lock:
            self._sums[(ref.block, ref.version)] = fp
            # A rewrite is regeneration (recovery replay): clean data,
            # fresh fingerprint, and a later corruption of the same
            # version counts as a new detection.
            self._detected.discard((ref.block, ref.version))
            self.detection.fingerprints += 1

    # -- consumer side -----------------------------------------------------------

    def read(self, ref: BlockRef) -> Any:
        data = super().read(ref)  # flag-corrupted / evicted raise here
        if self.verify_on_read and not self._verify(ref, data):
            self.stats.corrupted_reads += 1
            raise DataCorruptionError(ref.block, ref.version)
        return data

    def status_of(self, ref: BlockRef) -> str:
        status = super().status_of(ref)
        if status == "ok" and self.verify_on_read:
            data = super().peek(ref, _MISSING)
            if data is not _MISSING and not self._verify(ref, data):
                return "corrupted"
        return status

    def is_available(self, ref: BlockRef) -> bool:
        if not super().is_available(ref):
            return False
        if self.verify_on_read:
            data = super().peek(ref, _MISSING)
            if data is _MISSING:
                return False
            return self._verify(ref, data)
        return True

    # -- sweeps ----------------------------------------------------------------

    def audit(self) -> list[BlockRef]:
        """Verify every resident version; returns the refs that failed
        (now flag-corrupted).  An end-of-run audit catches after-notify
        silent faults that no consumer ever re-read."""
        bad: list[BlockRef] = []
        for ref in list(self.refs()):
            data = super().peek(ref, _MISSING)
            if data is _MISSING:  # flag-corrupted or raced eviction
                continue
            if not self._verify(ref, data):
                bad.append(ref)
        return bad

    # -- internals ----------------------------------------------------------------

    def _fingerprint(self, data: Any) -> int | bytes:
        t0 = time.perf_counter()
        fp = self._digest(canonical_bytes(data))
        dt = time.perf_counter() - t0
        with self._sums_lock:
            self.detection.digest_seconds += dt
        return fp

    def _verify(self, ref: BlockRef, data: Any) -> bool:
        """True iff ``data`` matches ``ref``'s recorded fingerprint; on
        mismatch, marks the version corrupted (once) and records the
        detection."""
        with self._sums_lock:
            want = self._sums.get((ref.block, ref.version), _MISSING)
        if want is _MISSING:
            with self._sums_lock:
                self.detection.unverified_reads += 1
            return True
        got = self._fingerprint(data)
        with self._sums_lock:
            self.detection.verifications += 1
        if got == want:
            return True
        # mark_corrupted is idempotent on the flag and single-counts
        # corruptions_marked, so a version that several accesses race to
        # detect -- or that a flag injector also hits -- stays at one
        # count in StoreStats.
        self.mark_corrupted(ref)
        with self._sums_lock:
            self.detection.mismatches += 1
            first_detection = (ref.block, ref.version) not in self._detected
            self._detected.add((ref.block, ref.version))
        if first_detection:
            if self.trace is not None:
                self.trace.count_sdc_detected()
            if self.event_log is not None and self.event_log.enabled:
                self.event_log.emit(
                    EventKind.SDC_DETECTED,
                    block=ref.block,
                    version=ref.version,
                    method="checksum",
                )
        return False


class SharedMemoryChecksumStore(SharedMemoryBackend, ChecksumStore):
    """Checksummed store whose payloads live in shared memory.

    MRO: the shm backend materializes the segment first, then
    :class:`ChecksumStore` fingerprints the zero-copy *views* -- the very
    bytes worker processes will read -- so an in-segment silent
    corruption (``corrupt_data``) is caught by the next parent-side
    verification exactly as with the in-process store, and dispatch
    converts it into the scheduler's recovery path before any descriptor
    ships (:class:`repro.runtime.procpool.ProcessRuntime` reads inputs in
    the parent).
    """

