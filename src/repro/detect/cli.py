"""``python -m repro detect`` -- exercise the silent-fault detectors.

Default run prints the detection-coverage table and the fault-free
overhead table (the ``--only detect`` harness experiment).

``--selftest`` is the install check the CI job runs: for LCS and
Cholesky on all three runtimes it injects mid-graph silent faults and
asserts (a) with a checksummed store every fault is detected, recovered,
and the final result matches the fault-free reference; (b) replication
detects the same faults where the memory policy leaves inputs resident;
and (c) with detection disabled the same plan yields a wrong result and
is reported as escaped -- the contrast that proves the detectors, not
luck, produced (a).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import CompositeHooks, FTScheduler
from repro.detect.checksum import ChecksumStore
from repro.detect.replicate import ReplicationDetector
from repro.detect.report import account_escapes
from repro.detect.silent import SilentFaultInjector, plan_silent_faults
from repro.memory.allocator import KeepK
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventLog
from repro.obs.replay import assert_consistent
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace

_SELFTEST_APPS = ("lcs", "cholesky")


def _runtimes():
    return (
        ("inline", lambda: InlineRuntime()),
        ("simulated", lambda: SimulatedRuntime(workers=4, seed=1)),
        ("threaded", lambda: ThreadedRuntime(workers=4, seed=1)),
    )


def _detection_run(app, store, detector, count: int, seed: int, runtime):
    """One silent-fault run; returns (report, detector, verify_error)."""
    app.seed_store(store)
    plan = plan_silent_faults(app, count=count, seed=seed)
    trace = ExecutionTrace()
    log = EventLog()
    injector = SilentFaultInjector(plan, app, store, trace=trace)
    hooks = CompositeHooks(injector, detector) if detector else injector
    FTScheduler(
        app, runtime, store=store, hooks=hooks, trace=trace, event_log=log
    ).run()
    report = account_escapes(injector, log, trace)
    assert_consistent(log, trace)
    try:
        app.verify(store)
        error = None
    except AssertionError as exc:
        error = exc
    return report, error


def _selftest(count: int, seed: int) -> int:
    from repro.apps import make_app

    failures = 0
    t0 = time.time()

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if not ok:
            failures += 1
        print(f"  {label:<44} [{'ok' if ok else 'FAIL'}]{' ' + detail if detail else ''}")

    for app_name in _SELFTEST_APPS:
        for rt_name, mk in _runtimes():
            # (a) checksummed store: detect, recover, correct result.
            app = make_app(app_name, scale="tiny")
            report, error = _detection_run(
                app, ChecksumStore(app.ft_policy), None, count, seed, mk()
            )
            check(
                f"{app_name}/{rt_name} checksum",
                error is None and report.escaped == 0 and report.detected == report.injected,
                f"coverage {report.detected}/{report.injected}",
            )

            # (b) replication: widen single-buffer reuse rings so replicas
            # can re-read inputs (see docs/DETECTION.md).
            app = make_app(app_name, scale="tiny")
            policy = app.ft_policy if (app.ft_policy.keep or 2) >= 2 else KeepK(2)
            detector = ReplicationDetector(app, BlockStore(policy))
            report, error = _detection_run(
                app, detector.store, detector, count, seed, mk()
            )
            check(
                f"{app_name}/{rt_name} replication",
                error is None and report.escaped == 0 and report.detected == report.injected,
                f"coverage {report.detected}/{report.injected}",
            )

        # (c) detection off: the same class of fault escapes and the
        # result is wrong (sink victim: its output is what verify reads).
        app = make_app(app_name, scale="tiny")
        store = BlockStore(app.ft_policy)
        app.seed_store(store)
        trace = ExecutionTrace()
        log = EventLog()
        injector = SilentFaultInjector(
            plan_sink_fault(app), app, store, trace=trace
        )
        FTScheduler(
            app, InlineRuntime(), store=store, hooks=injector, trace=trace, event_log=log
        ).run()
        report = account_escapes(injector, log, trace)
        assert_consistent(log, trace)
        try:
            app.verify(store)
            wrong = False
        except AssertionError:
            wrong = True
        check(
            f"{app_name} no detection -> escape",
            wrong and report.escaped > 0,
            f"escaped {report.escaped}/{report.injected}",
        )

    print(f"detect selftest {'passed' if not failures else 'FAILED'} in {time.time() - t0:.1f}s")
    return 1 if failures else 0


def plan_sink_fault(app):
    """A one-event silent plan hitting the sink task (whose outputs the
    verifier reads directly, so an undetected fault is provably visible)."""
    from repro.faults.model import FaultEvent, FaultPhase, FaultPlan

    return FaultPlan(
        events=[
            FaultEvent(
                app.sink_key(),
                FaultPhase.AFTER_COMPUTE,
                corrupt_descriptor=False,
                corrupt_outputs=True,
            )
        ],
        implied_reexecutions=1,
        task_type="sink",
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro detect",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--selftest", action="store_true",
                    help="run the detection install check (CI entry point)")
    ap.add_argument("--apps", type=str, default=None,
                    help="comma-separated benchmark subset (default: lcs,cholesky)")
    ap.add_argument("--count", type=int, default=2, help="silent faults per run")
    ap.add_argument("--reps", type=int, default=3, help="repetitions per table row")
    ap.add_argument("--seed", type=int, default=0, help="base victim-selection seed")
    ap.add_argument("--scale", choices=("tiny", "default", "large"), default="tiny",
                    help="benchmark instance scale")
    ap.add_argument("--digest", type=str, default="crc32",
                    help="checksum digest: crc32 | adler32 | blake2b | sha256")
    args = ap.parse_args(argv)

    if args.selftest:
        return _selftest(args.count, args.seed)

    from repro.harness.detection import (
        detection_coverage,
        detection_overhead,
        format_coverage,
        format_overhead,
    )

    apps = tuple(args.apps.split(",")) if args.apps else None
    rows = detection_coverage(
        apps, count=args.count, reps=args.reps, scale=args.scale, digest=args.digest
    )
    print(format_coverage(rows))
    print()
    rows = detection_overhead(apps, reps=args.reps, scale=args.scale)
    print(format_overhead(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
