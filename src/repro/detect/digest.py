"""Pluggable block fingerprints for silent-fault detection.

A fingerprint is ``digest(canonical_bytes(value))``.  Canonicalization
matters more than the digest: two *equal* payloads must serialize to the
same bytes regardless of which object produced them (the replication
detector compares a replica's freshly computed outputs against the stored
originals), and two *different* payloads must not collide structurally
(an array and the list of its elements are different data).  Every
encoder therefore emits a one-byte type tag plus length-prefixed fields.

Two digest families, both stdlib (no new dependencies):

* ``crc32`` / ``adler32`` -- :mod:`zlib` checksums.  Fast (C loop over
  the buffer), 32-bit.  Fine against the random bit flips of the soft
  -error threat model; not collision-resistant against adversaries.
* ``blake2b`` / ``sha256`` -- :mod:`hashlib`.  Slower, cryptographic;
  ``blake2b`` is truncated to 128 bits, plenty for detection.

``DEFAULT_DIGEST`` is ``crc32``: the threat model is hardware bit flips,
and the paper's overhead discipline (Section VI's "bounded overhead")
argues for the cheapest sufficient check.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from typing import Any, Callable

Digest = Callable[[bytes], int | bytes]

_LEN = struct.Struct("<q")


def _tagged(tag: bytes, payload: bytes) -> bytes:
    return tag + _LEN.pack(len(payload)) + payload


def canonical_bytes(value: Any) -> bytes:
    """Deterministic, type-discriminating byte encoding of a payload.

    Handles the payload shapes the bundled applications produce (numpy
    arrays, numbers, strings, and nested tuples/lists/dicts of those);
    anything else falls back to :mod:`pickle`, which is deterministic for
    equal built-in values within one process -- sufficient, since
    fingerprints never leave the run that computed them.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return _tagged(b"i", str(value).encode("ascii"))
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        return _tagged(b"s", value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _tagged(b"b", bytes(value))
    np = _numpy()
    if np is not None and isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        head = repr((arr.dtype.str, arr.shape)).encode("ascii")
        return _tagged(b"a", _tagged(b"h", head) + _tagged(b"d", arr.tobytes()))
    if np is not None and isinstance(value, np.generic):
        return _tagged(b"g", value.dtype.str.encode("ascii") + value.tobytes())
    if isinstance(value, (tuple, list)):
        tag = b"t" if isinstance(value, tuple) else b"l"
        return _tagged(tag, b"".join(canonical_bytes(v) for v in value))
    if isinstance(value, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        return _tagged(b"m", b"".join(k + v for k, v in items))
    return _tagged(b"p", pickle.dumps(value, protocol=4))


def _numpy():
    try:
        import numpy

        return numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        return None


def _blake2b(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=16).digest()


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


#: name -> digest callable over canonical bytes.
DIGESTS: dict[str, Digest] = {
    "crc32": zlib.crc32,
    "adler32": zlib.adler32,
    "blake2b": _blake2b,
    "sha256": _sha256,
}

DEFAULT_DIGEST = "crc32"


def digest_from_name(name: str) -> Digest:
    """Resolve a digest by name; raises ``ValueError`` on unknown names."""
    try:
        return DIGESTS[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown digest {name!r}; expected one of {sorted(DIGESTS)}"
        ) from None


def fingerprint(value: Any, digest: str | Digest = DEFAULT_DIGEST) -> int | bytes:
    """Fingerprint one payload: ``digest(canonical_bytes(value))``."""
    fn = digest_from_name(digest) if isinstance(digest, str) else digest
    return fn(canonical_bytes(value))
