"""Selective-replication policies: which tasks earn a duplicate run.

Full duplication detects every SDC but doubles the work; the related
work (Reitz & Fohry's selective task replication) replicates only where
it pays.  A :class:`DetectionPolicy` answers ``should_replicate(spec,
key, life)`` per task incarnation:

* :class:`ReplicateAll` -- full duplication, the coverage ceiling.
* :class:`ReplicateByCriticality` -- replicate tasks whose corruption
  spreads widest: out-degree (many consumers inherit the bad value)
  and/or compute cost (expensive to regenerate late) thresholds.
* :class:`ReplicateSampled` -- probabilistic spot-checking at a fixed
  rate; selection is a seeded hash of ``(key, life)``, so a given seed
  replicates the same incarnations on every runtime and schedule.

``policy_from_name`` parses CLI spellings: ``all``, ``none``,
``sampled:0.25``, ``critical:3`` (minimum out-degree).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable

from repro.graph.taskspec import TaskGraphSpec


@dataclass(frozen=True)
class ReplicateAll:
    """Duplicate every task (coverage ceiling, ~2x compute)."""

    name: str = "all"

    def should_replicate(self, spec: TaskGraphSpec, key: Hashable, life: int) -> bool:
        return True


@dataclass(frozen=True)
class ReplicateNone:
    """Never replicate (checksum-only or unprotected configurations)."""

    name: str = "none"

    def should_replicate(self, spec: TaskGraphSpec, key: Hashable, life: int) -> bool:
        return False


@dataclass(frozen=True)
class ReplicateByCriticality:
    """Replicate tasks whose failure would spread or cost the most."""

    min_successors: int = 2
    """Replicate when out-degree >= this (0 disables the criterion)."""

    min_cost: float = float("inf")
    """Replicate when ``spec.cost(key)`` >= this (inf disables)."""

    name: str = "criticality"

    def should_replicate(self, spec: TaskGraphSpec, key: Hashable, life: int) -> bool:
        if self.min_successors and len(tuple(spec.successors(key))) >= self.min_successors:
            return True
        return float(spec.cost(key)) >= self.min_cost


@dataclass(frozen=True)
class ReplicateSampled:
    """Replicate a deterministic pseudo-random ``rate`` of incarnations."""

    rate: float = 0.25
    seed: int = 0
    name: str = "sampled"

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate {self.rate} outside [0, 1]")

    def should_replicate(self, spec: TaskGraphSpec, key: Hashable, life: int) -> bool:
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.blake2b(
            repr((self.seed, key, life)).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / float(1 << 64) < self.rate


DetectionPolicy = ReplicateAll | ReplicateNone | ReplicateByCriticality | ReplicateSampled


def policy_from_name(name: str, seed: int = 0) -> DetectionPolicy:
    """Parse ``all`` / ``none`` / ``sampled:RATE`` / ``critical:MIN_DEG``."""
    spec = name.strip().lower()
    head, _, arg = spec.partition(":")
    if head == "all":
        return ReplicateAll()
    if head == "none":
        return ReplicateNone()
    if head == "sampled":
        return ReplicateSampled(rate=float(arg) if arg else 0.25, seed=seed)
    if head in ("critical", "criticality"):
        return ReplicateByCriticality(min_successors=int(arg) if arg else 2)
    raise ValueError(
        f"unknown detection policy {name!r}; expected all | none | "
        "sampled[:rate] | critical[:min_successors]"
    )
