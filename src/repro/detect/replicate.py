"""Selective task replication: duplicate-and-compare SDC detection.

Where the checksum layer catches silent corruption *of stored bytes*,
replication catches corruption *of the computation itself* (and, as a
side effect, post-write byte corruption too): at the ``after compute``
lifecycle point -- outputs written, successors not yet notified, exactly
the window the paper's after-compute fault occupies -- the detector
re-executes the task against the same inputs into a scratch context and
compares output fingerprints.

* ``votes=2`` (duplicate-and-compare): one replica.  A mismatch proves
  *something* corrupted without naming it; the published copy is
  conservatively condemned -- the record and its output versions are
  marked corrupted, so the scheduler's very next ``A.check()`` raises
  ``TaskCorruptionError`` and hands the task to RECOVERTASK.
* ``votes=3`` (triple-vote): two replicas.  The published copy survives
  if it matches the replica majority; it is condemned only when the
  replicas agree against it (or no majority exists).

Replication assumes deterministic task bodies (the bundled kernels are)
and that the task's *input versions are still resident* when the hook
runs.  Under an in-place memory-reuse policy (``Reuse()``, one buffer
per block) a task that overwrites its own input -- every Cholesky/LU
kernel -- has already evicted it by after-compute time, so the replica
cannot re-read it.  The detector must *abstain* in that case, never
fault: a replica's ``OverwrittenError`` fed into the scheduler would
recover the producer, whose re-execution re-arms the same abstention
forever (a detection-induced recovery livelock).  Abstentions are
counted in :attr:`ReplicationDetector.skipped`; use ``TwoVersion()`` /
``KeepK(k >= 2)`` stores (or the checksum layer) where in-place reuse
makes replication structurally impossible.

Wired as :class:`~repro.core.hooks.SchedulerHooks`, composable with an
injector via :class:`~repro.core.hooks.CompositeHooks` (injector first:
it corrupts the window the detector then inspects).
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Hashable, Sequence

from repro.core.records import TaskRecord
from repro.detect.digest import DEFAULT_DIGEST, Digest, fingerprint
from repro.detect.policy import DetectionPolicy, ReplicateAll
from repro.exceptions import FaultError, SchedulerError
from repro.graph.taskspec import BlockRef, TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace

_MISSING = object()


class ReplicaContext:
    """Compute context for a detector replica: reads the real store,
    captures writes locally (footprint-checked like the real context)."""

    __slots__ = ("spec", "store", "key", "_inputs", "_outputs", "written")

    def __init__(self, spec: TaskGraphSpec, store: BlockStore, key: Hashable) -> None:
        self.spec = spec
        self.store = store
        self.key = key
        self._inputs = frozenset(BlockRef(*r) for r in spec.inputs(key))
        self._outputs = frozenset(BlockRef(*r) for r in spec.outputs(key))
        self.written: dict[BlockRef, Any] = {}

    def read(self, ref: BlockRef) -> Any:
        ref = BlockRef(*ref)
        if ref not in self._inputs:
            raise SchedulerError(
                f"replica of {self.key!r} read undeclared input {ref!r}"
            )
        return self.store.read(ref)

    def write(self, ref: BlockRef, value: Any) -> None:
        ref = BlockRef(*ref)
        if ref not in self._outputs:
            raise SchedulerError(
                f"replica of {self.key!r} wrote undeclared output {ref!r}"
            )
        self.written[ref] = value


class ReplicationDetector:
    """SchedulerHooks implementation re-executing selected tasks and
    comparing outputs; a mismatch marks record + blocks corrupted and
    hands the task to the FT scheduler's RECOVERTASK path."""

    def __init__(
        self,
        spec: TaskGraphSpec,
        store: BlockStore,
        policy: DetectionPolicy | None = None,
        votes: int = 2,
        digest: str | Digest = DEFAULT_DIGEST,
        trace: ExecutionTrace | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        if votes < 2:
            raise ValueError("votes must be >= 2 (stored copy + >= 1 replica)")
        self.spec = spec
        self.store = store
        self.policy = policy if policy is not None else ReplicateAll()
        self.votes = votes
        self.digest = digest
        self.trace = trace
        self.event_log = event_log
        """Observability log for REPLICA_RUN / SDC_DETECTED events (the
        schedulers share theirs at construction time when left ``None``)."""
        self._lock = threading.Lock()
        self.detections: list[tuple[Hashable, int, tuple[BlockRef, ...]]] = []
        """(key, life, condemned refs) per detection, ground truth for
        coverage accounting."""
        self.skipped = 0
        """Replications abstained because a replica could not re-read an
        input (evicted by in-place reuse, or mid-recovery corruption)."""

    # -- hook surface -----------------------------------------------------------

    def on_task_waiting(self, record: TaskRecord) -> None:
        return None

    def on_after_compute(self, record: TaskRecord) -> None:
        if record.corrupted:
            return  # a flag injector already condemned this incarnation
        key, life = record.key, record.life
        if not self.policy.should_replicate(self.spec, key, life):
            return
        outputs = tuple(BlockRef(*r) for r in self.spec.outputs(key))
        if not outputs:
            return
        published: dict[BlockRef, Any] = {}
        for ref in outputs:
            value = self.store.peek(ref, _MISSING)
            if value is _MISSING:
                # Flag-corrupted or evicted already: the ordinary
                # detected-fault machinery owns this version.
                return
            published[ref] = value
        log = self.event_log
        span = log is not None and log.enabled
        t0 = log.now() if span else 0.0
        try:
            replica_fps = []
            for i in range(self.votes - 1):
                fps = self._run_replica(record, i)
                if fps is None:
                    with self._lock:
                        self.skipped += 1
                    return
                replica_fps.append(fps)
            published_fp = {ref: fingerprint(v, self.digest) for ref, v in published.items()}
            condemned = tuple(
                ref for ref in outputs
                if not self._published_wins(published_fp[ref], [fps[ref] for fps in replica_fps])
            )
            if not condemned:
                return
            for ref in condemned:
                self.store.mark_corrupted(ref)
            record.corrupted = True
            with self._lock:
                self.detections.append((key, life, condemned))
            if self.trace is not None:
                self.trace.count_sdc_detected()
            if span:
                log.emit(
                    EventKind.SDC_DETECTED,
                    key,
                    life,
                    method="replication",
                    blocks=len(condemned),
                )
        finally:
            # Attribution span over the whole detection attempt (replica
            # runs + fingerprint votes), whether it detected, abstained,
            # or cleared the task.
            if span:
                log.emit(
                    EventKind.SPAN, key, life, phase="detect",
                    wall=log.now() - t0, t0=t0,
                )

    def on_after_notify(self, record: TaskRecord) -> None:
        return None

    # -- internals ----------------------------------------------------------------

    def _run_replica(self, record: TaskRecord, index: int) -> dict[BlockRef, Any] | None:
        """Re-execute ``record``'s task; return output fingerprints, or
        ``None`` to abstain when an input can no longer be re-read."""
        ctx = ReplicaContext(self.spec, self.store, record.key)
        try:
            self.spec.compute(record.key, ctx)
        except FaultError:
            return None
        if self.trace is not None:
            self.trace.count_replica_run()
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                EventKind.REPLICA_RUN, record.key, record.life, replica=index + 1
            )
        missing = [ref for ref in self.spec.outputs(record.key)
                   if BlockRef(*ref) not in ctx.written]
        if missing:
            raise SchedulerError(
                f"replica of {record.key!r} left outputs unwritten: {missing!r}"
            )
        return {ref: fingerprint(v, self.digest) for ref, v in ctx.written.items()}

    def _published_wins(self, published_fp: Any, replica_fps: Sequence[Any]) -> bool:
        """True iff the stored copy should be trusted for this ref.

        With one replica: trust only on exact agreement.  With more: the
        stored copy must belong to a strict-majority fingerprint among
        all ``votes`` copies (stored + replicas)."""
        ballots = Counter([published_fp, *replica_fps])
        if len(ballots) == 1:
            return True
        top_fp, top_count = ballots.most_common(1)[0]
        if top_count * 2 > self.votes:
            return published_fp == top_fp
        return False  # no majority: condemn and re-execute
