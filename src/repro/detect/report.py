"""Detection accounting: injected vs detected vs escaped.

Detection coverage is a *post-run* judgment: a silent fault injected at
after-notify time on a task nobody re-reads is never caught, and only
the ground truth held by the injector can say so.  ``account_escapes``
joins the injector's fired-event list against the run's SDC_DETECTED
events (matching replication detections by task key and checksum
detections by the victim's output block versions), emits one
``SDC_ESCAPED`` event per miss, and returns the misses.

``DetectionReport`` bundles the counts the harness and CLI print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.model import FaultEvent
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace


@dataclass
class DetectionReport:
    """Coverage summary of one silent-fault run."""

    injected: int = 0
    detected: int = 0
    escaped: int = 0
    replica_runs: int = 0
    escaped_events: list[FaultEvent] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Detected fraction of injected silent faults (1.0 when none)."""
        return 1.0 if not self.injected else self.detected / self.injected

    def summary(self) -> dict[str, float | int]:
        return {
            "sdc_injected": self.injected,
            "sdc_detected": self.detected,
            "sdc_escaped": self.escaped,
            "coverage": self.coverage,
            "replica_runs": self.replica_runs,
        }


def account_escapes(
    injector,
    log: EventLog,
    trace: ExecutionTrace | None = None,
) -> DetectionReport:
    """Join injected silent faults against detections; emit SDC_ESCAPED.

    ``injector`` is a :class:`~repro.detect.silent.SilentFaultInjector`
    (anything with ``fired``, ``spec``).  Call once, after the run; the
    emitted SDC_ESCAPED events keep ``replay_summary`` parity with the
    ``trace`` counters bumped here.
    """
    detected_keys = set()
    detected_refs = set()
    for event in log.by_kind(EventKind.SDC_DETECTED):
        if event.key is not None:
            detected_keys.add(event.key)
        block = event.data.get("block")
        if block is not None:
            detected_refs.add((block, event.data.get("version")))
    report = DetectionReport(
        injected=len(injector.fired),
        replica_runs=len(log.by_kind(EventKind.REPLICA_RUN)),
    )
    for fault in injector.fired:
        out_refs = {(b, v) for b, v in injector.spec.outputs(fault.key)}
        if fault.key in detected_keys or (out_refs & detected_refs):
            report.detected += 1
            continue
        report.escaped += 1
        report.escaped_events.append(fault)
        if trace is not None:
            trace.count_sdc_escaped()
        if log.enabled:
            log.emit(
                EventKind.SDC_ESCAPED, fault.key, fault.life, phase=fault.phase.value
            )
    return report
