"""Silent-fault injection: corrupt payloads, set no flags.

The ordinary :class:`~repro.faults.injector.FaultInjector` follows the
paper's methodology -- set a corruption flag, let the next access observe
it.  That presumes a detector exists.  ``SilentFaultInjector`` models the
fault *before* detection: at the planned lifecycle point it mutates the
victim's published block payloads in place
(:meth:`~repro.memory.blockstore.BlockStore.corrupt_data`) and walks
away.  Nothing raises.  The run completes either way; whether the result
is correct depends entirely on whether a detector
(:class:`~repro.detect.checksum.ChecksumStore` or
:class:`~repro.detect.replicate.ReplicationDetector`) catches the
mutation first.

Only the two post-compute phases make sense here (``BEFORE_COMPUTE``
victims have produced nothing to corrupt); plans containing
before-compute events are rejected.

The default mutator perturbs every numeric leaf of the payload by one
unit (bit-flip semantics at value granularity): large enough to survive
any verification tolerance, silent enough that no consumer crashes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

import numpy as np

from repro.core.records import TaskRecord
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.taskspec import BlockRef, TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace

Mutator = Callable[[Any], Any]


def default_mutator(value: Any) -> Any:
    """Perturb every numeric leaf by one unit; flip first char of strings.

    Tuples/lists/dicts are rebuilt with mutated leaves; unrecognized
    payloads are wrapped in an ``("sdc", ...)`` marker tuple (still
    silent: only a detector or a result comparison can tell).
    """
    if isinstance(value, np.ndarray):
        out = value.copy()
        if out.size == 0:
            return out
        if out.dtype == bool:
            return ~out
        if np.issubdtype(out.dtype, np.number):
            return out + out.dtype.type(1)
        return out
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float, complex, np.generic)):
        return value + type(value)(1)
    if isinstance(value, str):
        return (chr(ord(value[0]) ^ 1) + value[1:]) if value else "\x01"
    if isinstance(value, tuple):
        return tuple(default_mutator(v) for v in value)
    if isinstance(value, list):
        return [default_mutator(v) for v in value]
    if isinstance(value, dict):
        return {k: default_mutator(v) for k, v in value.items()}
    return ("sdc", value)


class SilentFaultInjector:
    """SchedulerHooks implementation that mutates block bytes without
    marking corruption -- faults are caught only if a detector finds them."""

    def __init__(
        self,
        plan: FaultPlan,
        spec: TaskGraphSpec,
        store: BlockStore,
        mutator: Mutator | None = None,
        trace: ExecutionTrace | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        for event in plan:
            if event.phase is FaultPhase.BEFORE_COMPUTE:
                raise ValueError(
                    "silent faults corrupt computed outputs; a "
                    "before-compute victim has produced nothing to "
                    f"corrupt (event: {event!r})"
                )
        self.plan = plan
        self.spec = spec
        self.store = store
        self.mutator = mutator or default_mutator
        self.trace = trace
        self.event_log = event_log
        """Observability log for SDC_INJECTED events (the schedulers
        share theirs at construction time when left ``None``)."""
        self._lock = threading.Lock()
        self._pending: dict[tuple[Hashable, FaultPhase], list[FaultEvent]] = {}
        for event in plan:
            self._pending.setdefault((event.key, event.phase), []).append(event)
        for events in self._pending.values():
            events.sort(key=lambda e: e.life)
        self.fired: list[FaultEvent] = []
        self.mutated: dict[FaultEvent, tuple[BlockRef, ...]] = {}
        """Ground truth per fired event: which resident refs were mutated."""

    # -- hook dispatch ---------------------------------------------------------

    def on_task_waiting(self, record: TaskRecord) -> None:
        return None  # before-compute events are rejected at construction

    def on_after_compute(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_COMPUTE)

    def on_after_notify(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_NOTIFY)

    # -- internals ---------------------------------------------------------------

    def _maybe_fire(self, record: TaskRecord, phase: FaultPhase) -> None:
        slot = (record.key, phase)
        with self._lock:
            events = self._pending.get(slot)
            if not events or events[0].life != record.life:
                return
            event = events.pop(0)
            if not events:
                del self._pending[slot]
            self.fired.append(event)
        hit: list[BlockRef] = []
        for raw in self.spec.outputs(record.key):
            ref = BlockRef(*raw)
            if self.store.corrupt_data(ref, self.mutator):
                hit.append(ref)
        with self._lock:
            self.mutated[event] = tuple(hit)
        if self.trace is not None:
            self.trace.count_sdc_injected()
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                EventKind.SDC_INJECTED,
                record.key,
                record.life,
                phase=phase.value,
                blocks=len(hit),
            )

    # -- verification ---------------------------------------------------------------

    @property
    def unfired(self) -> list[FaultEvent]:
        """Planned events whose lifecycle point was never reached."""
        with self._lock:
            return [e for events in self._pending.values() for e in events]

    def all_fired(self) -> bool:
        return not self.unfired


def plan_silent_faults(
    spec: TaskGraphSpec,
    count: int = 1,
    seed: int = 0,
    phase: str | FaultPhase = "after_compute",
    task_type: str = "v=last",
    exclude_sink: bool = True,
) -> FaultPlan:
    """Sample ``count`` victims for a silent-corruption scenario.

    Defaults to ``v=last`` victims (their output versions are what the
    final result reads, so an escaped fault is visible in the answer)
    at after-compute time (successors will re-read the mutated outputs,
    giving detectors their access window).
    """
    import random

    from repro.faults.selectors import VersionIndex, normalize_task_type, sample_victims

    phase = FaultPhase.from_name(phase)
    if phase is FaultPhase.BEFORE_COMPUTE:
        raise ValueError("silent faults require a post-compute phase")
    index = VersionIndex(spec)
    pool = index.pool(normalize_task_type(task_type), exclude_sink=exclude_sink)
    if not pool:
        raise ValueError(f"no {task_type} victims available")
    victims = sample_victims(pool, random.Random(seed))[:count]
    if len(victims) < count:
        raise ValueError(
            f"pool has only {len(victims)} {task_type} victims, need {count}"
        )
    events = [
        FaultEvent(key, phase, corrupt_descriptor=False, corrupt_outputs=True)
        for key in victims
    ]
    return FaultPlan(events=events, implied_reexecutions=len(events), task_type=task_type)
