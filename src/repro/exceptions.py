"""Exception hierarchy for detected soft faults and scheduler errors.

The paper's fault model (Section II) assumes errors are *detected* -- by
ECC, symptom detectors, or application assertions -- and that "once an
error is detected, all subsequent accesses to that object will observe the
error".  We model detection as exceptions raised at the access point:

* :class:`TaskCorruptionError` -- a task descriptor is corrupted; raised by
  any scheduler access to the task record.
* :class:`DataCorruptionError` -- a data block version is corrupted; raised
  when a compute body reads it.
* :class:`OverwrittenError` -- the requested block version has been
  physically overwritten by a later version under memory reuse; the
  producer must be re-executed to regenerate it (Section IV, final
  paragraphs).

All three carry enough identity (key / block reference / producer) for the
catch sites in the fault-tolerant scheduler to route recovery to the right
task, mirroring the "identify which task's fault resulted in the failure"
step of Guarantee 5.
"""

from __future__ import annotations

from typing import Any, Hashable


class ReproError(Exception):
    """Base class for all library errors."""


class SchedulerError(ReproError):
    """Internal scheduler invariant violation (a bug, not a simulated fault)."""


class FaultError(ReproError):
    """Base class for *detected soft faults* observed during execution."""


class TaskCorruptionError(FaultError):
    """The descriptor of task ``key`` (incarnation ``life``) is corrupted."""

    def __init__(self, key: Hashable, life: int) -> None:
        super().__init__(f"task descriptor corrupted: key={key!r} life={life}")
        self.key = key
        self.life = life

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into the constructor, which needs (key, life) -- this
        # keeps the class round-trippable across process boundaries.
        return (type(self), (self.key, self.life))


class DataCorruptionError(FaultError):
    """A stored data block version is corrupted.

    ``producer`` is the key of the task whose (re-)execution regenerates
    the block, when the store can name it; the scheduler falls back to the
    spec's producer map otherwise.
    """

    def __init__(self, block: Hashable, version: int, producer: Any = None) -> None:
        super().__init__(
            f"data block corrupted: block={block!r} version={version} producer={producer!r}"
        )
        self.block = block
        self.version = version
        self.producer = producer

    def __reduce__(self):
        return (type(self), (self.block, self.version, self.producer))


class WorkerCrashError(FaultError):
    """A compute worker *process* died while executing task ``key``.

    Raised by :class:`~repro.runtime.procpool.ProcessRuntime` when the
    process a compute phase was dispatched to exits without replying
    (killed, segfaulted, machine-level fault).  The task's inputs and the
    scheduler's bookkeeping live in the parent and are unaffected, so
    this is a *detected compute-phase fault* whose source is the task
    itself: the FT scheduler routes it through RECOVERTASKONCE and
    re-executes on a fresh worker.
    """

    def __init__(self, key: Hashable, pid: int | None = None, exitcode: int | None = None) -> None:
        super().__init__(
            f"compute worker died while executing task {key!r} "
            f"(pid={pid}, exitcode={exitcode})"
        )
        self.key = key
        self.pid = pid
        self.exitcode = exitcode

    def __reduce__(self):
        return (type(self), (self.key, self.pid, self.exitcode))


class OverwrittenError(FaultError):
    """A required block version was overwritten by a later version.

    Raised under memory reuse when recovery (or a raced successor) asks for
    a version that is no longer resident.  ``resident`` is the version the
    buffer currently holds (or ``None`` if the block was never written).
    """

    def __init__(self, block: Hashable, version: int, resident: int | None, producer: Any = None) -> None:
        super().__init__(
            f"block version overwritten: block={block!r} wanted v{version}, "
            f"resident={'v%d' % resident if resident is not None else 'nothing'}"
        )
        self.block = block
        self.version = version
        self.resident = resident
        self.producer = producer

    def __reduce__(self):
        return (type(self), (self.block, self.version, self.resident, self.producer))
