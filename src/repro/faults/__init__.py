"""Fault injection: the paper's Section VI.B methodology as a library.

Workflow::

    from repro.faults import VersionIndex, plan_faults, FaultInjector

    index = VersionIndex(spec)
    plan = plan_faults(spec, phase="after_compute", task_type="v=rand",
                       count=512, seed=7, index=index)
    store = BlockStore(Reuse())
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace)
    result = FTScheduler(spec, runtime, store=store, hooks=injector,
                         trace=trace).run()
    print(result.trace.reexecutions, "vs implied", plan.implied_reexecutions)
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultEvent,
    FaultPhase,
    FaultPlan,
    plan_from_dict,
    plan_to_dict,
)
from repro.faults.planner import plan_faults, plan_recursive_faults, resolve_target
from repro.faults.random_injector import RandomInjector
from repro.faults.selectors import (
    TASK_TYPES,
    V0,
    VLAST,
    VRAND,
    VersionIndex,
    normalize_task_type,
    sample_victims,
)

__all__ = [
    "FaultEvent",
    "FaultPhase",
    "FaultPlan",
    "FaultInjector",
    "RandomInjector",
    "plan_to_dict",
    "plan_from_dict",
    "plan_faults",
    "plan_recursive_faults",
    "resolve_target",
    "VersionIndex",
    "normalize_task_type",
    "sample_victims",
    "TASK_TYPES",
    "V0",
    "VLAST",
    "VRAND",
]
