"""Run-time fault injector: fires planned faults at scheduler hook points.

Mirrors the paper's methodology exactly: "to simulate faults, we a priori
identify the tasks that would fail and the point in their lifetimes where
they would fail.  When a fault is injected, a flag is set to mark the
fault, which is then observed by a thread accessing that task."

The injector implements :class:`repro.core.hooks.SchedulerHooks`.  At each
lifecycle hook it checks whether a planned event matches ``(key, phase,
life)`` and, if so, sets the record's corruption flag and (for post-
compute phases) marks the task's output block versions corrupted in the
store.  Each event fires at most once.

Thread-safe; usable on the threaded runtime.
"""

from __future__ import annotations

import threading
from typing import Hashable

from repro.core.records import TaskRecord
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.taskspec import BlockRef, TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace


class FaultInjector:
    """SchedulerHooks implementation driven by a :class:`FaultPlan`."""

    def __init__(
        self,
        plan: FaultPlan,
        spec: TaskGraphSpec,
        store: BlockStore,
        trace: ExecutionTrace | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        self.plan = plan
        self.spec = spec
        self.store = store
        self.trace = trace
        self.event_log = event_log
        """Observability log for FAULT_INJECTED events.  Left ``None``,
        the FT scheduler shares its own log at construction time, so
        injected faults land in the same stream as their recoveries."""
        self._lock = threading.Lock()
        # (key, phase) -> list of pending events ordered by life.
        self._pending: dict[tuple[Hashable, FaultPhase], list[FaultEvent]] = {}
        for event in plan:
            self._pending.setdefault((event.key, event.phase), []).append(event)
        for events in self._pending.values():
            events.sort(key=lambda e: e.life)
        self.fired: list[FaultEvent] = []

    # -- hook dispatch -----------------------------------------------------------------

    def on_task_waiting(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.BEFORE_COMPUTE)

    def on_after_compute(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_COMPUTE)

    def on_after_notify(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_NOTIFY)

    # -- internals ----------------------------------------------------------------------

    def _maybe_fire(self, record: TaskRecord, phase: FaultPhase) -> None:
        slot = (record.key, phase)
        with self._lock:
            events = self._pending.get(slot)
            if not events or events[0].life != record.life:
                return
            event = events.pop(0)
            if not events:
                del self._pending[slot]
            self.fired.append(event)
        if event.corrupt_descriptor:
            record.corrupted = True
        if event.corrupt_outputs:
            for raw in self.spec.outputs(record.key):
                self.store.mark_corrupted(BlockRef(*raw))
        if self.trace is not None:
            self.trace.count_fault_injected()
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                EventKind.FAULT_INJECTED, record.key, record.life, phase=phase.value
            )

    # -- verification -----------------------------------------------------------------------

    @property
    def unfired(self) -> list[FaultEvent]:
        """Planned events that never fired (e.g. after-notify faults whose
        task was never revisited cannot *observe* anything, but fire they
        must -- an unfired event means the lifecycle point was not reached,
        which for life=1 plans indicates a planner/scheduler mismatch)."""
        with self._lock:
            return [e for events in self._pending.values() for e in events]

    def all_fired(self) -> bool:
        return not self.unfired
