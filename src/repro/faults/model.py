"""Fault model: phases, events, and plans (Section VI.B).

The paper injects faults *a priori*: before the run, a set of victim
tasks is chosen together with the point in each task's lifetime where the
fault will fire.  A fault affects both the task descriptor and the data
blocks the task has computed.  At run time the injector merely sets
corruption flags; detection happens at the next access.

Three lifetime phases (the paper's taxonomy):

* ``BEFORE_COMPUTE`` -- the task has traversed its predecessors and is
  waiting for notifications; no compute work has been done, so recovery
  loses nothing.
* ``AFTER_COMPUTE`` -- COMPUTE finished but successors are not yet
  notified; the computed work is lost and must be redone.
* ``AFTER_NOTIFY`` -- the task has notified all enqueued successors; the
  fault is observed only if some later consumer touches the task or its
  data, and may cascade through overwritten block versions.

``implied_reexecutions`` is the paper's sizing model: a failure on a task
producing version ``v`` of a block "implies" re-execution of the
producers of versions ``0..v`` of that block (``v + 1`` tasks); a
before-compute failure implies only the victim's own (first) execution.
Table II exists precisely because *actual* re-execution counts deviate
from this model at after-notify time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence


class FaultPhase(enum.Enum):
    BEFORE_COMPUTE = "before_compute"
    AFTER_COMPUTE = "after_compute"
    AFTER_NOTIFY = "after_notify"

    @classmethod
    def from_name(cls, name: "str | FaultPhase") -> "FaultPhase":
        if isinstance(name, FaultPhase):
            return name
        try:
            return cls(name.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown fault phase {name!r}; expected one of "
                f"{[p.value for p in cls]}"
            ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: task ``key`` fails at ``phase`` during incarnation
    ``life`` (1 = the original execution, >1 targets recovery itself --
    the Guarantee 6 scenario)."""

    key: Hashable
    phase: FaultPhase
    life: int = 1
    corrupt_descriptor: bool = True
    corrupt_outputs: bool = True
    """Whether the fault also corrupts the task's computed data blocks
    (meaningless for BEFORE_COMPUTE, where nothing was computed)."""

    def __post_init__(self) -> None:
        if self.life < 1:
            raise ValueError("life numbers start at 1")
        if not (self.corrupt_descriptor or self.corrupt_outputs):
            raise ValueError("a fault must corrupt something")


@dataclass
class FaultPlan:
    """An ordered collection of fault events plus its sizing metadata."""

    events: list[FaultEvent] = field(default_factory=list)
    implied_reexecutions: int = 0
    """Paper-model total re-executions this plan is sized to cause."""

    task_type: str = "v=rand"
    """Victim classification used to build the plan (v=0 / v=rand / v=last)."""

    def __post_init__(self) -> None:
        # Two events with the same (key, phase, life) can never both fire:
        # the injector pops the first match and the second then heads the
        # pending list with a life number the record will never carry
        # again.  Silently ordering by life used to hide this; reject it.
        seen: set[tuple] = set()
        for e in self.events:
            sig = (e.key, e.phase, e.life)
            if sig in seen:
                raise ValueError(
                    f"duplicate fault event for key={e.key!r} "
                    f"phase={e.phase.value} life={e.life}; at most one "
                    "event may target a given (key, phase, life)"
                )
            seen.add(sig)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def keys(self) -> Sequence[Hashable]:
        return [e.key for e in self.events]

    @staticmethod
    def single(key: Hashable, phase: "str | FaultPhase", life: int = 1) -> "FaultPlan":
        """Convenience: a plan with one fault."""
        return FaultPlan(
            events=[FaultEvent(key, FaultPhase.from_name(phase), life)],
            implied_reexecutions=1,
        )


# -- plan (de)serialization ----------------------------------------------------


def plan_to_dict(plan: "FaultPlan") -> dict:
    """JSON-safe form of a plan (keys via the graph-io encoding)."""
    from repro.graph.io import _encode_key

    return {
        "task_type": plan.task_type,
        "implied_reexecutions": plan.implied_reexecutions,
        "events": [
            {
                "key": _encode_key(e.key),
                "phase": e.phase.value,
                "life": e.life,
                "corrupt_descriptor": e.corrupt_descriptor,
                "corrupt_outputs": e.corrupt_outputs,
            }
            for e in plan.events
        ],
    }


def plan_from_dict(data: dict) -> "FaultPlan":
    """Inverse of :func:`plan_to_dict`."""
    from repro.graph.io import _decode_key

    events = [
        FaultEvent(
            key=_decode_key(e["key"]),
            phase=FaultPhase.from_name(e["phase"]),
            life=int(e.get("life", 1)),
            corrupt_descriptor=bool(e.get("corrupt_descriptor", True)),
            corrupt_outputs=bool(e.get("corrupt_outputs", True)),
        )
        for e in data["events"]
    ]
    return FaultPlan(
        events=events,
        implied_reexecutions=int(data.get("implied_reexecutions", len(events))),
        task_type=data.get("task_type", "v=rand"),
    )
