"""Fault planning: turn an experiment description into a concrete plan.

The harness asks for faults in the paper's terms -- "inject failures on
v=rand tasks at after-compute time so that 512 tasks (or 2% / 5% of the
graph) get re-executed" -- and this module picks the victim set.

Victims are sampled uniformly from the requested type pool until the
paper's implied-re-execution model reaches the target.  The implied count,
not the victim count, is what the paper holds constant across task types:
a v=last plan needs far fewer victims than a v=0 plan for the same
target, because each v=last failure implies a whole version chain.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.faults.selectors import VersionIndex, normalize_task_type, sample_victims
from repro.graph.taskspec import TaskGraphSpec


def resolve_target(index: VersionIndex, count: int | None = None, fraction: float | None = None) -> int:
    """Target implied re-executions: an absolute count or a fraction of
    the total task count (the paper's "2%"/"5%" scenarios)."""
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count= or fraction=")
    if count is not None:
        if count < 1:
            raise ValueError("count must be >= 1")
        return int(count)
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    return max(1, round(fraction * len(index.tasks)))


def plan_faults(
    spec: TaskGraphSpec,
    phase: str | FaultPhase,
    task_type: str = "v=rand",
    count: int | None = None,
    fraction: float | None = None,
    seed: int = 0,
    index: VersionIndex | None = None,
    policy_keep: int | None | str = "auto",
) -> FaultPlan:
    """Build a :class:`FaultPlan` for one injection scenario.

    Parameters mirror the paper's experiment grid: ``phase`` is the
    lifetime point, ``task_type`` the version classification
    (v=0 / v=rand / v=last), and ``count``/``fraction`` the intended
    amount of re-executed work.  ``policy_keep`` feeds the sizing model
    (see :meth:`VersionIndex.implied_reexecutions`); ``"auto"`` reads the
    spec's fault-tolerant memory policy when it has one.  The plan's
    ``implied_reexecutions`` records the achieved total (>= target; the
    last victim may overshoot).
    """
    phase = FaultPhase.from_name(phase)
    task_type = normalize_task_type(task_type)
    index = index or VersionIndex(spec)
    rng = random.Random(seed)
    target = resolve_target(index, count=count, fraction=fraction)
    if policy_keep == "auto":
        policy = getattr(spec, "ft_policy", None)
        policy_keep = policy.keep if policy is not None else None
    # Before-compute faults lose no computed work; sources never wait, so
    # they are excluded from that pool.
    lost_work = phase is not FaultPhase.BEFORE_COMPUTE
    pool = index.pool(task_type, exclude_sink=True,
                      exclude_sources=phase is FaultPhase.BEFORE_COMPUTE)
    if not pool:
        raise ValueError(f"no {task_type} victims available for phase {phase.value}")
    victims = sample_victims(pool, rng)
    events: list[FaultEvent] = []
    implied = 0
    for key in victims:
        if implied >= target:
            break
        events.append(
            FaultEvent(
                key,
                phase,
                corrupt_outputs=lost_work,
            )
        )
        implied += index.implied_reexecutions(key, phase, policy_keep)
    if implied < target:
        raise ValueError(
            f"pool exhausted: {task_type}/{phase.value} can imply at most "
            f"{implied} re-executions, target was {target}"
        )
    return FaultPlan(events=events, implied_reexecutions=implied, task_type=task_type)


def plan_recursive_faults(
    spec: TaskGraphSpec,
    key: Hashable,
    phase: str | FaultPhase = "after_compute",
    depth: int = 3,
) -> FaultPlan:
    """Guarantee 6 stressor: the same task fails at every incarnation
    ``1..depth``, so recovery itself keeps failing and must restart."""
    phase = FaultPhase.from_name(phase)
    events = [FaultEvent(key, phase, life=life) for life in range(1, depth + 1)]
    return FaultPlan(events=events, implied_reexecutions=depth, task_type="recursive")
