"""Online probabilistic fault injection.

The paper's methodology plans faults a priori (controlled experiments);
real soft errors arrive as a rate.  :class:`RandomInjector` models that:
at every lifecycle hook each task independently suffers a fault with a
per-phase probability, for any incarnation (so recovery itself can be
struck, repeatedly -- the Guarantee 6 regime under load).

Determinism: victim selection derives from a seeded hash of
``(key, life, phase)``, so a given seed produces the same fault pattern
regardless of schedule -- runs remain reproducible and the injector is
safe under the threaded runtime.

An optional ``max_faults`` cap keeps expected recovery work finite when
rates are high (an unbounded rate on an unbounded incarnation stream
could otherwise re-kill a task forever).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Hashable

from repro.core.records import TaskRecord
from repro.faults.model import FaultPhase
from repro.graph.taskspec import BlockRef, TaskGraphSpec
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace


def _phase_rates(
    rate: float | None,
    before_compute: float | None,
    after_compute: float | None,
    after_notify: float | None,
) -> dict[FaultPhase, float]:
    base = 0.0 if rate is None else float(rate)
    rates = {
        FaultPhase.BEFORE_COMPUTE: base if before_compute is None else before_compute,
        FaultPhase.AFTER_COMPUTE: base if after_compute is None else after_compute,
        FaultPhase.AFTER_NOTIFY: base if after_notify is None else after_notify,
    }
    for phase, p in rates.items():
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{phase.value} rate {p} outside [0, 1]")
    return rates


class RandomInjector:
    """SchedulerHooks implementation firing faults at a fixed rate."""

    def __init__(
        self,
        spec: TaskGraphSpec,
        store: BlockStore,
        seed: int = 0,
        rate: float | None = None,
        before_compute: float | None = None,
        after_compute: float | None = None,
        after_notify: float | None = None,
        max_faults: int | None = None,
        trace: ExecutionTrace | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.seed = seed
        self.rates = _phase_rates(rate, before_compute, after_compute, after_notify)
        self.max_faults = max_faults
        self.trace = trace
        self.event_log = event_log
        """Observability log for FAULT_INJECTED events (shared by the FT
        scheduler at construction time when left ``None``)."""
        self.fired: list[tuple[Hashable, int, FaultPhase]] = []
        self._lock = threading.Lock()

    # -- deterministic coin flip -------------------------------------------------------

    def _roll(self, key: Hashable, life: int, phase: FaultPhase) -> bool:
        p = self.rates[phase]
        if p <= 0.0:
            return False
        digest = hashlib.blake2b(
            repr((self.seed, key, life, phase.value)).encode(),
            digest_size=8,
        ).digest()
        u = int.from_bytes(digest, "big") / float(1 << 64)
        return u < p

    def _maybe_fire(self, record: TaskRecord, phase: FaultPhase) -> None:
        if not self._roll(record.key, record.life, phase):
            return
        with self._lock:
            if self.max_faults is not None and len(self.fired) >= self.max_faults:
                return
            self.fired.append((record.key, record.life, phase))
        record.corrupted = True
        if phase is not FaultPhase.BEFORE_COMPUTE:
            for raw in self.spec.outputs(record.key):
                self.store.mark_corrupted(BlockRef(*raw))
        if self.trace is not None:
            self.trace.count_fault_injected()
        if self.event_log is not None and self.event_log.enabled:
            self.event_log.emit(
                EventKind.FAULT_INJECTED, record.key, record.life, phase=phase.value
            )

    # -- hook surface ----------------------------------------------------------------------

    def on_task_waiting(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.BEFORE_COMPUTE)

    def on_after_compute(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_COMPUTE)

    def on_after_notify(self, record: TaskRecord) -> None:
        self._maybe_fire(record, FaultPhase.AFTER_NOTIFY)
