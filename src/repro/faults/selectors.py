"""Victim-task classification by data-block version (Section VI.B).

The paper distinguishes faults by the *version* of the data block the
victim produces:

* ``v=0`` -- the task produces the **first** version of its block; its
  failure implies at most one re-execution;
* ``v=last`` -- the task produces the **last** version; under memory
  reuse its recovery can cascade through the producers of every earlier
  version of the block;
* ``v=rand`` -- a task producing a uniformly random version.

:class:`VersionIndex` materializes the block/version structure of a spec
once (primary output per task, last version per block) and answers the
classification queries the fault planner needs.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.graph.analysis import collect_tasks
from repro.graph.taskspec import BlockRef, TaskGraphSpec

TaskType = str

V0: TaskType = "v=0"
VLAST: TaskType = "v=last"
VRAND: TaskType = "v=rand"
TASK_TYPES: tuple[TaskType, ...] = (V0, VLAST, VRAND)


def normalize_task_type(name: str) -> TaskType:
    key = name.strip().lower().replace(" ", "")
    aliases = {
        "v=0": V0,
        "v0": V0,
        "first": V0,
        "v=last": VLAST,
        "vlast": VLAST,
        "last": VLAST,
        "v=rand": VRAND,
        "vrand": VRAND,
        "rand": VRAND,
        "random": VRAND,
    }
    if key not in aliases:
        raise ValueError(f"unknown task type {name!r}; expected one of {TASK_TYPES}")
    return aliases[key]


class VersionIndex:
    """Block/version structure of one task graph, built in a single pass."""

    def __init__(self, spec: TaskGraphSpec) -> None:
        self.spec = spec
        self._primary: dict[Hashable, BlockRef] = {}
        self._last_version: dict[Hashable, int] = {}
        self._first_version: dict[Hashable, int] = {}
        self._n_preds: dict[Hashable, int] = {}
        tasks = collect_tasks(spec)
        self.sink = spec.sink_key()
        self.tasks: tuple[Hashable, ...] = tuple(tasks)
        for key in tasks:
            outs = tuple(spec.outputs(key))
            if not outs:
                raise ValueError(f"task {key!r} declares no outputs")
            primary = BlockRef(*outs[0])
            self._primary[key] = primary
            for raw in outs:
                ref = BlockRef(*raw)
                if ref.version > self._last_version.get(ref.block, -1):
                    self._last_version[ref.block] = ref.version
                # First *task-produced* version: pre-seeded (pinned) input
                # versions below it are resilient and never re-executed.
                if ref.version < self._first_version.get(ref.block, 1 << 62):
                    self._first_version[ref.block] = ref.version
            self._n_preds[key] = len(tuple(spec.predecessors(key)))

    # -- queries -------------------------------------------------------------------

    def primary_output(self, key: Hashable) -> BlockRef:
        """The first declared output: the block/version the paper's
        classification keys on."""
        return self._primary[key]

    def version_of(self, key: Hashable) -> int:
        return self._primary[key].version

    def last_version(self, block: Hashable) -> int:
        return self._last_version[block]

    def first_version(self, block: Hashable) -> int:
        """Lowest *task-produced* version of ``block`` (versions below it
        are pre-seeded resilient inputs)."""
        return self._first_version[block]

    def is_v0(self, key: Hashable) -> bool:
        ref = self._primary[key]
        return ref.version == self._first_version[ref.block]

    def is_vlast(self, key: Hashable) -> bool:
        ref = self._primary[key]
        return ref.version == self._last_version[ref.block]

    def n_preds(self, key: Hashable) -> int:
        return self._n_preds[key]

    def self_chained(self, key: Hashable) -> bool:
        """True iff the task consumes the previous version of its own
        primary output block (LU/Cholesky/FW-style in-place updates).

        Such a task destroys its own input by writing: under a
        single-buffer (``keep=1``) policy, even an *immediately detected*
        failure must replay the block's whole version chain to restore
        the input.
        """
        ref = self._primary[key]
        prev = BlockRef(ref.block, ref.version - 1)
        return any(BlockRef(*raw) == prev for raw in self.spec.inputs(key))

    def chain_length(self, key: Hashable) -> int:
        """Task-produced version chain ending at this task's primary
        output: ``v - first + 1`` ("all of the tasks that produce the
        previous versions of a particular data block")."""
        ref = self._primary[key]
        return ref.version - self._first_version[ref.block] + 1

    def implied_reexecutions(
        self,
        key: Hashable,
        phase: "FaultPhase | str",
        policy_keep: int | None = None,
    ) -> int:
        """Sizing model for one victim, per phase and memory policy.

        * ``before_compute`` -- no computed work lost: 1 (the victim's
          processing restarts).
        * ``after_compute`` -- detection is immediate; the victim re-runs.
          If it overwrote its own input (``self_chained``) and the policy
          retains a single version, restoring that input replays the whole
          version chain.
        * ``after_notify`` -- detection is delayed until a later consumer;
          the chain model applies whenever reuse can evict needed versions
          (any bounded ``keep``).
        """
        from repro.faults.model import FaultPhase  # local: avoid cycle

        phase = FaultPhase.from_name(phase)
        if phase is FaultPhase.BEFORE_COMPUTE:
            return 1
        if policy_keep is None:  # single assignment: nothing is ever evicted
            return 1
        if phase is FaultPhase.AFTER_COMPUTE:
            if policy_keep == 1 and self.self_chained(key):
                return self.chain_length(key)
            return 1
        return self.chain_length(key)

    # -- victim pools ----------------------------------------------------------------

    def pool(
        self,
        task_type: TaskType,
        exclude_sink: bool = True,
        exclude_sources: bool = False,
    ) -> list[Hashable]:
        """All tasks matching ``task_type`` (deterministic order)."""
        task_type = normalize_task_type(task_type)
        out = []
        for key in self.tasks:
            if exclude_sink and key == self.sink:
                continue
            if exclude_sources and self._n_preds[key] == 0:
                continue
            if task_type == V0 and not self.is_v0(key):
                continue
            if task_type == VLAST and not self.is_vlast(key):
                continue
            out.append(key)
        return out

    def type_counts(self) -> dict[TaskType, int]:
        """Population sizes of the three pools (the paper notes v=0 and
        v=last pools are below 5% of tasks for most benchmarks)."""
        return {t: len(self.pool(t)) for t in TASK_TYPES}


def sample_victims(
    pool: Sequence[Hashable],
    rng: random.Random,
    count: int | None = None,
) -> list[Hashable]:
    """Uniform sample without replacement (whole shuffled pool if count is
    None or exceeds the pool)."""
    items = list(pool)
    rng.shuffle(items)
    if count is None or count >= len(items):
        return items
    return items[:count]
