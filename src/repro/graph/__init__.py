"""Task-graph model: specifications, explicit graphs, validation, analytics.

A *task graph* is a DAG whose vertices are tasks and whose edges point from
a producer task to each consumer that uses one of its outputs.  Following
the paper (Section III), a graph is described to the scheduler through a
:class:`~repro.graph.taskspec.TaskGraphSpec`: a unique *key* per task, a
distinguished *sink* task that transitively depends on everything, ordered
``predecessors``/``successors`` functions, and a ``compute`` callback.

The graph is *dynamic*: the scheduler discovers vertices lazily by walking
predecessor lists backward from the sink, so a spec never needs to
materialize the full vertex set up front.  The helpers in
:mod:`repro.graph.analysis` do materialize it (breadth-first from the sink)
for structure analytics such as Table I of the paper.
"""

from repro.graph.taskspec import BlockRef, ComputeContext, TaskGraphSpec, TaskSpecBase
from repro.graph.explicit import ExplicitTaskGraph
from repro.graph.validate import GraphValidationError, validate_spec
from repro.graph.analysis import (
    GraphStats,
    collect_tasks,
    critical_path_length,
    graph_stats,
    topological_order,
    work_and_span,
)
from repro.graph.io import load_graph, save_graph, spec_from_dict, spec_to_dict
from repro.graph.builders import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    grid_graph,
    random_dag,
)

__all__ = [
    "BlockRef",
    "ComputeContext",
    "TaskGraphSpec",
    "TaskSpecBase",
    "ExplicitTaskGraph",
    "GraphValidationError",
    "validate_spec",
    "GraphStats",
    "collect_tasks",
    "critical_path_length",
    "graph_stats",
    "topological_order",
    "work_and_span",
    "load_graph",
    "save_graph",
    "spec_from_dict",
    "spec_to_dict",
    "chain_graph",
    "diamond_graph",
    "fork_join_graph",
    "grid_graph",
    "random_dag",
]
