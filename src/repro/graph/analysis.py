"""Graph analytics: Table I structure counts and work/span accounting.

``graph_stats`` computes, for any spec, the quantities reported in the
paper's Table I -- total number of tasks ``T``, total number of dependence
edges ``E``, and critical path length ``S`` (edge count of the longest
root-to-sink path) -- plus degree statistics used by the Theorem 2 bound.

``work_and_span`` computes the Section V quantities

.. math::

   T_1 = \\sum_A N(A)\\,(W(\\mathrm{com}(A)) + |out(A)|), \\qquad
   T_\\infty = \\max_{p \\in paths} \\sum_{X \\in p} N(X)\\,S(\\mathrm{com}(X))

where ``N`` is the per-task execution count (all ones for fault-free runs)
and per-task work/span default to the spec's virtual ``cost``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.graph.taskspec import Key, TaskGraphSpec


def collect_tasks(spec: TaskGraphSpec) -> list[Key]:
    """All tasks reachable backward from the sink, in BFS discovery order."""
    sink = spec.sink_key()
    seen = {sink}
    order = [sink]
    frontier = deque([sink])
    while frontier:
        key = frontier.popleft()
        for p in spec.predecessors(key):
            if p not in seen:
                seen.add(p)
                order.append(p)
                frontier.append(p)
    return order


def topological_order(spec: TaskGraphSpec) -> list[Key]:
    """Tasks in an order where every predecessor precedes its consumers."""
    tasks = collect_tasks(spec)
    indeg = {k: len(tuple(spec.predecessors(k))) for k in tasks}
    task_set = set(tasks)
    ready = deque(k for k in tasks if indeg[k] == 0)
    out: list[Key] = []
    while ready:
        k = ready.popleft()
        out.append(k)
        for s in spec.successors(k):
            if s in task_set:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
    if len(out) != len(tasks):
        raise ValueError("graph is cyclic; run validate_spec for details")
    return out


def critical_path_length(
    spec: TaskGraphSpec,
    weight: Callable[[Key], float] | None = None,
) -> float:
    """Longest path through the graph.

    With ``weight=None`` this is the Table I quantity ``S``: the number of
    *edges* on the longest path (each task counted as unit length, minus
    one).  With a weight function it returns the weighted longest path
    (sum of task weights along the heaviest chain), i.e. the span.
    """
    order = topological_order(spec)
    task_set = set(order)
    if weight is None:
        dist = {k: 0.0 for k in order}
        for k in order:
            for s in spec.successors(k):
                if s in task_set and dist[k] + 1 > dist[s]:
                    dist[s] = dist[k] + 1
        return max(dist.values())
    dist = {k: float(weight(k)) for k in order}
    for k in order:
        for s in spec.successors(k):
            if s in task_set:
                cand = dist[k] + float(weight(s))
                if cand > dist[s]:
                    dist[s] = cand
    return max(dist.values())


@dataclass(frozen=True)
class GraphStats:
    """Structure summary of a task graph (Table I row + degree info)."""

    tasks: int
    edges: int
    critical_path: int
    """Edge count of the longest path (paper's ``S``)."""
    max_in_degree: int
    max_out_degree: int
    sources: int
    total_cost: float
    span_cost: float

    @property
    def max_degree(self) -> int:
        """The paper's ``d``: max over tasks of in-degree + out-degree."""
        return self.max_in_degree + self.max_out_degree

    @property
    def average_parallelism(self) -> float:
        """``T1 / T_inf`` in virtual cost units."""
        return self.total_cost / self.span_cost if self.span_cost else float("inf")


def graph_stats(spec: TaskGraphSpec) -> GraphStats:
    """Compute :class:`GraphStats` for the reachable-from-sink subgraph.

    Single pass over the adjacency: each task's predecessor list is
    evaluated exactly once (app specs may compute lists on the fly, so at
    Table I scale -- hundreds of thousands of tasks -- repeated evaluation
    dominates; this formulation keeps the bench tractable).
    """
    # Backward walk from the sink, materializing predecessor lists once.
    sink = spec.sink_key()
    preds_of: dict[Key, tuple[Key, ...]] = {}
    frontier = deque([sink])
    seen = {sink}
    while frontier:
        k = frontier.popleft()
        ps = tuple(spec.predecessors(k))
        preds_of[k] = ps
        for p in ps:
            if p not in seen:
                seen.add(p)
                frontier.append(p)
    # Kahn sweep over the materialized adjacency, accumulating everything.
    consumers: dict[Key, list[Key]] = {k: [] for k in preds_of}
    indeg: dict[Key, int] = {}
    out_deg: dict[Key, int] = {k: 0 for k in preds_of}
    for k, ps in preds_of.items():
        indeg[k] = len(ps)
        for p in ps:
            consumers[p].append(k)
            out_deg[p] += 1
    edges = sum(indeg.values())
    max_in = max(indeg.values(), default=0)
    max_out = max(out_deg.values(), default=0)
    total_cost = 0.0
    sources = 0
    dist: dict[Key, int] = {}
    cdist: dict[Key, float] = {}
    ready = deque(k for k, d in indeg.items() if d == 0)
    remaining = dict(indeg)
    processed = 0
    while ready:
        k = ready.popleft()
        processed += 1
        c = float(spec.cost(k))
        total_cost += c
        ps = preds_of[k]
        if not ps:
            sources += 1
            dist[k] = 0
            cdist[k] = c
        else:
            dist[k] = max(dist[p] for p in ps) + 1
            cdist[k] = max(cdist[p] for p in ps) + c
        for s in consumers[k]:
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)
    if processed != len(preds_of):
        raise ValueError("graph is cyclic; run validate_spec for details")
    return GraphStats(
        tasks=len(preds_of),
        edges=edges,
        critical_path=max(dist.values()),
        max_in_degree=max_in,
        max_out_degree=max_out,
        sources=sources,
        total_cost=total_cost,
        span_cost=max(cdist.values()),
    )


def work_and_span(
    spec: TaskGraphSpec,
    executions: Mapping[Key, int] | None = None,
) -> tuple[float, float]:
    """Section V's ``(T1, T_inf)`` for an execution with counts ``N``.

    ``executions`` maps task key -> N(A); missing keys default to 1 (the
    fault-free case).  ``T1`` charges each execution its compute cost plus
    ``|out(A)|`` notification work; ``T_inf`` is the heaviest path where
    each task on the path contributes ``N(X) * cost(X)`` (re-executions of
    one task are serial -- they cannot overlap with themselves).
    """
    n = executions or {}
    order = topological_order(spec)
    task_set = set(order)
    t1 = 0.0
    dist: dict[Key, float] = {}
    for k in order:
        count = int(n.get(k, 1))
        succs = [s for s in spec.successors(k) if s in task_set]
        c = float(spec.cost(k))
        t1 += count * (c + len(succs))
        here = count * c
        preds = [p for p in spec.predecessors(k) if p in task_set]
        dist[k] = here + (max(dist[p] for p in preds) if preds else 0.0)
    return t1, max(dist.values())
