"""Synthetic task-graph builders for tests, examples, and property suites.

These produce :class:`~repro.graph.explicit.ExplicitTaskGraph` instances
with the deterministic tuple-building default compute body, so any two
correct executions yield identical block contents.
"""

from __future__ import annotations

import random
from typing import Any

from repro.graph.explicit import ExplicitTaskGraph


def chain_graph(n: int, **kwargs: Any) -> ExplicitTaskGraph:
    """A linear chain ``0 -> 1 -> ... -> n-1`` (critical path = work)."""
    if n < 1:
        raise ValueError("chain needs at least one task")
    if n == 1:
        return ExplicitTaskGraph([], sink=0, vertices=[0], **kwargs)
    return ExplicitTaskGraph([(i, i + 1) for i in range(n - 1)], **kwargs)


def diamond_graph(width: int = 2, **kwargs: Any) -> ExplicitTaskGraph:
    """The paper's Figure 1 shape: one source fanning out to ``width``
    middle tasks that all feed one sink."""
    if width < 1:
        raise ValueError("diamond needs width >= 1")
    edges = [("src", ("mid", i)) for i in range(width)]
    edges += [(("mid", i), "sink") for i in range(width)]
    return ExplicitTaskGraph(edges, **kwargs)


def fork_join_graph(levels: int, fanout: int, **kwargs: Any) -> ExplicitTaskGraph:
    """Alternating fork/join stages: ``levels`` forks of ``fanout`` tasks,
    each followed by a join task."""
    if levels < 1 or fanout < 1:
        raise ValueError("levels and fanout must be >= 1")
    edges: list[tuple[Any, Any]] = []
    prev_join = ("join", -1)
    for lvl in range(levels):
        for f in range(fanout):
            edges.append((prev_join, ("work", lvl, f)))
            edges.append((("work", lvl, f), ("join", lvl)))
        prev_join = ("join", lvl)
    return ExplicitTaskGraph(edges, **kwargs)


def grid_graph(rows: int, cols: int, diagonal: bool = True, **kwargs: Any) -> ExplicitTaskGraph:
    """2-D wavefront grid (the LCS/SW dependence shape).

    Task ``(i, j)`` depends on its up/left (and optionally up-left)
    neighbours; ``(rows-1, cols-1)`` is the sink.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i > 0:
                edges.append(((i - 1, j), (i, j)))
            if j > 0:
                edges.append(((i, j - 1), (i, j)))
            if diagonal and i > 0 and j > 0:
                edges.append(((i - 1, j - 1), (i, j)))
    if rows == cols == 1:
        return ExplicitTaskGraph([], sink=(0, 0), vertices=[(0, 0)], **kwargs)
    return ExplicitTaskGraph(edges, sink=(rows - 1, cols - 1), **kwargs)


def random_dag(
    n: int,
    edge_prob: float = 0.2,
    seed: int | None = None,
    max_in_degree: int | None = None,
    **kwargs: Any,
) -> ExplicitTaskGraph:
    """A random layered DAG over ``n`` tasks with a virtual sink.

    Vertices are ``0..n-1`` in topological order; each ordered pair
    ``(i, j)``, ``i < j``, becomes an edge with probability ``edge_prob``
    (subject to ``max_in_degree``).  Every natural sink is attached to a
    fresh virtual sink so the spec satisfies the unique-sink assumption.
    """
    if n < 1:
        raise ValueError("need at least one task")
    rng = random.Random(seed)
    edges: list[tuple[Any, Any]] = []
    indeg = [0] * n
    outdeg = [0] * n
    for j in range(1, n):
        for i in range(j):
            if max_in_degree is not None and indeg[j] >= max_in_degree:
                break
            if rng.random() < edge_prob:
                edges.append((i, j))
                indeg[j] += 1
                outdeg[i] += 1
    # Attach every natural sink (including isolated vertices) to one sink.
    sink = "__sink__"
    edges.extend((i, sink) for i in range(n) if outdeg[i] == 0)
    return ExplicitTaskGraph(edges, sink=sink, **kwargs)
