"""Explicit (fully materialized) task graphs.

While the scheduler only needs the lazy :class:`~repro.graph.taskspec.
TaskGraphSpec` interface, tests, examples, and the random-graph property
suite want to build graphs from concrete edge lists, adjacency dicts, or
:mod:`networkx` DAGs.  :class:`ExplicitTaskGraph` materializes predecessor
and successor lists once and serves them in deterministic order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.graph.taskspec import BlockRef, ComputeContext, Key, TaskSpecBase


def _default_compute(key: Key, ctx: ComputeContext) -> None:
    """Default task body: concatenate predecessor outputs under this key.

    This makes results *schedule-sensitive only through the graph*, so any
    two correct executions (with or without faults, any worker count) must
    produce identical block contents -- handy as a correctness oracle.
    """
    parts = [ctx.read(ref) for ref in ctx.spec.inputs(key)]  # type: ignore[attr-defined]
    ctx.write(BlockRef(key, 0), (key, tuple(parts)))


class ExplicitTaskGraph(TaskSpecBase):
    """A task graph given by explicit dependence edges.

    Parameters
    ----------
    edges:
        Iterable of ``(producer, consumer)`` pairs.
    sink:
        Sink key.  If omitted, the unique vertex with no outgoing edges is
        used; a ``ValueError`` is raised when it is not unique (the paper
        assumes a unique sink; wrap multi-sink graphs with
        :meth:`with_virtual_sink`).
    compute:
        Optional task body ``f(key, ctx)``.  Defaults to a deterministic
        tuple-building body usable as a correctness oracle.
    cost:
        Optional ``f(key) -> float`` virtual cost (default 1.0 per task).
    """

    def __init__(
        self,
        edges: Iterable[tuple[Key, Key]],
        sink: Key | None = None,
        vertices: Iterable[Key] | None = None,
        compute: Callable[[Key, ComputeContext], None] | None = None,
        cost: Callable[[Key], float] | None = None,
    ) -> None:
        preds: dict[Key, list[Key]] = {}
        succs: dict[Key, list[Key]] = {}
        for v in vertices or ():
            preds.setdefault(v, [])
            succs.setdefault(v, [])
        for src, dst in edges:
            if src == dst:
                raise ValueError(f"self-loop on {src!r}")
            preds.setdefault(src, [])
            succs.setdefault(src, [])
            preds.setdefault(dst, [])
            succs.setdefault(dst, [])
            if src in preds[dst]:
                raise ValueError(f"duplicate edge {src!r} -> {dst!r}")
            preds[dst].append(src)
            succs[src].append(dst)
        if not preds:
            raise ValueError("graph has no vertices")
        self._preds = {k: tuple(v) for k, v in preds.items()}
        self._succs = {k: tuple(v) for k, v in succs.items()}
        if sink is None:
            sinks = [k for k, out in self._succs.items() if not out]
            if len(sinks) != 1:
                raise ValueError(
                    f"expected a unique sink, found {len(sinks)}; pass sink= "
                    "explicitly or use ExplicitTaskGraph.with_virtual_sink"
                )
            sink = sinks[0]
        elif sink not in self._preds:
            raise ValueError(f"sink {sink!r} is not a vertex")
        self._sink = sink
        self._compute = compute or _default_compute
        self._cost = cost

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_predecessor_map(
        cls,
        preds: Mapping[Key, Sequence[Key]],
        sink: Key | None = None,
        **kwargs: Any,
    ) -> "ExplicitTaskGraph":
        """Build from a ``consumer -> [producers]`` mapping."""
        edges = [(p, k) for k, ps in preds.items() for p in ps]
        return cls(edges, sink=sink, vertices=preds.keys(), **kwargs)

    @classmethod
    def from_networkx(cls, graph: Any, sink: Key | None = None, **kwargs: Any) -> "ExplicitTaskGraph":
        """Build from a :class:`networkx.DiGraph` (edges point producer->consumer)."""
        return cls(list(graph.edges()), sink=sink, vertices=list(graph.nodes()), **kwargs)

    @classmethod
    def with_virtual_sink(
        cls,
        edges: Iterable[tuple[Key, Key]],
        sink_key: Key = "__sink__",
        **kwargs: Any,
    ) -> "ExplicitTaskGraph":
        """Attach a fresh sink depending on all natural sinks (paper Sec V.A)."""
        edges = list(edges)
        succs: dict[Key, int] = {}
        verts: set[Key] = set()
        for src, dst in edges:
            succs[src] = succs.get(src, 0) + 1
            verts.add(src)
            verts.add(dst)
        natural = sorted((v for v in verts if succs.get(v, 0) == 0), key=repr)
        if sink_key in verts:
            raise ValueError(f"sink key {sink_key!r} already used by a vertex")
        edges.extend((v, sink_key) for v in natural)
        return cls(edges, sink=sink_key, **kwargs)

    # -- TaskGraphSpec surface -------------------------------------------------

    def sink_key(self) -> Key:
        return self._sink

    def predecessors(self, key: Key) -> Sequence[Key]:
        return self._preds[key]

    def successors(self, key: Key) -> Sequence[Key]:
        return self._succs[key]

    def compute(self, key: Key, ctx: ComputeContext) -> None:
        self._compute(key, ctx)

    def cost(self, key: Key) -> float:
        return 1.0 if self._cost is None else float(self._cost(key))

    def producer(self, ref: BlockRef) -> Key:
        # Single-assignment: block id is the producing task's key.
        return ref.block

    # -- misc -------------------------------------------------------------------

    def vertices(self) -> tuple[Key, ...]:
        return tuple(self._preds)

    def __len__(self) -> int:
        return len(self._preds)

    def __contains__(self, key: Key) -> bool:
        return key in self._preds
