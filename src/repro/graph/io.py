"""Task-graph (de)serialization: JSON descriptors for explicit graphs.

Lets users ship graph *structure* between tools (trace capture, external
generators, test fixtures) without Python code.  Only structure and
costs travel -- compute bodies are code and must be re-attached on load
(the deterministic tuple-building default is used otherwise).

Key encoding: JSON has no tuples, so tuple keys round-trip through
``{"t": [...]}`` wrappers (recursively); strings and integers pass
through unchanged.  Other key types are rejected at save time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.graph.analysis import collect_tasks
from repro.graph.explicit import ExplicitTaskGraph
from repro.graph.taskspec import ComputeContext, Key, TaskGraphSpec

FORMAT_VERSION = 1


def _encode_key(key: Key) -> Any:
    if isinstance(key, bool) or key is None:
        raise TypeError(f"unsupported key type for serialization: {key!r}")
    if isinstance(key, (str, int)):
        return key
    if isinstance(key, tuple):
        return {"t": [_encode_key(k) for k in key]}
    raise TypeError(f"unsupported key type for serialization: {type(key).__name__}")


def _decode_key(data: Any) -> Key:
    if isinstance(data, dict):
        return tuple(_decode_key(k) for k in data["t"])
    return data


def spec_to_dict(spec: TaskGraphSpec) -> dict:
    """Materialize the reachable-from-sink structure as a JSON-safe dict."""
    tasks = collect_tasks(spec)
    return {
        "format": FORMAT_VERSION,
        "sink": _encode_key(spec.sink_key()),
        "tasks": [
            {
                "key": _encode_key(k),
                "preds": [_encode_key(p) for p in spec.predecessors(k)],
                "cost": float(spec.cost(k)),
            }
            for k in tasks
        ],
    }


def spec_from_dict(
    data: dict,
    compute: Callable[[Key, ComputeContext], None] | None = None,
) -> ExplicitTaskGraph:
    """Rebuild an :class:`ExplicitTaskGraph` from :func:`spec_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format: {data.get('format')!r}")
    sink = _decode_key(data["sink"])
    preds: dict[Key, list[Key]] = {}
    costs: dict[Key, float] = {}
    for entry in data["tasks"]:
        key = _decode_key(entry["key"])
        preds[key] = [_decode_key(p) for p in entry["preds"]]
        costs[key] = float(entry.get("cost", 1.0))
    return ExplicitTaskGraph.from_predecessor_map(
        preds, sink=sink, compute=compute, cost=lambda k: costs[k]
    )


def save_graph(spec: TaskGraphSpec, path: str | Path) -> None:
    """Write ``spec``'s structure to a JSON file."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=1))


def load_graph(
    path: str | Path,
    compute: Callable[[Key, ComputeContext], None] | None = None,
) -> ExplicitTaskGraph:
    """Read a graph structure written by :func:`save_graph`."""
    return spec_from_dict(json.loads(Path(path).read_text()), compute=compute)
