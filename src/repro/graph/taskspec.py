"""Task-graph specification protocol.

The scheduler never sees application data structures directly; it drives a
:class:`TaskGraphSpec`, which supplies the five pieces of information the
paper elicits from users (Section III):

* **Task key** -- any hashable value uniquely identifying a task.
* **Sink task** -- the task that transitively depends on all others.
* **Predecessors / successors** -- *ordered* lists keyed by task key.  The
  order of the predecessor list is load-bearing for fault tolerance: the
  per-predecessor notification bit vector (Guarantee 3) indexes into it.
* **Compute** -- the user computation, invoked with a
  :class:`ComputeContext` for versioned block I/O.

Specs additionally expose the *data-block footprint* of each task
(:meth:`TaskGraphSpec.inputs` / :meth:`TaskGraphSpec.outputs`) so that the
memory subsystem can track overwrites of reused buffers, and a virtual
:meth:`TaskGraphSpec.cost` used by the discrete-event runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, NamedTuple, Protocol, Sequence, runtime_checkable

Key = Hashable


class BlockRef(NamedTuple):
    """A reference to one *version* of a data block.

    ``block`` identifies the buffer (e.g. a tile coordinate) and ``version``
    the sequential definition number of its contents.  Under memory reuse a
    later version physically overwrites an earlier one in the same buffer;
    the block store tracks which version a buffer currently holds.
    """

    block: Hashable
    version: int


class ComputeContext(Protocol):
    """I/O interface handed to ``compute`` callbacks.

    Reads raise :class:`repro.core.exceptions.DataCorruptionError` if the
    stored version is marked corrupted, and
    :class:`repro.core.exceptions.OverwrittenError` if the requested version
    is no longer resident (reused buffer).  The fault-tolerant scheduler
    catches both and drives recovery of the producing task.
    """

    def read(self, ref: BlockRef) -> Any: ...

    def write(self, ref: BlockRef, value: Any) -> None: ...


@runtime_checkable
class TaskGraphSpec(Protocol):
    """Structural + computational description of a dynamic task graph."""

    def sink_key(self) -> Key:
        """Key of the unique task with no outgoing dependences."""
        ...

    def predecessors(self, key: Key) -> Sequence[Key]:
        """Ordered immediate predecessors of ``key`` (empty for sources)."""
        ...

    def successors(self, key: Key) -> Sequence[Key]:
        """Ordered immediate successors of ``key`` (empty for the sink)."""
        ...

    def compute(self, key: Key, ctx: ComputeContext) -> None:
        """Execute the task body, reading inputs / writing outputs via ctx."""
        ...

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        """Block versions consumed by ``key``."""
        ...

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        """Block versions produced by ``key``."""
        ...

    def cost(self, key: Key) -> float:
        """Virtual compute cost of ``key`` (arbitrary units, > 0)."""
        ...


class TaskSpecBase:
    """Convenience base supplying defaults for optional spec surface.

    Subclasses must implement ``sink_key``, ``predecessors``, ``successors``
    and ``compute``.  By default a task reads the (sole) output of each
    predecessor and produces one version-0 block named by its own key --
    i.e. single-assignment with a one-to-one task/block correspondence,
    which matches graphs that carry no explicit data-block model.
    """

    def sink_key(self) -> Key:  # pragma: no cover - abstract
        raise NotImplementedError

    def predecessors(self, key: Key) -> Sequence[Key]:  # pragma: no cover - abstract
        raise NotImplementedError

    def successors(self, key: Key) -> Sequence[Key]:  # pragma: no cover - abstract
        raise NotImplementedError

    def compute(self, key: Key, ctx: ComputeContext) -> None:  # pragma: no cover
        raise NotImplementedError

    def inputs(self, key: Key) -> Sequence[BlockRef]:
        return tuple(BlockRef(p, 0) for p in self.predecessors(key))

    def outputs(self, key: Key) -> Sequence[BlockRef]:
        return (BlockRef(key, 0),)

    def cost(self, key: Key) -> float:
        return 1.0

    # ---- derived helpers shared by all specs -------------------------------

    def producer(self, ref: BlockRef) -> Key:
        """Key of the task that produces ``ref``.

        The default matches the default ``inputs``/``outputs`` convention
        (block id == producing task's key, version 0).  Specs that
        override the block footprint MUST override ``producer`` with the
        matching O(1) inverse map -- the scheduler calls it on every
        availability check and recovery routing decision.
        """
        return ref.block

    def pred_index(self, key: Key, pkey: Key) -> int:
        """Index of ``pkey`` in ``key``'s ordered predecessor list.

        By convention (mirroring CONVERTPREDKEYTOINDEX in the paper) a
        task's *own* key maps to the extra self-notification slot at index
        ``len(predecessors)``; see the scheduler's join-counter protocol.
        """
        try:
            cache = self._pred_index_cache
        except AttributeError:
            # Lazily attached so subclasses need no cooperation.  Benign
            # under concurrency: a creation race installs one of two empty
            # dicts, an entry race computes the same value twice -- the
            # predecessor list of a key is immutable for a spec's lifetime
            # (the paper's graphs are *discovered* dynamically, never
            # rewired), so every write is idempotent.
            cache = self._pred_index_cache = {}
        index = cache.get(key)
        if index is None:
            preds = self.predecessors(key)
            index = {}
            for i, p in enumerate(preds):
                if p not in index:  # first occurrence wins, as the scan did
                    index[p] = i
            index[key] = len(preds)  # self-notification slot
            cache[key] = index
        try:
            return index[pkey]
        except KeyError:
            raise KeyError(f"{pkey!r} is not a predecessor of {key!r}") from None

    def walk_from_sink(self) -> Iterator[Key]:
        """Yield every task reachable backward from the sink (BFS order)."""
        from collections import deque

        seen = {self.sink_key()}
        frontier = deque(seen)
        while frontier:
            key = frontier.popleft()
            yield key
            for p in self.predecessors(key):
                if p not in seen:
                    seen.add(p)
                    frontier.append(p)


class CallableSpec(TaskSpecBase):
    """Adapter building a spec from plain callables.

    Useful for quick experimentation::

        spec = CallableSpec(
            sink="c",
            preds=lambda k: {"c": ["a", "b"]}.get(k, []),
            succs=lambda k: {"a": ["c"], "b": ["c"]}.get(k, []),
            compute=lambda k, ctx: ctx.write(BlockRef(k, 0), k.upper()),
        )
    """

    def __init__(
        self,
        sink: Key,
        preds: Callable[[Key], Sequence[Key]],
        succs: Callable[[Key], Sequence[Key]],
        compute: Callable[[Key, ComputeContext], None],
        cost: Callable[[Key], float] | None = None,
    ) -> None:
        self._sink = sink
        self._preds = preds
        self._succs = succs
        self._compute = compute
        self._cost = cost

    def sink_key(self) -> Key:
        return self._sink

    def predecessors(self, key: Key) -> Sequence[Key]:
        return tuple(self._preds(key))

    def successors(self, key: Key) -> Sequence[Key]:
        return tuple(self._succs(key))

    def compute(self, key: Key, ctx: ComputeContext) -> None:
        self._compute(key, ctx)

    def cost(self, key: Key) -> float:
        return 1.0 if self._cost is None else float(self._cost(key))
