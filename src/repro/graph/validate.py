"""Structural validation of task-graph specifications.

The fault-tolerant scheduler's guarantees rest on structural assumptions
stated in the paper: the graph is acyclic, the sink transitively depends on
every task, and the ``predecessors``/``successors`` functions are mutually
consistent (``p in preds(k)`` iff ``k in succs(p)``).  ``validate_spec``
checks all of these on the reachable-from-sink subgraph and reports the
first violation with enough context to debug an application spec.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.graph.taskspec import Key, TaskGraphSpec


class GraphValidationError(ValueError):
    """Raised when a spec violates a structural assumption of the scheduler."""


def _check_unique(label: str, key: Key, items: Sequence[Key]) -> None:
    if len(set(items)) != len(items):
        raise GraphValidationError(f"duplicate entries in {label} list of {key!r}: {items!r}")


def validate_spec(spec: TaskGraphSpec, max_tasks: int | None = None) -> int:
    """Validate ``spec`` and return the number of reachable tasks.

    Checks, on the subgraph reachable backward from the sink:

    * predecessor and successor lists contain no duplicates;
    * predecessor/successor mutual consistency;
    * acyclicity (via Kahn's algorithm on the materialized subgraph);
    * the sink has no successors and every reachable task reaches the sink
      (guaranteed by construction of the backward walk, but cross-checked
      through the successor function);
    * per-task virtual cost is positive and finite.

    ``max_tasks`` bounds the walk so validation of accidentally-huge or
    unexpectedly cyclic key spaces fails fast instead of hanging.
    """
    sink = spec.sink_key()
    if tuple(spec.successors(sink)):
        raise GraphValidationError(f"sink {sink!r} has successors {tuple(spec.successors(sink))!r}")

    preds_of: dict[Key, tuple[Key, ...]] = {}
    frontier: deque[Key] = deque([sink])
    seen = {sink}
    while frontier:
        key = frontier.popleft()
        if max_tasks is not None and len(preds_of) >= max_tasks:
            raise GraphValidationError(
                f"graph exceeds max_tasks={max_tasks} reachable tasks; "
                "possible unbounded predecessor recursion"
            )
        preds = tuple(spec.predecessors(key))
        succs = tuple(spec.successors(key))
        _check_unique("predecessor", key, preds)
        _check_unique("successor", key, succs)
        if key in preds:
            raise GraphValidationError(f"{key!r} lists itself as a predecessor")
        for p in preds:
            if key not in tuple(spec.successors(p)):
                raise GraphValidationError(
                    f"inconsistent adjacency: {p!r} in preds({key!r}) but "
                    f"{key!r} not in succs({p!r})"
                )
        for s in succs:
            if key not in tuple(spec.predecessors(s)):
                raise GraphValidationError(
                    f"inconsistent adjacency: {s!r} in succs({key!r}) but "
                    f"{key!r} not in preds({s!r})"
                )
        c = spec.cost(key)
        if not (c > 0) or c != c or c == float("inf"):
            raise GraphValidationError(f"cost({key!r}) = {c!r} is not positive and finite")
        preds_of[key] = preds
        for p in preds:
            if p not in seen:
                seen.add(p)
                frontier.append(p)

    # Acyclicity via Kahn's algorithm restricted to the reachable subgraph.
    indeg = {k: len(ps) for k, ps in preds_of.items()}
    consumers: dict[Key, list[Key]] = {k: [] for k in preds_of}
    for k, ps in preds_of.items():
        for p in ps:
            consumers[p].append(k)
    ready = deque(k for k, d in indeg.items() if d == 0)
    done = 0
    while ready:
        k = ready.popleft()
        done += 1
        for c2 in consumers[k]:
            indeg[c2] -= 1
            if indeg[c2] == 0:
                ready.append(c2)
    if done != len(preds_of):
        cyclic = sorted((k for k, d in indeg.items() if d > 0), key=repr)[:8]
        raise GraphValidationError(f"cycle detected among tasks (sample): {cyclic!r}")
    return len(preds_of)
