"""Experiment harness: one driver per table/figure of the paper.

==========  ==============================================  ==================
Experiment  Driver                                          Formatter
==========  ==============================================  ==================
Table I     :func:`repro.harness.table1.table1`             ``format_table1``
Figure 4    :func:`repro.harness.figure4.figure4`           ``format_figure4``
Figure 5a   :func:`repro.harness.figure5.figure5a`          ``format_figure5``
Figure 5b   :func:`repro.harness.figure5.figure5b`          ``format_figure5``
Table II    :func:`repro.harness.table2.after_notify_study` ``format_table2``
Figure 6    (same runs as Table II)                         ``format_figure6``
Figure 7    :func:`repro.harness.figure7.figure7`           ``format_figure7``
==========  ==============================================  ==================

``python -m repro.harness`` regenerates everything in sequence.
"""

from repro.harness.experiment import ExecutionOutcome, execute, makespans
from repro.harness.figure4 import SpeedupSeries, figure4, format_figure4
from repro.harness.figure5 import OverheadCell, figure5a, figure5b, format_figure5
from repro.harness.figure7 import ScalabilitySeries, figure7, format_figure7
from repro.harness.report import pm, render_table
from repro.harness.table1 import Table1Row, format_table1, table1
from repro.harness.table2 import (
    AfterNotifyCell,
    after_notify_study,
    format_figure6,
    format_table2,
)

__all__ = [
    "execute",
    "makespans",
    "ExecutionOutcome",
    "table1",
    "format_table1",
    "Table1Row",
    "figure4",
    "format_figure4",
    "SpeedupSeries",
    "figure5a",
    "figure5b",
    "format_figure5",
    "OverheadCell",
    "after_notify_study",
    "format_table2",
    "format_figure6",
    "AfterNotifyCell",
    "figure7",
    "format_figure7",
    "ScalabilitySeries",
    "render_table",
    "pm",
]
