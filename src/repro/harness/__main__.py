"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.harness                 # everything, default settings
    python -m repro.harness --quick         # fewer reps, smaller sweeps
    python -m repro.harness --only fig4     # one experiment
    python -m repro.harness --apps lcs,lu   # subset of benchmarks

Table I runs at paper scale (structure analytics only); the execution
experiments run at the scaled default instances in virtual time.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.figure4 import figure4, format_figure4
from repro.harness.figure5 import figure5a, figure5b, format_figure5
from repro.harness.figure7 import figure7, format_figure7
from repro.harness.table1 import format_table1, table1
from repro.harness.table2 import after_notify_study, format_figure6, format_table2

EXPERIMENTS = ("table1", "fig4", "fig5a", "fig5b", "table2", "fig6", "fig7a", "fig7b",
               "detect", "verify")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.harness", description=__doc__)
    ap.add_argument("--only", choices=EXPERIMENTS, action="append", default=None,
                    help="run only the given experiment(s)")
    ap.add_argument("--apps", type=str, default=None,
                    help="comma-separated benchmark subset (default: all five)")
    ap.add_argument("--reps", type=int, default=None, help="repetitions per point")
    ap.add_argument("--quick", action="store_true", help="small sweeps for a fast pass")
    ap.add_argument("--plot", action="store_true", help="render ASCII charts after each table")
    ap.add_argument("--scale", choices=("tiny", "default", "large"), default="default",
                    help="instance scale for the execution experiments")
    ap.add_argument("--real", action="store_true",
                    help="Figure 4 only: run full kernels on ProcessRuntime "
                    "(real cores, wall-clock makespans) instead of the "
                    "simulator; worker counts are capped at the host's cores")
    ap.add_argument("--json", type=str, default=None, metavar="PATH",
                    help="write all collected results to a JSON file")
    args = ap.parse_args(argv)

    apps = tuple(args.apps.split(",")) if args.apps else None
    reps = args.reps or (2 if args.quick else 5)
    fig4_reps = args.reps or (2 if args.quick else 3)
    workers4 = (1, 2, 8, 44) if args.quick else (1, 2, 4, 8, 16, 32, 44)
    workers7 = (1, 8, 44) if args.quick else (1, 8, 16, 32, 44)
    wanted = set(args.only or EXPERIMENTS)
    collected: dict = {}

    def run(label: str, fn):
        t0 = time.time()
        print(f"\n>>> {label} ...", flush=True)
        out = fn()
        print(out)
        print(f"<<< {label} done in {time.time() - t0:.1f}s", flush=True)

    if "table1" in wanted:
        t1_scale = "default" if args.quick else "paper"

        def _t1():
            rows = table1(apps, scale=t1_scale)
            collected["table1"] = rows
            return format_table1(rows)
        run("Table I", _t1)
    if "fig4" in wanted:
        def _fig4():
            w4 = workers4
            if args.real:
                from repro.harness.figure4 import real_worker_counts

                w4 = real_worker_counts()
            series = figure4(apps, workers=w4, reps=fig4_reps, scale=args.scale,
                             real=args.real)
            collected["figure4"] = series
            out = format_figure4(series)
            if args.plot:
                from repro.harness.plot import figure4_chart

                out += "\n\n" + figure4_chart(series)
            return out
        run("Figure 4", _fig4)
    if "fig5a" in wanted:
        def _f5a():
            cells = figure5a(apps, reps=reps, scale=args.scale)
            collected["figure5a"] = cells
            return format_figure5(cells, "Figure 5(a): overhead, 512-task loss, before/after compute")
        run("Figure 5(a)", _f5a)
    if "fig5b" in wanted:
        def _f5b():
            cells = figure5b(apps, reps=reps, scale=args.scale)
            collected["figure5b"] = cells
            return format_figure5(cells, "Figure 5(b): overhead, 2%/5% loss, before/after compute")
        run("Figure 5(b)", _f5b)
    if wanted & {"table2", "fig6"}:
        cells = after_notify_study(apps, reps=reps, scale=args.scale)
        collected["after_notify_study"] = cells
        if "table2" in wanted:
            print()
            print(format_table2(cells))
        if "fig6" in wanted:
            print()
            print(format_figure6(cells))
    def _fig7(label, **kw):
        def inner():
            series = figure7(apps, workers=workers7, reps=fig4_reps, scale=args.scale, **kw)
            collected[label.split(":")[0].replace(" ", "").lower()] = series
            out = format_figure7(series, label)
            if args.plot:
                from repro.harness.plot import figure7_chart

                out += "\n\n" + figure7_chart(series, label)
            return out
        return inner

    if "fig7a" in wanted:
        run("Figure 7(a)", _fig7(
            "Figure 7(a): overhead vs P, 512-task loss, after compute, v=rand",
            paper_loss=512))
    if "fig7b" in wanted:
        run("Figure 7(b)", _fig7(
            "Figure 7(b): overhead vs P, 5% loss, after compute, v=rand",
            paper_loss=None, fraction=0.05))
    if "detect" in wanted:
        from repro.harness.detection import (
            detection_coverage,
            detection_overhead,
            format_coverage,
            format_overhead,
        )

        det_scale = "tiny" if args.quick or args.scale == "default" else args.scale
        det_apps = apps  # None -> the detection defaults (lcs, cholesky)

        def _detect():
            cov = detection_coverage(det_apps, reps=reps, scale=det_scale)
            ovh = detection_overhead(det_apps, reps=reps, scale=det_scale)
            collected["detection"] = {"coverage": cov, "overhead": ovh}
            return format_coverage(cov) + "\n\n" + format_overhead(ovh)
        run("Detection", _detect)
    if "verify" in wanted:
        from repro.harness.verification import format_verification, verification_study

        ver_apps = apps
        ver_seeds = 2 if args.quick else 4

        def _verify():
            study = verification_study(ver_apps, seeds=ver_seeds)
            collected["verification"] = study
            return format_verification(study)
        run("Verification", _verify)
    if args.json:
        from repro.harness.export import write_results

        write_results(collected, args.json)
        print(f"\nresults written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
