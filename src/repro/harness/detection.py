"""Detection coverage / overhead experiment (``--only detect``).

Two questions the paper leaves open, answered empirically:

1. **Coverage** -- of ``count`` silent faults injected per run, how many
   does each detector configuration catch (and does the final result
   survive)?  Configurations: no detection, checksummed store,
   selective replication (policy sweep), and checksum + replication.
2. **Overhead** -- what does detection cost when nothing goes wrong?
   Checksum overhead is wall-clock (digest work is real CPU time the
   virtual clock would not charge); replication overhead is reported
   both as wall-clock slowdown and as the re-executed work fraction.

Replication needs a task's input versions resident at after-compute
time; on apps whose FT policy is single-buffer in-place reuse
(``keep == 1``) the experiment widens the ring to two buffers for the
replication rows (see docs/DETECTION.md).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.apps import make_app
from repro.core import CompositeHooks, FTScheduler
from repro.detect import (
    ChecksumStore,
    ReplicationDetector,
    SilentFaultInjector,
    account_escapes,
    plan_silent_faults,
    policy_from_name,
)
from repro.memory.allocator import KeepK
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventLog
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

DEFAULT_APPS = ("lcs", "cholesky")
COVERAGE_MODES = ("off", "checksum", "replicate:all", "replicate:sampled:0.5", "both")


def _store_for(app, mode: str, digest: str):
    """Build the store a detection mode needs (checksummed and/or with a
    ring wide enough for replicas to re-read inputs)."""
    policy = app.ft_policy
    if "replicate" in mode or mode == "both":
        keep = policy.keep
        if keep is not None and keep < 2:
            policy = KeepK(2)
    if mode in ("checksum", "both"):
        return ChecksumStore(policy, digest=digest)
    return BlockStore(policy)


def _detector_for(app, store, mode: str, seed: int):
    if mode.startswith("replicate") or mode == "both":
        spec = mode.partition(":")[2] if mode.startswith("replicate:") else "all"
        return ReplicationDetector(app, store, policy=policy_from_name(spec, seed=seed))
    return None


def coverage_run(
    app_name: str,
    mode: str,
    count: int = 2,
    seed: int = 0,
    scale: str = "tiny",
    digest: str = "crc32",
    workers: int = 4,
) -> dict:
    """One silent-fault run under one detector configuration."""
    app = make_app(app_name, scale=scale)
    store = _store_for(app, mode, digest)
    app.seed_store(store)
    plan = plan_silent_faults(app, count=count, seed=seed)
    trace = ExecutionTrace()
    log = EventLog()
    injector = SilentFaultInjector(plan, app, store, trace=trace)
    detector = _detector_for(app, store, mode, seed)
    hooks = CompositeHooks(injector, detector) if detector else injector
    crashed = False
    try:
        FTScheduler(
            app,
            SimulatedRuntime(workers=workers, seed=seed),
            store=store,
            hooks=hooks,
            trace=trace,
            event_log=log,
        ).run()
    except Exception:
        # An escaped SDC can also surface as a downstream kernel crash
        # (e.g. a perturbed Cholesky tile is no longer positive
        # definite).  That is a failed, undetected run -- count it, don't
        # abort the sweep.
        crashed = True
    report = account_escapes(injector, log, trace)
    correct = False
    if not crashed:
        try:
            app.verify(store)
            correct = True
        except AssertionError:
            correct = False
    out = report.summary()
    out.update(
        app=app_name,
        mode=mode,
        correct=correct,
        crashed=crashed,
        replica_skips=detector.skipped if detector else 0,
    )
    return out


def detection_coverage(
    apps: Sequence[str] | None = None,
    modes: Sequence[str] = COVERAGE_MODES,
    count: int = 2,
    reps: int = 3,
    scale: str = "tiny",
    digest: str = "crc32",
) -> list[dict]:
    """Coverage table: one aggregated row per (app, detector mode)."""
    rows: list[dict] = []
    for app_name in apps or DEFAULT_APPS:
        for mode in modes:
            runs = [
                coverage_run(app_name, mode, count=count, seed=rep, scale=scale, digest=digest)
                for rep in range(reps)
            ]
            rows.append(
                {
                    "app": app_name,
                    "mode": mode,
                    "reps": reps,
                    "injected": sum(r["sdc_injected"] for r in runs),
                    "detected": sum(r["sdc_detected"] for r in runs),
                    "escaped": sum(r["sdc_escaped"] for r in runs),
                    "replica_runs": sum(r["replica_runs"] for r in runs),
                    "replica_skips": sum(r["replica_skips"] for r in runs),
                    "correct_runs": sum(r["correct"] for r in runs),
                    "crashed_runs": sum(r["crashed"] for r in runs),
                }
            )
    return rows


def _timed_run(app, store) -> float:
    t0 = time.perf_counter()
    FTScheduler(app, InlineRuntime(), store=store).run()
    return time.perf_counter() - t0


def detection_overhead(
    apps: Sequence[str] | None = None,
    reps: int = 3,
    scale: str = "tiny",
    digests: Sequence[str] = ("crc32", "blake2b"),
) -> list[dict]:
    """Fault-free overhead: wall-clock slowdown of each detector layer.

    Times are the per-variant minimum over ``reps`` inline runs (minimum,
    not mean: scheduling noise only ever adds time).
    """
    rows: list[dict] = []
    for app_name in apps or DEFAULT_APPS:
        app = make_app(app_name, scale=scale)

        def best(mk_store, hooks_factory=None) -> tuple[float, ExecutionTrace]:
            best_t, last_trace = float("inf"), None
            for _ in range(reps):
                store = mk_store()
                app.seed_store(store)
                trace = ExecutionTrace()
                detector = hooks_factory(store) if hooks_factory else None
                t0 = time.perf_counter()
                FTScheduler(
                    app, InlineRuntime(), store=store, hooks=detector, trace=trace
                ).run()
                best_t = min(best_t, time.perf_counter() - t0)
                last_trace = trace
            return best_t, last_trace

        base_t, _ = best(lambda: BlockStore(app.ft_policy))
        row = {"app": app_name, "reps": reps, "baseline_s": base_t}
        for digest in digests:
            t, trace = best(lambda d=digest: ChecksumStore(app.ft_policy, digest=d))
            row[f"checksum_{digest}_x"] = t / base_t if base_t else float("nan")
        policy = app.ft_policy if (app.ft_policy.keep or 2) >= 2 else KeepK(2)
        t, trace = best(
            lambda: BlockStore(policy),
            lambda store: ReplicationDetector(app, store),
        )
        row["replicate_all_x"] = t / base_t if base_t else float("nan")
        computed = trace.tasks_computed or 1
        row["replica_work_x"] = 1.0 + trace.replica_runs / computed
        rows.append(row)
    return rows


def format_coverage(rows: Sequence[dict]) -> str:
    head = (
        f"{'app':<9} {'mode':<22} {'inj':>4} {'det':>4} {'esc':>4} "
        f"{'coverage':>8} {'replicas':>8} {'skips':>6} {'correct':>8} {'crashed':>8}"
    )
    lines = ["Detection coverage (silent faults, simulated runtime)", head, "-" * len(head)]
    for r in rows:
        cov = r["detected"] / r["injected"] if r["injected"] else 1.0
        lines.append(
            f"{r['app']:<9} {r['mode']:<22} {r['injected']:>4} {r['detected']:>4} "
            f"{r['escaped']:>4} {cov:>8.2f} {r['replica_runs']:>8} "
            f"{r['replica_skips']:>6} {r['correct_runs']:>4}/{r['reps']} "
            f"{r['crashed_runs']:>4}/{r['reps']}"
        )
    return "\n".join(lines)


def format_overhead(rows: Sequence[dict]) -> str:
    if not rows:
        return "Detection overhead: no rows"
    digest_cols = [k for k in rows[0] if k.startswith("checksum_")]
    head = f"{'app':<9} {'base(s)':>8} " + " ".join(f"{c[:-2] + ' x':>16}" for c in digest_cols)
    head += f" {'replicate x':>12} {'work x':>7}"
    lines = ["Detection overhead (fault-free, wall-clock, inline runtime)", head, "-" * len(head)]
    for r in rows:
        line = f"{r['app']:<9} {r['baseline_s']:>8.3f} "
        line += " ".join(f"{r[c]:>16.2f}" for c in digest_cols)
        line += f" {r['replicate_all_x']:>12.2f} {r['replica_work_x']:>7.2f}"
        lines.append(line)
    return "\n".join(lines)
