"""Experiment execution: one place that wires app + scheduler + faults.

Every figure/table driver reduces to calls of :func:`execute` -- run one
benchmark once on the simulated runtime with a given scheduler variant,
worker count, steal seed, and optional fault plan -- and aggregation over
repetition seeds.  The paper takes 10 runs per point; drivers default to
fewer but expose ``reps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.base import Application
from repro.core.ft import FTScheduler
from repro.core.nabbit import NabbitScheduler
from repro.core.result import SchedulerResult
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultPlan
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


@dataclass
class ExecutionOutcome:
    """One simulated run plus its fault bookkeeping."""

    result: SchedulerResult
    injector: FaultInjector | None = None

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def reexecutions(self) -> int:
        return self.result.trace.reexecutions


def execute(
    app: Application,
    fault_tolerant: bool = True,
    workers: int = 1,
    steal_seed: int = 0,
    plan: FaultPlan | None = None,
    cost_model: CostModel | None = None,
    verify: bool = False,
    real: bool = False,
) -> ExecutionOutcome:
    """Run ``app`` once.

    Default is the discrete-event runtime in virtual time.  ``real=True``
    runs on :class:`~repro.runtime.procpool.ProcessRuntime` over a
    shared-memory store instead: the makespan becomes wall-clock seconds
    and the compute kernels execute on real cores (meaningful only with
    full, non-light apps on a multi-core host).
    """
    if plan is not None and not fault_tolerant:
        raise ValueError("fault injection requires the fault-tolerant scheduler")
    store = app.make_store(fault_tolerant, shared=real)
    if real:
        from repro.runtime.procpool import ProcessRuntime

        runtime: SimulatedRuntime | ProcessRuntime = ProcessRuntime(
            workers=workers, seed=steal_seed
        )
    else:
        runtime = SimulatedRuntime(workers=workers, cost_model=cost_model, seed=steal_seed)
    trace = ExecutionTrace()
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, app, store, trace)
    if fault_tolerant:
        sched: FTScheduler | NabbitScheduler = FTScheduler(
            app, runtime, store=store, cost_model=cost_model, hooks=injector, trace=trace
        )
    else:
        sched = NabbitScheduler(app, runtime, store=store, cost_model=cost_model, trace=trace)
    result = sched.run()
    if verify:
        app.verify(store)
    if real:
        store.close()
    return ExecutionOutcome(result=result, injector=injector)


def makespans(
    app: Application,
    reps: int,
    fault_tolerant: bool = True,
    workers: int = 1,
    cost_model: CostModel | None = None,
    base_seed: int = 0,
    real: bool = False,
) -> list[float]:
    """Fault-free makespans over ``reps`` steal seeds.

    At ``workers == 1`` the simulation is deterministic (no steals), so a
    single run suffices and is reused for every rep -- except in real
    wall-clock mode, where nothing is deterministic and every rep runs.
    """
    if workers == 1 and not real:
        m = execute(app, fault_tolerant, 1, base_seed, cost_model=cost_model).makespan
        return [m] * reps
    return [
        execute(
            app, fault_tolerant, workers, base_seed + r, cost_model=cost_model, real=real
        ).makespan
        for r in range(reps)
    ]


def seeds(reps: int, base: int = 0) -> Sequence[int]:
    return range(base, base + reps)
