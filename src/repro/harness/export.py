"""JSON export of experiment results.

Every driver returns dataclasses; this module flattens them into
JSON-safe dictionaries so downstream tooling (plotting, regression
tracking across versions) can consume a harness run without re-parsing
tables.  ``python -m repro.harness --json out.json`` collects everything
it ran into one document.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.analysis.stats import Summary


def _jsonify(value: Any) -> Any:
    if isinstance(value, Summary):
        return {
            "mean": value.mean,
            "min": value.minimum,
            "max": value.maximum,
            "std": value.std,
            "n": value.n,
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def results_to_dict(results: dict[str, Any]) -> dict[str, Any]:
    """Flatten ``{experiment_name: driver_output}`` into JSON-safe data."""
    return {name: _jsonify(payload) for name, payload in results.items()}


def write_results(results: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(results_to_dict(results), indent=1))
