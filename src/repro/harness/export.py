"""JSON export of experiment results and observability artifacts.

Every driver returns dataclasses; this module flattens them into
JSON-safe dictionaries so downstream tooling (plotting, regression
tracking across versions) can consume a harness run without re-parsing
tables.  ``python -m repro.harness --json out.json`` collects everything
it ran into one document.

It also exports :mod:`repro.obs` event logs in two interchange formats:

* **Chrome trace-event JSON** (``write_chrome_trace``) -- loadable in
  ``chrome://tracing`` / Perfetto: one lane (tid) per worker, COMPUTE
  begin/end pairs rendered as duration slices named after the task key
  (with the life number when > 1, so re-executed incarnations are
  visually distinct), everything else as instant events carrying key +
  life in ``args``.
* **JSONL** (``write_events_jsonl``) -- one JSON object per event, for
  ad-hoc analysis with standard line tools.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.stats import Summary
from repro.obs.events import Event, EventKind, events_in_order


def _jsonify(value: Any) -> Any:
    if isinstance(value, Summary):
        return {
            "mean": value.mean,
            "min": value.minimum,
            "max": value.maximum,
            "std": value.std,
            "n": value.n,
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def results_to_dict(results: dict[str, Any]) -> dict[str, Any]:
    """Flatten ``{experiment_name: driver_output}`` into JSON-safe data."""
    return {name: _jsonify(payload) for name, payload in results.items()}


def write_results(results: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(results_to_dict(results), indent=1))


# -- observability exports ---------------------------------------------------------

#: Event kinds rendered as duration-slice beginnings (paired with the
#: matching end/fault of the same (key, life) on the same lane).
_SLICE_BEGIN = EventKind.COMPUTE_BEGIN
_SLICE_END = frozenset({EventKind.COMPUTE_END, EventKind.COMPUTE_FAULT})

#: Time unit: trace-event ``ts`` is microseconds.  Wall-clock seconds
#: map naturally; virtual time maps 1 unit -> 1 us, which keeps relative
#: durations faithful (the only thing the viewer shows).
_US = 1e6


def events_to_trace_events(events: Iterable[Event]) -> list[dict[str, Any]]:
    """Convert an event log into Chrome trace-event dicts.

    Workers become threads (``tid``) of one process, so the viewer shows
    one lane per worker.  COMPUTE begin/end pairs become complete ("X")
    slices; every other event becomes a thread-scoped instant ("i")
    whose ``args`` carry the task key and life number.
    """
    ordered = events_in_order(events)
    out: list[dict[str, Any]] = []
    workers = sorted({e.worker for e in ordered})
    for w in workers:
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": w,
                "args": {"name": f"worker {w}"},
            }
        )
    open_slices: dict[tuple[Any, int], Event] = {}
    for e in ordered:
        if e.kind is _SLICE_BEGIN:
            open_slices[(e.key, e.life)] = e
            continue
        if e.kind in _SLICE_END:
            begin = open_slices.pop((e.key, e.life), None)
            if begin is not None:
                name = f"{begin.key!r}" + (f" #{begin.life}" if begin.life > 1 else "")
                slice_event = {
                    "ph": "X",
                    "name": name,
                    "cat": "compute",
                    "pid": 0,
                    "tid": begin.worker,
                    "ts": begin.t * _US,
                    "dur": max(0.0, e.t - begin.t) * _US,
                    "args": {"key": _arg(begin.key), "life": begin.life},
                }
                if e.kind is EventKind.COMPUTE_FAULT:
                    slice_event["args"]["fault"] = e.data.get("exc")
                out.append(slice_event)
            if e.kind is EventKind.COMPUTE_END:
                continue  # end markers carry no extra information
        args: dict[str, Any] = {"key": _arg(e.key), "life": e.life}
        for name, value in e.data.items():
            args[name] = _arg(value)
        out.append(
            {
                "ph": "i",
                "name": e.kind.value,
                "cat": _category(e.kind),
                "pid": 0,
                "tid": e.worker,
                "ts": e.t * _US,
                "s": "t",
                "args": args,
            }
        )
    # Unterminated slices (a compute that never ended: scheduler bug or a
    # truncated ring buffer) still deserve a mark.
    for begin in open_slices.values():
        out.append(
            {
                "ph": "i",
                "name": "compute_unterminated",
                "cat": "compute",
                "pid": 0,
                "tid": begin.worker,
                "ts": begin.t * _US,
                "s": "t",
                "args": {"key": _arg(begin.key), "life": begin.life},
            }
        )
    return out


_RECOVERY_KINDS = frozenset(
    {
        EventKind.FAULT_INJECTED,
        EventKind.FAULT_OBSERVED,
        EventKind.COMPUTE_FAULT,
        EventKind.RECOVERY,
        EventKind.RECOVERY_SKIPPED,
        EventKind.RESET,
        EventKind.REINIT,
        EventKind.REINIT_SCAN,
        EventKind.STALE_FRAME,
    }
)

_RUNTIME_KINDS = frozenset({EventKind.STEAL, EventKind.PARK, EventKind.UNPARK})


def _category(kind: EventKind) -> str:
    if kind in _RECOVERY_KINDS:
        return "recovery"
    if kind in _RUNTIME_KINDS:
        return "runtime"
    return "lifecycle"


def _arg(value: Any) -> Any:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def write_chrome_trace(events: Iterable[Event], path: str | Path) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable trace file."""
    doc = {"traceEvents": events_to_trace_events(events), "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(doc, indent=1))


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> None:
    """Write one JSON object per event (``Event.to_dict`` schema)."""
    lines = [json.dumps(e.to_dict()) for e in events_in_order(events)]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
