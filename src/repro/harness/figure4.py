"""Figure 4: speedup of baseline vs fault-tolerant versions, no faults.

For each benchmark and worker count P in {1, 2, 4, 8, 16, 32, 44}, runs
both scheduler variants on the simulated runtime and reports speedup
relative to the variant's own one-worker time (matching the paper, which
plots each version against its own sequential time and reports the
sequential times in the caption).

Expected shape (paper): near-linear speedup for all five benchmarks; the
FT curve indistinguishable from baseline except Floyd-Warshall, whose
two-version memory costs ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import Summary, summarize
from repro.apps.registry import APP_NAMES, make_app
from repro.harness.experiment import makespans
from repro.harness.report import render_table
from repro.runtime.costmodel import CostModel

DEFAULT_WORKERS = (1, 2, 4, 8, 16, 32, 44)

#: Larger-than-default instances so structural parallelism does not
#: saturate before 44 workers (the paper's instances have parallelism in
#: the hundreds).
FIGURE4_SCALE = "default"


@dataclass
class SpeedupSeries:
    """One curve of Figure 4: one app, one scheduler variant."""

    app: str
    variant: str  # "baseline" | "ft"
    workers: tuple[int, ...]
    times: dict[int, Summary] = field(default_factory=dict)

    @property
    def sequential_time(self) -> float:
        return self.times[1].mean

    def speedup(self, p: int) -> float:
        return self.sequential_time / self.times[p].mean


#: Worker counts for ``real=True`` runs: bounded by physical cores, so
#: the curve is a hardware measurement rather than a protocol simulation.
def real_worker_counts(maximum: int | None = None) -> tuple[int, ...]:
    import os

    cores = maximum or os.cpu_count() or 1
    return tuple(p for p in (1, 2, 4, 8, 16, 32) if p <= cores) or (1,)


def figure4(
    apps: tuple[str, ...] | None = None,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    reps: int = 3,
    scale: str = FIGURE4_SCALE,
    cost_model: CostModel | None = None,
    real: bool = False,
) -> list[SpeedupSeries]:
    """Run the Figure 4 sweep and return one series per (app, variant).

    ``real=True`` replaces the simulator with
    :class:`~repro.runtime.procpool.ProcessRuntime`: full (non-light)
    kernels on real cores over a shared-memory store, wall-clock
    makespans.  Pass worker counts from :func:`real_worker_counts` so the
    sweep stops at the host's core count.
    """
    series: list[SpeedupSeries] = []
    for name in apps or APP_NAMES:
        for variant, ft in (("baseline", False), ("ft", True)):
            app = make_app(name, scale=scale, light=not real)
            s = SpeedupSeries(app=name, variant=variant, workers=tuple(workers))
            for p in workers:
                s.times[p] = summarize(
                    makespans(
                        app, reps=reps, fault_tolerant=ft, workers=p,
                        cost_model=cost_model, real=real,
                    )
                )
            series.append(s)
    return series


def format_figure4(series: list[SpeedupSeries]) -> str:
    headers = ["app", "variant", "T(1)"] + [f"S(P={p})" for p in series[0].workers if p != 1]
    rows = []
    for s in series:
        # Virtual-time makespans are large integers; real-mode wall-clock
        # makespans are fractional seconds and need the decimals.
        t1 = s.sequential_time
        row = [s.app, s.variant, f"{t1:.0f}" if t1 >= 100 else f"{t1:.3f}"]
        row += [f"{s.speedup(p):.2f}" for p in s.workers if p != 1]
        rows.append(row)
    out = [render_table(headers, rows, title="Figure 4: speedup vs workers (no faults)")]
    # The caption's companion: FT-over-baseline sequential overhead.
    over = []
    byapp: dict[str, dict[str, SpeedupSeries]] = {}
    for s in series:
        byapp.setdefault(s.app, {})[s.variant] = s
    for name, pair in byapp.items():
        if "baseline" in pair and "ft" in pair:
            b, f = pair["baseline"].sequential_time, pair["ft"].sequential_time
            over.append((name, f"{100.0 * (f - b) / b:+.1f}%"))
    out.append(render_table(["app", "FT sequential overhead"], over))
    return "\n\n".join(out)
