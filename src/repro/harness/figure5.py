"""Figure 5: recovery overhead for before/after-compute faults.

(a) failures sized to re-execute ~512 tasks (scaled proportionally to the
instance, see ``scaled_loss``), for all combinations of injection time
{before_compute, after_compute} x task type {v=0, v=rand, v=last};

(b) failures sized to 2% and 5% of the total task count, v=rand only.

As in the paper, overhead is the percentage increase in execution time
over the fault-tolerant version without faults, measured sequentially
(P = 1); error bars come from the fault-placement seed.

Expected shape: before-compute ~0 everywhere; after-compute <= ~1% for
the 512-task scenario and <= ~3.6% / ~8.2% for 2% / 5% loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import Summary, percent_overhead, summarize
from repro.apps.registry import APP_NAMES, make_app, scaled_loss
from repro.faults.model import FaultPhase
from repro.faults.planner import plan_faults
from repro.faults.selectors import TASK_TYPES, VersionIndex
from repro.harness.experiment import execute
from repro.harness.report import pm, render_table
from repro.runtime.costmodel import CostModel

PHASES = (FaultPhase.BEFORE_COMPUTE, FaultPhase.AFTER_COMPUTE)


@dataclass
class OverheadCell:
    """One bar of Figure 5: app x phase x task type x amount."""

    app: str
    phase: str
    task_type: str
    amount: str
    overhead: Summary
    reexecutions: Summary
    implied: float


def _study(
    apps: tuple[str, ...] | None,
    scenarios: list[tuple[str, dict]],
    phases: tuple[FaultPhase, ...],
    reps: int,
    workers: int,
    scale: str,
    cost_model: CostModel | None,
) -> list[OverheadCell]:
    cells: list[OverheadCell] = []
    for name in apps or APP_NAMES:
        app = make_app(name, scale=scale, light=True)
        index = VersionIndex(app)
        base = execute(app, workers=workers, cost_model=cost_model).makespan
        for amount_desc, amount_kw in scenarios:
            for phase in phases:
                task_type = amount_kw.get("task_type", "v=rand")
                overheads, reexecs, implied = [], [], []
                for r in range(reps):
                    plan = plan_faults(
                        app,
                        phase=phase,
                        task_type=task_type,
                        seed=1000 + r,
                        index=index,
                        **{k: v for k, v in amount_kw.items() if k != "task_type"},
                    )
                    out = execute(
                        app, workers=workers, steal_seed=r, plan=plan, cost_model=cost_model
                    )
                    overheads.append(percent_overhead(out.makespan, base))
                    reexecs.append(out.reexecutions)
                    implied.append(plan.implied_reexecutions)
                cells.append(
                    OverheadCell(
                        app=name,
                        phase=phase.value,
                        task_type=task_type,
                        amount=amount_desc,
                        overhead=summarize(overheads),
                        reexecutions=summarize(reexecs),
                        implied=sum(implied) / len(implied),
                    )
                )
    return cells


def figure5a(
    apps: tuple[str, ...] | None = None,
    paper_loss: int = 512,
    reps: int = 5,
    workers: int = 1,
    scale: str = "default",
    cost_model: CostModel | None = None,
) -> list[OverheadCell]:
    """512-task-loss scenario over phase x task-type."""
    from repro.apps.registry import (
        DEFAULT_CONFIGS, LARGE_CONFIGS, PAPER_CONFIGS, TINY_CONFIGS,
    )

    configs = {"default": DEFAULT_CONFIGS, "tiny": TINY_CONFIGS,
               "large": LARGE_CONFIGS, "paper": PAPER_CONFIGS}[scale]
    cells: list[OverheadCell] = []
    for name in apps or APP_NAMES:
        loss = scaled_loss(name, paper_loss, config=configs[name])
        cells += _study(
            (name,),
            [(f"{paper_loss}(scaled:{loss}),{t}", {"count": loss, "task_type": t}) for t in TASK_TYPES],
            PHASES,
            reps,
            workers,
            scale,
            cost_model,
        )
    return cells


def figure5b(
    apps: tuple[str, ...] | None = None,
    fractions: tuple[float, ...] = (0.02, 0.05),
    reps: int = 5,
    workers: int = 1,
    scale: str = "default",
    cost_model: CostModel | None = None,
) -> list[OverheadCell]:
    """2% / 5% loss scenario, v=rand."""
    scenarios = [(f"{f:.0%},v=rand", {"fraction": f, "task_type": "v=rand"}) for f in fractions]
    return _study(apps, scenarios, PHASES, reps, workers, scale, cost_model)


def format_figure5(cells: list[OverheadCell], title: str) -> str:
    return render_table(
        ["app", "amount", "type", "phase", "overhead %", "re-executed", "implied"],
        [
            (
                c.app,
                c.amount,
                c.task_type,
                c.phase,
                pm(c.overhead.mean, c.overhead.std),
                pm(c.reexecutions.mean, c.reexecutions.std, 1),
                f"{c.implied:.0f}",
            )
            for c in cells
        ],
        title=title,
    )
