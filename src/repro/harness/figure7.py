"""Figure 7: scalability of recovery -- overhead vs worker count.

After-compute faults on v=rand tasks, at (a) the 512-task-scaled loss and
(b) 5% loss, swept over P in {1, 8, 16, 32, 44}.  Overhead at each P is
measured against the fault-free fault-tolerant run *at the same P and the
same steal seed*, then averaged over repetitions.

Expected shape: (a) flat and small (constant re-execution is absorbed);
(b) overhead *increases* with P -- recovery chains through version chains
are serial and cannot use idle workers, so their relative cost grows as
the fault-free makespan shrinks (the paper's "biggest scalability
challenge" discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import Summary, percent_overhead, summarize
from repro.apps.registry import APP_NAMES, make_app, scaled_loss
from repro.faults.planner import plan_faults
from repro.faults.selectors import VersionIndex
from repro.harness.experiment import execute
from repro.harness.report import pm, render_table
from repro.runtime.costmodel import CostModel

DEFAULT_WORKERS = (1, 8, 16, 32, 44)


@dataclass
class ScalabilitySeries:
    app: str
    amount: str
    workers: tuple[int, ...]
    overhead: dict[int, Summary] = field(default_factory=dict)


def figure7(
    apps: tuple[str, ...] | None = None,
    paper_loss: int | None = 512,
    fraction: float | None = None,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    reps: int = 3,
    scale: str = "default",
    cost_model: CostModel | None = None,
) -> list[ScalabilitySeries]:
    """One panel of Figure 7: fixed loss amount, P sweep.

    Pass ``paper_loss=512, fraction=None`` for panel (a) and
    ``paper_loss=None, fraction=0.05`` for panel (b).
    """
    if (paper_loss is None) == (fraction is None):
        raise ValueError("specify exactly one of paper_loss / fraction")
    series: list[ScalabilitySeries] = []
    for name in apps or APP_NAMES:
        app = make_app(name, scale=scale, light=True)
        index = VersionIndex(app)
        if paper_loss is not None:
            loss = scaled_loss(name, paper_loss, config=app.config)
            amount_desc = f"{paper_loss} tasks (scaled:{loss})"
            kw = {"count": loss}
        else:
            amount_desc = f"{fraction:.0%} of tasks"
            kw = {"fraction": fraction}
        s = ScalabilitySeries(app=name, amount=amount_desc, workers=tuple(workers))
        for p in workers:
            overheads = []
            for r in range(reps):
                base = execute(app, workers=p, steal_seed=r, cost_model=cost_model).makespan
                plan = plan_faults(
                    app, phase="after_compute", task_type="v=rand",
                    seed=3000 + r, index=index, **kw,
                )
                out = execute(app, workers=p, steal_seed=r, plan=plan, cost_model=cost_model)
                overheads.append(percent_overhead(out.makespan, base))
            s.overhead[p] = summarize(overheads)
        series.append(s)
    return series


def format_figure7(series: list[ScalabilitySeries], title: str) -> str:
    workers = series[0].workers
    return render_table(
        ["app", "amount"] + [f"P={p}" for p in workers],
        [
            [s.app, s.amount] + [pm(s.overhead[p].mean, s.overhead[p].std) for p in workers]
            for s in series
        ],
        title=title,
    )
