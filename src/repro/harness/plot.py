"""ASCII chart rendering for the figure drivers.

The paper's evaluation is figures; the harness prints their numeric
series as tables and, with these helpers, as terminal-friendly charts:
``line_chart`` for the speedup curves (Figure 4) and P-sweeps (Figure 7),
``bar_chart`` for the overhead bars (Figures 5 and 6).

Pure string manipulation -- no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    pos = round((value - lo) / (hi - lo) * (width - 1))
    return min(max(pos, 0), width - 1)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    height: int = 16,
    width: int = 60,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a label to ``(x, y)`` points.  Each series gets a
    distinct mark; collisions show the later series' mark.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(min(ys), 0.0), max(ys)
    if yhi == ylo:
        yhi = ylo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (label, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            col = _scale(x, xlo, xhi, width)
            row = height - 1 - _scale(y, ylo, yhi, height)
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    top_label = f"{yhi:.4g}"
    bottom_label = f"{ylo:.4g}"
    label_w = max(len(top_label), len(bottom_label), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_w)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_w)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_w} +{'-' * width}"
    lines.append(axis)
    xticks = f"{xlo:.4g}".ljust(width - 8) + f"{xhi:.4g}".rjust(8)
    lines.append(f"{' ' * label_w}  {xticks}")
    if x_label:
        lines.append(f"{' ' * label_w}  {x_label.center(width)}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(f"{' ' * label_w}  legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart; negative values render leftward from zero."""
    if not values:
        raise ValueError("nothing to plot")
    label_w = max(len(str(k)) for k in values)
    hi = max(max(values.values()), 0.0)
    lo = min(min(values.values()), 0.0)
    span = (hi - lo) or 1.0
    zero_col = round(-lo / span * width)
    lines = [title] if title else []
    for label, v in values.items():
        col = round((v - lo) / span * width)
        if v >= 0:
            bar = " " * zero_col + "#" * max(col - zero_col, 1 if v > 0 else 0)
        else:
            bar = " " * col + "#" * (zero_col - col)
        lines.append(f"{str(label).rjust(label_w)} |{bar.ljust(width)}| {v:.2f}{unit}")
    return "\n".join(lines)


def gantt_chart(
    timeline: Sequence[tuple[float, float, int, str]],
    width: int = 72,
    title: str = "",
    compute_only: bool = True,
) -> str:
    """Worker-occupancy chart from a simulator timeline.

    ``timeline`` is :attr:`SimulatedRuntime.timeline` (``record_timeline=
    True``): ``(start, end, worker, label)`` per frame.  Busy columns
    render ``#`` (or ``c`` where the column contains compute frames when
    ``compute_only``); idle columns stay blank -- making serial recovery
    chains visible as single-row activity.
    """
    if not timeline:
        raise ValueError("empty timeline; run with record_timeline=True")
    horizon = max(end for _s, end, _w, _l in timeline)
    workers = sorted({w for _s, _e, w, _l in timeline})
    rows = {}
    for w in workers:
        busy = [" "] * width
        for start, end, fw, label in timeline:
            if fw != w:
                continue
            c0 = _scale(start, 0.0, horizon, width)
            c1 = _scale(end, 0.0, horizon, width)
            mark = "c" if (compute_only and label.startswith("publish:")) else "#"
            for c in range(c0, max(c1, c0) + 1):
                if busy[c] != "c":
                    busy[c] = mark
        rows[w] = "".join(busy)
    lines = [title] if title else []
    label_w = len(f"w{workers[-1]}")
    for w in workers:
        lines.append(f"{('w%d' % w).rjust(label_w)} |{rows[w]}|")
    lines.append(f"{' ' * label_w} 0{' ' * (width - len(f'{horizon:.4g}') - 1)}{horizon:.4g}")
    lines.append(f"{' ' * label_w}  ('c' columns contain task completions)")
    return "\n".join(lines)


def figure4_chart(series) -> str:
    """Figure 4 as an ASCII chart (speedup vs workers, one mark per
    (app, variant))."""
    data = {
        f"{s.app}/{s.variant}": [(float(p), s.speedup(p)) for p in s.workers]
        for s in series
    }
    return line_chart(
        data,
        title="Figure 4: speedup vs workers",
        y_label="speedup",
        x_label="workers (P)",
    )


def figure7_chart(series, title: str) -> str:
    """Figure 7 as an ASCII chart (mean overhead % vs workers)."""
    data = {
        s.app: [(float(p), s.overhead[p].mean) for p in s.workers]
        for s in series
    }
    return line_chart(data, title=title, y_label="ovh %", x_label="workers (P)")


def figure5_chart(cells, title: str) -> str:
    """Figure 5/6 as grouped bars (mean overhead %)."""
    values = {
        f"{c.app} {c.task_type} {getattr(c, 'phase', '')}".strip(): c.overhead.mean
        for c in cells
    }
    return bar_chart(values, title=title, unit="%")
