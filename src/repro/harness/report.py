"""Plain-text table/series rendering for the experiment drivers.

Each driver returns structured rows; these helpers print them in the same
layout the paper's tables and figure captions use, so a harness run reads
side by side with the PDF.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Monospace-aligned table."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    srows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _numeric(s: str) -> bool:
    try:
        float(s.replace("±", " ").split()[0])
        return True
    except (ValueError, IndexError):
        return False


def pm(mean: float, std: float, digits: int = 2) -> str:
    """``mean ± std`` cell."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"
