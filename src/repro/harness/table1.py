"""Table I: benchmark configurations and task-graph structure.

Reports, per benchmark, matrix/sequence size N, block size B, total tasks
T, total dependences E, and critical path S -- computed by materializing
the reachable graph and measuring it, exactly as defined in Section VI.
The paper's values are printed alongside for comparison.

``S`` is reported as path length in *nodes* (the convention that matches
the paper's LU/Cholesky/FW rows; LCS differs by one -- see
EXPERIMENTS.md).  For FW, our explicit collection sink adds 1 task and
B^2 edges over the paper's count; the row also shows the sink-free
numbers, which match the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import make_app
from repro.graph.analysis import graph_stats
from repro.harness.report import render_table

#: The paper's Table I values: name -> (N desc, B desc, T, E, S).
PAPER_TABLE1 = {
    "lcs": ("512Kx512K", "2Kx2K", 65536, 195585, 510),
    "lu": ("10Kx10K", "128x128", 173880, 508760, 238),
    "cholesky": ("10Kx10K", "128x128", 88560, 255960, 238),
    "fw": ("5Kx5K", "128x128", 64000, 308880, 120),
    "sw": ("6Kx6K", "128x128", 132650, 262600, 1475),
}


@dataclass
class Table1Row:
    app: str
    n: int
    block: int
    tasks: int
    edges: int
    s_nodes: int
    s_edges: int
    paper_tasks: int
    paper_edges: int
    paper_s: int
    note: str = ""


def table1(apps: tuple[str, ...] | None = None, scale: str = "paper") -> list[Table1Row]:
    """Measure the Table I structure counts at the requested scale."""
    rows = []
    for name in apps or tuple(PAPER_TABLE1):
        app = make_app(name, scale=scale, light=True)
        st = graph_stats(app)
        p_t, p_e, p_s = PAPER_TABLE1[name][2:]
        note = ""
        tasks, edges = st.tasks, st.edges
        if name == "fw":
            # Exclude our explicit collection sink to compare like for like.
            B = app.config.blocks
            note = f"(+1 sink task, +{B * B} sink edges excluded)"
            tasks -= 1
            edges -= B * B
        if name == "sw":
            note = "(paper's BSP strip decomposition not reconstructible)"
        rows.append(
            Table1Row(
                app=name,
                n=app.config.n,
                block=app.config.block,
                tasks=tasks,
                edges=edges,
                s_nodes=st.critical_path + 1,
                s_edges=st.critical_path,
                paper_tasks=p_t,
                paper_edges=p_e,
                paper_s=p_s,
                note=note,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    return render_table(
        ["app", "N", "B", "T", "T(paper)", "E", "E(paper)", "S nodes", "S edges", "S(paper)", "note"],
        [
            (
                r.app, r.n, r.block, r.tasks, r.paper_tasks, r.edges, r.paper_edges,
                r.s_nodes, r.s_edges, r.paper_s, r.note,
            )
            for r in rows
        ],
        title="Table I: benchmark task-graph structure",
    )
