"""Table II + Figure 6: the after-notify fault study.

Faults injected after a task has notified its successors are only
observed if some later consumer touches the task or its data -- so the
*actual* amount of re-executed work deviates from the sizing model: it
can be lower (all successors already consumed the outputs) or much higher
(a successor discovers the failure after the victim's inputs have been
overwritten, cascading through version chains).

Table II reports avg/min/max/std of actually re-executed tasks when the
injected set *implies* ~512 re-executions, per task type; Figure 6 the
corresponding overheads plus the 2%/5% v=rand scenarios.  Both views come
from the same runs, so one driver produces them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import Summary, percent_overhead, summarize
from repro.apps.registry import APP_NAMES, make_app, scaled_loss
from repro.faults.planner import plan_faults
from repro.faults.selectors import TASK_TYPES, VersionIndex
from repro.harness.experiment import execute
from repro.harness.report import pm, render_table
from repro.runtime.costmodel import CostModel


@dataclass
class AfterNotifyCell:
    app: str
    task_type: str
    amount: str
    reexecutions: Summary
    overhead: Summary
    implied: float


def after_notify_study(
    apps: tuple[str, ...] | None = None,
    paper_loss: int = 512,
    fractions: tuple[float, ...] = (0.02, 0.05),
    reps: int = 5,
    workers: int = 1,
    scale: str = "default",
    cost_model: CostModel | None = None,
) -> list[AfterNotifyCell]:
    """Run every after-notify scenario of Table II / Figure 6."""
    cells: list[AfterNotifyCell] = []
    for name in apps or APP_NAMES:
        app = make_app(name, scale=scale, light=True)
        index = VersionIndex(app)
        base = execute(app, workers=workers, cost_model=cost_model).makespan
        loss = scaled_loss(name, paper_loss, config=app.config)
        scenarios = [(f"{paper_loss}(scaled:{loss})", t, {"count": loss}) for t in TASK_TYPES]
        scenarios += [(f"{f:.0%}", "v=rand", {"fraction": f}) for f in fractions]
        for amount_desc, task_type, kw in scenarios:
            overheads, reexecs, implied = [], [], []
            for r in range(reps):
                plan = plan_faults(
                    app, phase="after_notify", task_type=task_type,
                    seed=2000 + r, index=index, **kw,
                )
                out = execute(app, workers=workers, steal_seed=r, plan=plan, cost_model=cost_model)
                overheads.append(percent_overhead(out.makespan, base))
                reexecs.append(out.reexecutions)
                implied.append(plan.implied_reexecutions)
            cells.append(
                AfterNotifyCell(
                    app=name,
                    task_type=task_type,
                    amount=amount_desc,
                    reexecutions=summarize(reexecs),
                    overhead=summarize(overheads),
                    implied=sum(implied) / len(implied),
                )
            )
    return cells


def format_table2(cells: list[AfterNotifyCell]) -> str:
    """The Table II view: re-execution statistics for the 512 scenario."""
    rows = [
        (
            c.app, c.task_type, f"{c.implied:.0f}",
            f"{c.reexecutions.mean:.0f}", f"{c.reexecutions.minimum:.0f}",
            f"{c.reexecutions.maximum:.0f}", f"{c.reexecutions.std:.0f}",
        )
        for c in cells
        if not c.amount.endswith("%")
    ]
    return render_table(
        ["app", "type", "implied", "avg", "min", "max", "std"],
        rows,
        title="Table II: actually re-executed tasks, after-notify faults",
    )


def format_figure6(cells: list[AfterNotifyCell]) -> str:
    """The Figure 6 view: overheads for all after-notify scenarios."""
    return render_table(
        ["app", "amount", "type", "overhead %", "re-executed"],
        [
            (
                c.app, c.amount, c.task_type,
                pm(c.overhead.mean, c.overhead.std),
                pm(c.reexecutions.mean, c.reexecutions.std, 1),
            )
            for c in cells
        ],
        title="Figure 6: recovery overhead, after-notify faults",
    )
