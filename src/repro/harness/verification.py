"""Harness experiment: schedule exploration + invariant audit per benchmark.

Not a figure from the paper -- this is the reproduction auditing itself.
For each benchmark and fault phase it explores a bounded schedule space
(:mod:`repro.verify.explore`), checks Guarantees 1-4 on every trace, and
reports what the exploration actually exercised (recoveries, resets,
stale notifications); a final mutation row shows the seeded protocol
bugs being convicted, which is the evidence the zeros in the violation
column are earned rather than vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import EventKind
from repro.verify.explore import (
    ExplorationReport,
    explore_app,
    make_app_case,
    mutation_study,
)

_APPS = ("lcs", "sw", "fw", "lu", "cholesky")
_PHASES = ("before_compute", "after_compute", "after_notify")

#: Protocol paths whose exercise counts the table reports.
_PATH_KINDS = (
    ("recov", EventKind.RECOVERY),
    ("reset", EventKind.RESET),
    ("reinit", EventKind.REINIT),
    ("stale", EventKind.NOTIFY_STALE),
)


@dataclass
class VerificationRow:
    """One (app, phase) exploration outcome."""

    app: str
    phase: str
    schedules: int
    violations: int
    errors: int
    exercised: dict[str, int]


def verification_study(
    apps: tuple[str, ...] | None = None,
    *,
    seeds: int = 4,
    perturbations: int = 1,
    branch_budget: int = 8,
) -> dict:
    """Run the exploration audit; returns ``{"rows": ..., "mutations": ...}``."""
    rows: list[VerificationRow] = []
    for app in apps or _APPS:
        for phase in _PHASES:
            report: ExplorationReport = explore_app(
                app,
                fault_phase=phase,
                seeds=range(seeds),
                perturbations=perturbations,
                branch_budget=branch_budget,
            )
            exercised = {}
            for label, kind in _PATH_KINDS:
                exercised[label] = sum(
                    1 for o in report.outcomes if o.kinds.get(kind)
                )
            rows.append(
                VerificationRow(
                    app=app,
                    phase=phase,
                    schedules=report.schedules_run,
                    violations=report.violations,
                    errors=sum(1 for o in report.outcomes if o.error is not None),
                    exercised=exercised,
                )
            )

    case = make_app_case("lcs", fault_phase="before_compute")
    results = mutation_study(
        case, seeds=range(seeds), perturbations=perturbations, branch_budget=branch_budget
    )
    mutations = {
        name: {
            "detected": r.detected,
            "schedules": r.report.schedules_run,
            "via": (
                "; ".join(sorted({v.invariant for v in r.first_counterexample.violations}))
                if r.first_counterexample and r.first_counterexample.violations
                else (r.first_counterexample.error if r.first_counterexample else "")
            ),
        }
        for name, r in results.items()
    }
    return {"rows": rows, "mutations": mutations}


def format_verification(study: dict) -> str:
    rows: list[VerificationRow] = study["rows"]
    head = (
        f"{'app':<9} {'phase':<15} {'scheds':>6} {'viol':>5} {'errs':>5} "
        + " ".join(f"{label:>6}" for label, _ in _PATH_KINDS)
    )
    lines = [
        "Verification study: bounded schedule exploration, invariants checked per trace",
        "(exercise columns: schedules in which that protocol path occurred)",
        "",
        head,
        "-" * len(head),
    ]
    for r in rows:
        lines.append(
            f"{r.app:<9} {r.phase:<15} {r.schedules:>6} {r.violations:>5} {r.errors:>5} "
            + " ".join(f"{r.exercised[label]:>6}" for label, _ in _PATH_KINDS)
        )
    lines.append("")
    lines.append("Seeded-bug mutation study (the checker checking itself):")
    for name, m in study["mutations"].items():
        verdict = f"detected via {m['via']}" if m["detected"] else "NOT DETECTED"
        lines.append(f"  {name:<18} {verdict}  ({m['schedules']} schedules)")
    return "\n".join(lines)
