"""Versioned data-block storage with reuse policies and corruption semantics.

Tasks communicate exclusively through *data blocks* (Section II).  A block
is a logical buffer identified by an application-chosen id; each task
defines one or more *versions* of blocks.  The paper evaluates three
physical policies:

* **single assignment** -- every version gets its own buffer and is never
  overwritten (:class:`SingleAssignment`);
* **memory reuse** -- one physical buffer per block holds only the most
  recently written version (:class:`Reuse`); reading an evicted version
  raises :class:`~repro.exceptions.OverwrittenError`, which the
  fault-tolerant scheduler converts into re-execution of the producer;
* **two-version** -- the Floyd-Warshall compromise: the two most recently
  written versions stay resident, damping cascading re-execution at 2x
  memory cost (:class:`TwoVersion`).

:class:`BlockStore` implements all three behind one interface and tracks
occupancy/overwrite/corruption statistics for the ablation benchmarks.
"""

from repro.memory.allocator import (
    AllocationPolicy,
    KeepK,
    Reuse,
    SingleAssignment,
    TwoVersion,
    policy_from_name,
)
from repro.memory.blockstore import BlockStore, StoreStats
from repro.memory.context import StoreComputeContext
from repro.memory.shm import SharedMemoryBackend, SharedMemoryBlockStore, ShmStats

__all__ = [
    "AllocationPolicy",
    "SingleAssignment",
    "Reuse",
    "TwoVersion",
    "KeepK",
    "policy_from_name",
    "BlockStore",
    "StoreStats",
    "StoreComputeContext",
    "SharedMemoryBackend",
    "SharedMemoryBlockStore",
    "ShmStats",
]
