"""Buffer allocation / retention policies for versioned data blocks.

A policy answers one question: *after a write, which previously resident
versions of the block stay readable?*  Retention is by **write recency**,
not version number: physically, each block owns ``keep`` buffers cycled in
write order, which is what a reuse implementation does and what recovery
replay relies on (a recovered old version temporarily evicts a newer one,
and the forward replay of the chain restores it -- Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocationPolicy:
    """Base retention policy.

    ``keep`` is the number of most-recently-written versions that remain
    resident per block; ``None`` means unbounded (single assignment).
    """

    keep: int | None

    def __post_init__(self) -> None:
        if self.keep is not None and self.keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {self.keep}")

    @property
    def name(self) -> str:
        if self.keep is None:
            return "single_assignment"
        if self.keep == 1:
            return "reuse"
        if self.keep == 2:
            return "two_version"
        return f"keep{self.keep}"

    @property
    def is_single_assignment(self) -> bool:
        return self.keep is None

    def buffers_per_block(self) -> int | None:
        """Physical buffers a block needs (None = one per version)."""
        return self.keep


def SingleAssignment() -> AllocationPolicy:
    """Every version persists; no overwrite-induced re-execution is possible."""
    return AllocationPolicy(keep=None)


def Reuse() -> AllocationPolicy:
    """One buffer per block: only the last written version is resident."""
    return AllocationPolicy(keep=1)


def TwoVersion() -> AllocationPolicy:
    """Two buffers per block (the paper's Floyd-Warshall configuration)."""
    return AllocationPolicy(keep=2)


def KeepK(k: int) -> AllocationPolicy:
    """Retain the ``k`` most recently written versions per block."""
    return AllocationPolicy(keep=k)


_NAMED = {
    "single_assignment": SingleAssignment,
    "single-assignment": SingleAssignment,
    "reuse": Reuse,
    "two_version": TwoVersion,
    "two-version": TwoVersion,
}


def policy_from_name(name: str) -> AllocationPolicy:
    """Resolve a policy by name (``keepN`` selects :func:`KeepK`)."""
    key = name.strip().lower()
    if key in _NAMED:
        return _NAMED[key]()
    if key.startswith("keep"):
        try:
            return KeepK(int(key[4:]))
        except ValueError:
            pass
    raise ValueError(
        f"unknown allocation policy {name!r}; expected one of "
        f"{sorted(set(_NAMED))} or 'keepN'"
    )
