"""Thread-safe versioned block store with detect-on-access fault semantics.

The store is the single point through which task computations exchange
data, and therefore the single point where two of the paper's fault-model
events surface:

* reading a **corrupted** version raises
  :class:`~repro.exceptions.DataCorruptionError` ("once an error is
  detected, all subsequent accesses to that object will observe the
  error" -- Section II);
* reading an **evicted** version under memory reuse raises
  :class:`~repro.exceptions.OverwrittenError`, the trigger for the
  cascading-recovery chains of Section IV.

Writes always succeed: a (re-)executing producer replaces whatever the
block's buffer ring currently holds, exactly like an in-place update of a
reused buffer.  Rewriting a version also clears its corruption mark --
recovery regenerates clean data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.exceptions import DataCorruptionError, OverwrittenError
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import AllocationPolicy, SingleAssignment


@dataclass
class StoreStats:
    """Counters exposed for ablation benchmarks and tests."""

    writes: int = 0
    rewrites: int = 0
    evictions: int = 0
    reads: int = 0
    corrupted_reads: int = 0
    overwritten_reads: int = 0
    corruptions_marked: int = 0
    silent_corruptions: int = 0
    peak_resident: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class _Entry:
    __slots__ = ("data", "corrupted")

    def __init__(self, data: Any) -> None:
        self.data = data
        self.corrupted = False


class _Slot:
    """One logical block: a ring of ``keep`` resident versions, plus
    pinned versions that live outside the ring."""

    __slots__ = ("versions", "pinned", "lock")

    def __init__(self) -> None:
        # version -> _Entry, in write order (oldest write first).
        self.versions: OrderedDict[int, _Entry] = OrderedDict()
        self.pinned: dict[int, _Entry] = {}
        self.lock = threading.Lock()


class BlockStore:
    """Versioned storage for all data blocks of one task-graph execution."""

    def __init__(self, policy: AllocationPolicy | None = None) -> None:
        self.policy = policy or SingleAssignment()
        self.stats = StoreStats()
        self._slots: dict[Hashable, _Slot] = {}
        self._slots_lock = threading.Lock()
        self._resident = 0

    def _slot(self, block: Hashable) -> _Slot:
        slot = self._slots.get(block)
        if slot is None:
            with self._slots_lock:
                slot = self._slots.setdefault(block, _Slot())
        return slot

    # -- producer side ----------------------------------------------------------

    def write(self, ref: BlockRef, data: Any) -> None:
        """Store ``data`` as ``ref``; evict beyond the policy's buffer count.

        Re-writing a resident version refreshes its data in place (and
        clears any corruption mark) without consuming another buffer.
        """
        slot = self._slot(ref.block)
        keep = self.policy.keep
        with slot.lock:
            self.stats.writes += 1
            delta = 0
            existing = slot.versions.pop(ref.version, None)
            if existing is not None:
                self.stats.rewrites += 1
            else:
                delta += 1
            slot.versions[ref.version] = _Entry(data)
            if keep is not None:
                while len(slot.versions) > keep:
                    slot.versions.popitem(last=False)
                    self.stats.evictions += 1
                    delta -= 1
            self._bump_resident(delta)

    def pin(self, ref: BlockRef, data: Any) -> None:
        """Store ``ref`` as *resilient input data*: never evicted by the
        retention policy and immune to corruption marking.

        This models the paper's assumption that application inputs and
        "data structures beyond the data blocks operated on by tasks are
        ... made resilient through other means" (Section II): recovery
        chains terminate when they reach pinned version-0 inputs.
        """
        slot = self._slot(ref.block)
        with slot.lock:
            slot.pinned[ref.version] = _Entry(data)

    def is_pinned(self, ref: BlockRef) -> bool:
        # Lock-free: a single membership probe of a GIL-atomic dict; see
        # status_of for the memory-ordering argument.
        return ref.version in self._slot(ref.block).pinned

    def _bump_resident(self, delta: int) -> None:
        # Racy under threads but only feeds a statistics high-water mark.
        self._resident += delta
        if self._resident > self.stats.peak_resident:
            self.stats.peak_resident = self._resident

    # -- consumer side ----------------------------------------------------------

    def read(self, ref: BlockRef) -> Any:
        """Return the data for ``ref`` or raise the matching fault error."""
        slot = self._slot(ref.block)
        with slot.lock:
            self.stats.reads += 1
            pinned = slot.pinned.get(ref.version)
            if pinned is not None:
                return pinned.data
            entry = slot.versions.get(ref.version)
            if entry is None:
                self.stats.overwritten_reads += 1
                resident = next(reversed(slot.versions)) if slot.versions else None
                raise OverwrittenError(ref.block, ref.version, resident)
            if entry.corrupted:
                self.stats.corrupted_reads += 1
                raise DataCorruptionError(ref.block, ref.version)
            return entry.data

    def peek(self, ref: BlockRef, default: Any = None) -> Any:
        """Non-faulting read for tests/reports: returns ``default`` when the
        version is absent or corrupted.

        Lock-free; same linearization argument as :meth:`status_of`.  Does
        not bump read statistics, so skipping the lock loses nothing."""
        slot = self._slot(ref.block)
        pinned = slot.pinned.get(ref.version)
        if pinned is not None:
            return pinned.data
        entry = slot.versions.get(ref.version)
        if entry is None or entry.corrupted:
            return default
        return entry.data

    def status_of(self, ref: BlockRef) -> str:
        """``"ok"``, ``"corrupted"``, or ``"missing"`` (never written or
        evicted) -- the non-raising form of :meth:`read` used by the
        scheduler's predecessor-output availability check.

        **Lock-free.**  Memory-ordering argument (CPython): each probe
        (``in`` / ``dict.get`` / ``entry.corrupted``) is a single GIL-atomic
        operation against state that concurrent writers mutate only *under*
        the slot lock, so every probe observes some consistent
        linearization point -- never a torn entry.  The composite answer
        can be stale by at most one concurrent write/corruption, which the
        locked version permitted equally: a status returned under the lock
        was stale the instant the lock was released.  Callers (the
        scheduler's availability check) already treat the answer as a hint
        that the subsequent faulting ``read`` re-validates authoritatively.
        """
        slot = self._slot(ref.block)
        if ref.version in slot.pinned:
            return "ok"
        entry = slot.versions.get(ref.version)
        if entry is None:
            return "missing"
        return "corrupted" if entry.corrupted else "ok"

    def newest_resident(self, block: Hashable) -> int | None:
        """Most recently written resident version of ``block`` (or None)."""
        slot = self._slot(block)
        with slot.lock:
            return next(reversed(slot.versions)) if slot.versions else None

    def is_available(self, ref: BlockRef) -> bool:
        """True iff ``ref`` is resident and uncorrupted.

        This is the scheduler's ``B.overwritten``-style availability check
        from TRYINITCOMPUTE: a predecessor whose outputs are unavailable is
        treated as failed and recovered.
        """
        # Lock-free; see status_of for the memory-ordering argument.
        slot = self._slot(ref.block)
        if ref.version in slot.pinned:
            return True
        entry = slot.versions.get(ref.version)
        return entry is not None and not entry.corrupted

    # -- fault injection ----------------------------------------------------------

    def mark_corrupted(self, ref: BlockRef) -> bool:
        """Flag ``ref`` as corrupted; returns False if it was not resident
        (nothing left to corrupt -- the buffer already holds another
        version)."""
        slot = self._slot(ref.block)
        with slot.lock:
            if ref.version in slot.pinned:
                return False  # resilient input data cannot be corrupted
            entry = slot.versions.get(ref.version)
            if entry is None:
                return False
            if not entry.corrupted:
                entry.corrupted = True
                self.stats.corruptions_marked += 1
            return True

    def corrupt_data(self, ref: BlockRef, mutate: Callable[[Any], Any]) -> bool:
        """Silently replace ``ref``'s payload with ``mutate(payload)``.

        This is the *silent data corruption* primitive of
        :mod:`repro.detect`: no corruption flag is set and no error will
        ever be raised by the store itself, so the fault is observable
        only through a detector (checksum verification or task
        replication) -- or through a wrong final result.  Returns False
        when the version is pinned (resilient input data) or not
        resident.  ``stats.silent_corruptions`` is ground truth for the
        injector, not a detection counter.
        """
        slot = self._slot(ref.block)
        with slot.lock:
            if ref.version in slot.pinned:
                return False
            entry = slot.versions.get(ref.version)
            if entry is None:
                return False
            entry.data = mutate(entry.data)
            self.stats.silent_corruptions += 1
            return True

    # -- introspection ----------------------------------------------------------

    def resident_versions(self, block: Hashable) -> tuple[int, ...]:
        """Versions currently resident for ``block``, oldest write first."""
        slot = self._slot(block)
        with slot.lock:
            return tuple(slot.versions)

    def blocks(self) -> tuple[Hashable, ...]:
        with self._slots_lock:
            return tuple(self._slots)

    def resident_count(self) -> int:
        return sum(len(self._slots[b].versions) for b in self.blocks())

    def refs(self) -> Iterable[BlockRef]:
        """All resident (block, version) references (unordered)."""
        for block in self.blocks():
            for v in self.resident_versions(block):
                yield BlockRef(block, v)

    def register_metrics(self, registry: Any) -> None:
        """Publish pull-based occupancy/traffic gauges into a
        :class:`~repro.obs.live.MetricsRegistry`.

        Everything is a callback gauge reading state the store already
        maintains, so registering costs the write/read hot paths nothing.
        Subclasses extend (e.g. the shm backend adds segment byte
        counts)."""
        registry.callback_gauge(
            "repro_store_resident_versions",
            self.resident_count,
            "block versions currently resident (ring + pinned excluded)",
        )
        for name in ("writes", "reads", "evictions", "peak_resident"):
            registry.callback_gauge(
                f"repro_store_{name}",
                lambda n=name: getattr(self.stats, n),
                f"BlockStore stats.{name}",
            )
