"""Compute-context implementation backed by a :class:`BlockStore`.

One context is created per ``COMPUTE`` invocation.  Besides plain I/O it
enforces the footprint declared by the spec (a task may only touch the
block versions it declared -- undeclared dependences would silently break
both scheduling correctness and recovery) and records which inputs were
actually read, which the tracer uses for re-execution accounting.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import SchedulerError
from repro.graph.taskspec import BlockRef, Key, TaskGraphSpec
from repro.memory.blockstore import BlockStore


class StoreComputeContext:
    """The object handed to ``spec.compute(key, ctx)``."""

    __slots__ = ("spec", "store", "key", "_inputs", "_outputs", "reads", "writes", "strict")

    def __init__(
        self,
        spec: TaskGraphSpec,
        store: BlockStore,
        key: Key,
        strict: bool = True,
        footprint: tuple[frozenset, frozenset] | None = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.key = key
        # BlockRef is a namedtuple, so raw (block, version) tuples from a
        # spec hash/compare equal to wrapped refs; membership tests below
        # need no per-element rewrapping.  Schedulers that already cache
        # the (inputs, outputs) frozensets pass them via ``footprint`` so
        # re-executions skip the spec round-trip.
        if footprint is not None:
            self._inputs, self._outputs = footprint
        else:
            self._inputs = frozenset(spec.inputs(key))
            self._outputs = frozenset(spec.outputs(key))
        self.reads: list[BlockRef] = []
        self.writes: list[BlockRef] = []
        self.strict = strict

    def read(self, ref: BlockRef) -> Any:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        if self.strict and ref not in self._inputs:
            raise SchedulerError(
                f"task {self.key!r} read undeclared input {ref!r}; "
                f"declared inputs: {sorted(self._inputs, key=repr)!r}"
            )
        value = self.store.read(ref)
        self.reads.append(ref)
        return value

    def write(self, ref: BlockRef, value: Any) -> None:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        if self.strict and ref not in self._outputs:
            raise SchedulerError(
                f"task {self.key!r} wrote undeclared output {ref!r}; "
                f"declared outputs: {sorted(self._outputs, key=repr)!r}"
            )
        self.store.write(ref, value)
        self.writes.append(ref)

    def read_all_inputs(self) -> dict[BlockRef, Any]:
        """Convenience: read every declared input (in spec order)."""
        return {BlockRef(*r): self.read(BlockRef(*r)) for r in self.spec.inputs(self.key)}

    def missing_outputs(self) -> tuple[BlockRef, ...]:
        """Declared outputs not written by this invocation (should be empty
        after a successful compute)."""
        written = set(self.writes)
        return tuple(r for r in sorted(self._outputs, key=repr) if r not in written)
