"""Shared-memory backend for :class:`~repro.memory.blockstore.BlockStore`.

:class:`~repro.runtime.procpool.ProcessRuntime` runs compute phases in
worker *processes*; block payloads therefore need a representation both
sides can see without serializing bulk data per task.  This module keeps
every published block version in one POSIX shared-memory segment
(`multiprocessing.shared_memory`), owned and lifecycle-managed by the
**parent** process:

* On ``write``/``pin`` the payload's ndarrays are copied once into a
  fresh segment and the stored entry becomes the same structure rebuilt
  from zero-copy NumPy views over that segment, so every *parent-side*
  consumer (in-process reads, checksum verification, ``corrupt_data``)
  observes segment bytes directly.
* :meth:`SharedMemoryBackend.descriptor` returns a small picklable
  :class:`ShmDescriptor` (segment name + structure template + per-array
  dtype/shape/offset) for any shm-backed version; workers rebuild the
  payload with :func:`attach_payload` -- a read-only ``mmap`` of the
  segment, no copy, no pickling of array bytes.
* Segments are created and unlinked **only in the parent** (single-owner
  rule), which keeps ``multiprocessing.resource_tracker`` accurate: the
  worker side attaches via ``/dev/shm`` + ``mmap`` on Linux (or an
  untracked ``SharedMemory`` attach elsewhere) precisely so that worker
  exits never double-register or prematurely unlink a segment.
* Versioning follows the base store exactly: rewriting a version
  replaces its segment; versions evicted by the allocation policy have
  their segments unlinked (:meth:`_sweep_block`), so a worker attaching
  to an evicted version observes ``FileNotFoundError`` -- surfaced by
  the runtime as :class:`~repro.exceptions.OverwrittenError`, the same
  fault a parent-side read of an evicted version raises.

Fault-injection semantics are preserved: ``mark_corrupted`` is a
parent-side flag (reads happen in the parent before dispatch, so workers
never see flagged data), and ``corrupt_data`` mutates the segment bytes
*in place* when shapes allow, so silent corruption is visible to both
sides -- and to the checksum layer, which fingerprints the very same
views (:class:`repro.detect.checksum.SharedMemoryChecksumStore`).

A payload with no ndarrays (light-mode tokens, scalars) is stored as-is
and shipped to workers by pickle; ``descriptor`` returns ``None`` for it.
The same applies to *small* array payloads (below ``small_block_bytes``,
default :data:`SMALL_BLOCK_BYTES`): the segment machinery's syscall cost
dwarfs pickling a few KB, so fine-grain tiles ride the pickle path and
only payloads big enough to amortize an ``mmap`` get segments.
"""

from __future__ import annotations

import mmap
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Hashable, NamedTuple

import numpy as np

from repro.graph.taskspec import BlockRef
from repro.memory.allocator import AllocationPolicy
from repro.memory.blockstore import BlockStore

#: Segment layout aligns every array to this many bytes (cache line).
_ALIGN = 64

#: Default per-payload floor for shared-memory backing.  A payload whose
#: arrays total fewer bytes than this stays a plain value -- stored
#: as-is and shipped to workers by pickle -- because the segment
#: machinery (``shm_open`` + ``ftruncate`` + ``mmap`` on write, another
#: ``open`` + ``mmap`` in every attaching worker, ``unlink`` on
#: retirement) costs hundreds of microseconds of syscalls, while
#: pickling a few KB costs single-digit microseconds on each side.
#: Fine-grain tiles (the dispatch-overhead regime) are exactly the
#: payloads below this line.  Pass ``small_block_bytes=0`` to a backend
#: to force segments for everything (the unit tests of the segment
#: machinery itself do).
SMALL_BLOCK_BYTES = 64 * 1024

#: Directory POSIX shm segments appear under on Linux; ``None`` elsewhere
#: (the attach path then falls back to ``SharedMemory``).
_DEV_SHM = "/dev/shm" if os.path.isdir("/dev/shm") else None


class _ArraySlot(NamedTuple):
    """Placeholder for the ``index``-th array in a flattened payload."""

    index: int


class ArraySpec(NamedTuple):
    """Layout of one array inside a segment."""

    dtype: str
    shape: tuple
    offset: int


class ShmDescriptor(NamedTuple):
    """Everything a worker needs to rebuild a payload without a copy."""

    name: str
    """Segment name (``SharedMemory.name``)."""
    template: Any
    """The payload structure with arrays replaced by :class:`_ArraySlot`."""
    arrays: tuple
    """One :class:`ArraySpec` per flattened array."""


def _flatten(value: Any, out: list) -> Any:
    """Replace every ndarray in ``value`` (contiguified) with an
    :class:`_ArraySlot`, appending the arrays to ``out`` in order."""
    if isinstance(value, np.ndarray):
        out.append(np.ascontiguousarray(value))
        return _ArraySlot(len(out) - 1)
    if isinstance(value, tuple):
        return tuple(_flatten(v, out) for v in value)
    if isinstance(value, list):
        return [_flatten(v, out) for v in value]
    if isinstance(value, dict):
        return {k: _flatten(v, out) for k, v in value.items()}
    return value


def _rebuild(template: Any, views: list) -> Any:
    """Inverse of :func:`_flatten` with ``views`` standing in for arrays."""
    if isinstance(template, _ArraySlot):
        return views[template.index]
    if isinstance(template, tuple):
        return tuple(_rebuild(v, views) for v in template)
    if isinstance(template, list):
        return [_rebuild(v, views) for v in template]
    if isinstance(template, dict):
        return {k: _rebuild(v, views) for k, v in template.items()}
    return template


def _layout(arrays: list[np.ndarray]) -> tuple[list[int], int]:
    offsets: list[int] = []
    total = 0
    for a in arrays:
        total = -(-total // _ALIGN) * _ALIGN
        offsets.append(total)
        total += a.nbytes
    return offsets, total


def own_payload(value: Any) -> tuple[Any, int]:
    """``(owned_value, array_bytes)``: ``value`` with every ndarray that
    does not own its memory replaced by an owning copy.

    The zero-copy fetch path materializes arrays as views over a comm
    transport buffer; a consumer that *caches* the payload (the worker
    ``BlockCache``) must own the bytes so the transport buffer can go
    back to its pool -- this is the single copy the "copies-per-block
    <= 1" budget spends, and only when the payload is actually cached.
    Already-owning payloads pass through untouched.
    """
    arrays: list[np.ndarray] = []
    template = _flatten(value, arrays)
    if not arrays:
        return value, 0
    nbytes = sum(a.nbytes for a in arrays)
    if all(a.flags.owndata for a in arrays):
        return value, nbytes
    owned = [a if a.flags.owndata else a.copy() for a in arrays]
    return _rebuild(template, owned), nbytes


class _Segment:
    """One parent-owned shared-memory segment backing one block version."""

    __slots__ = ("shm", "descriptor", "nbytes", "_released")

    def __init__(self, shm: shared_memory.SharedMemory, descriptor: ShmDescriptor, nbytes: int):
        self.shm = shm
        self.descriptor = descriptor
        self.nbytes = nbytes
        self._released = False

    def dispose(self) -> bool:
        """Unlink the segment name; close the mapping if no live views
        reference it.  Returns False when views keep the mapping alive
        (the owner retries later -- the memory is freed at the latest
        when the last view dies and the process exits)."""
        if not self._released:
            self._released = True
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
        try:
            self.shm.close()
        except BufferError:
            return False
        return True


def materialize_segment(value: Any, small_bytes: int = 0) -> tuple[Any, _Segment | None]:
    """Copy ``value``'s arrays into a fresh segment; return the same
    structure rebuilt over zero-copy views plus the owning segment, or
    ``(value, None)`` when there is nothing to share -- or when the
    arrays total fewer than ``small_bytes`` bytes (payloads below the
    segment-worthiness floor stay plain values)."""
    arrays: list[np.ndarray] = []
    template = _flatten(value, arrays)
    if not arrays:
        return value, None
    if small_bytes and sum(a.nbytes for a in arrays) < small_bytes:
        return value, None
    offsets, total = _layout(arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    views: list[np.ndarray] = []
    specs: list[ArraySpec] = []
    for a, off in zip(arrays, offsets):
        v = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=off)
        v[...] = a
        views.append(v)
        specs.append(ArraySpec(a.dtype.str, tuple(a.shape), off))
    payload = _rebuild(template, views)
    seg = _Segment(shm, ShmDescriptor(shm.name, template, tuple(specs)), total)
    return payload, seg


# ---------------------------------------------------------------------------
# worker-side attach


class Attachment:
    """A read-only mapping of one segment, held open for a job's duration."""

    __slots__ = ("_mm", "_shm", "buf")

    def __init__(self, mm: mmap.mmap | None = None, shm: Any = None) -> None:
        self._mm = mm
        self._shm = shm
        self.buf: Any = mm if mm is not None else shm.buf

    def close(self) -> None:
        self.buf = None
        try:
            if self._mm is not None:
                self._mm.close()
            elif self._shm is not None:
                self._shm.close()
        except BufferError:
            # A view outlived the job (e.g. held by an in-flight reply);
            # the mapping is freed when the view dies or the worker exits.
            pass


def attach_readonly(name: str) -> Attachment:
    """Attach to segment ``name`` without registering with the resource
    tracker (the attaching side must never own cleanup).

    Raises ``FileNotFoundError`` when the segment was unlinked -- i.e.
    the version was evicted or rewritten after the descriptor was taken.
    """
    if _DEV_SHM is not None:
        fd = os.open(os.path.join(_DEV_SHM, name.lstrip("/")), os.O_RDONLY)
        try:
            mm = mmap.mmap(fd, 0, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        return Attachment(mm=mm)
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:  # pragma: no cover - non-Linux, pre-3.13 fallback
        shm = shared_memory.SharedMemory(name=name)
    return Attachment(shm=shm)


def attach_payload(desc: ShmDescriptor) -> tuple[Any, Attachment]:
    """Rebuild a payload from ``desc`` over a read-only attachment."""
    att = attach_readonly(desc.name)
    views = []
    for spec in desc.arrays:
        v = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=att.buf, offset=spec.offset)
        if v.flags.writeable:  # SharedMemory fallback path
            v.flags.writeable = False
        views.append(v)
    return _rebuild(desc.template, views), att


# ---------------------------------------------------------------------------
# the store backend


@dataclass
class ShmStats:
    """Segment-lifecycle counters (sizing and leak tests)."""

    segments_created: int = 0
    segments_released: int = 0
    bytes_current: int = 0
    bytes_peak: int = 0
    pickled_payloads: int = 0
    """Writes whose payload held no arrays (shipped by pickle instead)."""

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class SharedMemoryBackend:
    """Mixin over :class:`BlockStore` (or a subclass) that backs every
    array-bearing version with a parent-owned shared-memory segment.

    Cooperative-MRO: ``write``/``pin``/``corrupt_data`` transform the
    payload and delegate to ``super()``, so it composes with
    :class:`~repro.detect.checksum.ChecksumStore` (which then
    fingerprints the very views workers will read).

    Lock order: slot lock before ``_seg_lock``, never the reverse.
    """

    def __init__(
        self,
        policy: AllocationPolicy | None = None,
        small_block_bytes: int = SMALL_BLOCK_BYTES,
        **kwargs: Any,
    ) -> None:
        super().__init__(policy, **kwargs)
        self._small_block_bytes = max(0, small_block_bytes)
        self.shm_stats = ShmStats()
        self._segments: dict[Hashable, dict[int, _Segment]] = {}
        self._seg_lock = threading.Lock()
        self._zombies: list[_Segment] = []

    # -- producer side ------------------------------------------------------

    def write(self, ref: BlockRef, data: Any) -> None:
        payload, seg = materialize_segment(data, self._small_block_bytes)
        super().write(ref, payload)  # type: ignore[misc]
        self._install_segment(ref, seg)
        self._sweep_block(ref.block)

    def pin(self, ref: BlockRef, data: Any) -> None:
        payload, seg = materialize_segment(data, self._small_block_bytes)
        super().pin(ref, payload)  # type: ignore[misc]
        self._install_segment(ref, seg)

    def register_metrics(self, registry: Any) -> None:
        """Base-store gauges plus segment-lifecycle gauges."""
        super().register_metrics(registry)  # type: ignore[misc]
        for name in ("segments_created", "segments_released", "bytes_current", "bytes_peak"):
            registry.callback_gauge(
                f"repro_shm_{name}",
                lambda n=name: getattr(self.shm_stats, n),
                f"shared-memory backend stats.{name}",
            )

    # -- dispatch surface ---------------------------------------------------

    def descriptor(self, ref: BlockRef) -> ShmDescriptor | None:
        """The picklable shm descriptor for ``ref``, or ``None`` when the
        version is absent or not shm-backed (ship the payload by pickle)."""
        with self._seg_lock:
            per = self._segments.get(ref.block)
            seg = per.get(ref.version) if per else None
            return seg.descriptor if seg is not None else None

    # -- fault injection ----------------------------------------------------

    def corrupt_data(self, ref: BlockRef, mutate: Callable[[Any], Any]) -> bool:
        """Silent corruption that lands in the segment bytes, so worker
        processes observe exactly what parent-side readers observe."""

        def shm_mutate(payload: Any) -> Any:
            return self._corrupt_rewrite(ref, mutate(payload))

        return super().corrupt_data(ref, shm_mutate)  # type: ignore[misc]

    def _corrupt_rewrite(self, ref: BlockRef, new: Any) -> Any:
        arrays: list[np.ndarray] = []
        template = _flatten(new, arrays)
        with self._seg_lock:
            per = self._segments.get(ref.block)
            seg = per.get(ref.version) if per else None
            if (
                seg is not None
                and len(arrays) == len(seg.descriptor.arrays)
                and all(
                    a.dtype.str == s.dtype and tuple(a.shape) == s.shape
                    for a, s in zip(arrays, seg.descriptor.arrays)
                )
            ):
                # In-place: same segment, same descriptor, new bytes.
                views = []
                for a, s in zip(arrays, seg.descriptor.arrays):
                    v = np.ndarray(s.shape, dtype=np.dtype(s.dtype), buffer=seg.shm.buf, offset=s.offset)
                    v[...] = a
                    views.append(v)
                return _rebuild(template, views)
        # Shape/structure changed: give the version a fresh segment (or
        # a plain value, if the new payload is below the segment floor).
        payload, seg = materialize_segment(new, self._small_block_bytes)
        self._install_segment(ref, seg)
        return payload

    # -- lifecycle ----------------------------------------------------------

    def _install_segment(self, ref: BlockRef, seg: _Segment | None) -> None:
        retired: _Segment | None
        with self._seg_lock:
            per = self._segments.setdefault(ref.block, {})
            retired = per.pop(ref.version, None)
            if seg is not None:
                per[ref.version] = seg
                st = self.shm_stats
                st.segments_created += 1
                st.bytes_current += seg.nbytes
                if st.bytes_current > st.bytes_peak:
                    st.bytes_peak = st.bytes_current
            else:
                self.shm_stats.pickled_payloads += 1
        if retired is not None:
            self._retire(retired)

    def _sweep_block(self, block: Hashable) -> None:
        """Release segments of versions the policy evicted from ``block``."""
        slot = self._slot(block)  # type: ignore[attr-defined]
        with slot.lock:
            live = set(slot.versions) | set(slot.pinned)
        dead: list[_Segment] = []
        with self._seg_lock:
            per = self._segments.get(block)
            if not per:
                return
            for v in [v for v in per if v not in live]:
                dead.append(per.pop(v))
        for seg in dead:
            self._retire(seg)

    def _retire(self, seg: _Segment) -> None:
        done = seg.dispose()
        with self._seg_lock:
            st = self.shm_stats
            st.segments_released += 1
            st.bytes_current -= seg.nbytes
            if not done:
                self._zombies.append(seg)

    def close(self) -> None:
        """Unlink and close every segment this store owns.  Idempotent;
        call when the run's results have been extracted."""
        with self._seg_lock:
            segs = [s for per in self._segments.values() for s in per.values()]
            segs.extend(self._zombies)
            self._segments.clear()
            self._zombies.clear()
            self.shm_stats.bytes_current = 0
        leftovers = [s for s in segs if not s.dispose()]
        with self._seg_lock:
            self._zombies.extend(leftovers)

    def __del__(self) -> None:  # best-effort: tests/examples call close()
        try:
            self.close()
        except Exception:
            pass


class SharedMemoryBlockStore(SharedMemoryBackend, BlockStore):
    """`BlockStore` whose array payloads live in shared memory."""
