"""Observability: structured event tracing for the FT scheduler.

One substrate, many views:

* :class:`EventLog` / :class:`Event` / :class:`EventKind` -- the
  low-overhead structured log every scheduler, runtime, and the fault
  injector emit through (``NULL_LOG`` keeps fault-free runs free).
* :mod:`repro.obs.replay` -- derive :class:`ExecutionTrace` counters
  back out of the log (the one-source-of-truth consistency check).
* :mod:`repro.obs.metrics` -- per-worker steal/park/busy breakdown.
* :mod:`repro.obs.report` -- per-fault recovery-cascade timelines.
* :mod:`repro.harness.export` -- Chrome trace-event JSON and JSONL.
* ``python -m repro trace`` (:mod:`repro.obs.cli`) -- run an app with
  tracing and emit/inspect all of the above.

See docs/OBSERVABILITY.md for the event schema and life-number
semantics.
"""

from repro.obs.events import NULL_LOG, Event, EventKind, EventLog, NullEventLog, events_in_order
from repro.obs.metrics import WorkerMetrics, format_worker_metrics, worker_metrics
from repro.obs.replay import assert_consistent, replay_summary, replay_trace, verify_consistency
from repro.obs.report import RecoveryCascade, format_recovery_timeline, recovery_timeline

__all__ = [
    "Event",
    "EventKind",
    "EventLog",
    "NullEventLog",
    "NULL_LOG",
    "events_in_order",
    "replay_trace",
    "replay_summary",
    "verify_consistency",
    "assert_consistent",
    "WorkerMetrics",
    "worker_metrics",
    "format_worker_metrics",
    "RecoveryCascade",
    "recovery_timeline",
    "format_recovery_timeline",
]
