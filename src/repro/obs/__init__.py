"""Observability: structured event tracing + live telemetry.

One substrate, many views:

* :class:`EventLog` / :class:`Event` / :class:`EventKind` -- the
  low-overhead structured log every scheduler, runtime, and the fault
  injector emit through (``NULL_LOG`` keeps fault-free runs free).
* :mod:`repro.obs.live` -- the *while-it-runs* side: a thread-safe
  :class:`MetricsRegistry` (counters / gauges / histograms), a sampling
  :class:`MetricsCollector`, and a Prometheus-text
  :class:`MetricsServer` (``NULL_METRICS`` keeps unmetered runs free).
* :mod:`repro.obs.spans` -- worker-attributed measured intervals
  decoded from ``SPAN`` events (kernel, shm attach, serialization,
  dispatch round trips, recovery, detection).
* :mod:`repro.obs.attribution` -- fold events + spans into a wall-clock
  budget: where every worker-second of the makespan went.
* :mod:`repro.obs.replay` -- derive :class:`ExecutionTrace` counters
  back out of the log (the one-source-of-truth consistency check).
* :mod:`repro.obs.metrics` -- per-worker steal/park/busy breakdown.
* :mod:`repro.obs.report` -- per-fault recovery-cascade timelines.
* :mod:`repro.harness.export` -- Chrome trace-event JSON and JSONL.
* ``python -m repro trace`` (:mod:`repro.obs.cli`) -- run an app with
  tracing and emit/inspect all of the above.
* ``python -m repro top`` (:mod:`repro.obs.top`) -- real-time monitor
  over a live run, plus the post-run attribution table.

See docs/OBSERVABILITY.md for the event schema and life-number
semantics.
"""

from repro.obs.attribution import (
    AttributionReport,
    WorkerBudget,
    attribute_run,
    format_attribution,
)
from repro.obs.events import (
    NULL_LOG,
    Event,
    EventKind,
    EventLog,
    LateEmitError,
    NullEventLog,
    SealedLogError,
    events_in_order,
)
from repro.obs.live import (
    NULL_METRICS,
    MetricsCollector,
    MetricsRegistry,
    MetricsServer,
    NullMetricsRegistry,
    render_prometheus,
)
from repro.obs.metrics import WorkerMetrics, format_worker_metrics, worker_metrics
from repro.obs.replay import assert_consistent, replay_summary, replay_trace, verify_consistency
from repro.obs.report import RecoveryCascade, format_recovery_timeline, recovery_timeline
from repro.obs.spans import Span, spans_of, wall_by_phase, wall_by_worker_phase

__all__ = [
    "Event",
    "EventKind",
    "EventLog",
    "NullEventLog",
    "NULL_LOG",
    "LateEmitError",
    "SealedLogError",
    "events_in_order",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "MetricsCollector",
    "MetricsServer",
    "render_prometheus",
    "Span",
    "spans_of",
    "wall_by_phase",
    "wall_by_worker_phase",
    "AttributionReport",
    "WorkerBudget",
    "attribute_run",
    "format_attribution",
    "replay_trace",
    "replay_summary",
    "verify_consistency",
    "assert_consistent",
    "WorkerMetrics",
    "worker_metrics",
    "format_worker_metrics",
    "RecoveryCascade",
    "recovery_timeline",
    "format_recovery_timeline",
]
