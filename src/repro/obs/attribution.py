"""Overhead attribution: fold a run's events + spans into a wall-clock budget.

Answers "where did the wall-clock go?" for a finished instrumented run:
every worker-second of ``makespan x workers`` is assigned to one of

==============  ========================================================
``kernel``      user compute (worker-measured kernel spans; on in-process
                runtimes, the COMPUTE bracket minus detection time)
``dispatch``    remote-compute overhead: the parent-side dispatch round
                trip minus the kernel and queued time inside it (input
                ship, shm attach, output serialization, pipe latency)
``queued``      pipelining backlog: time a dispatched job sat behind its
                channel-mates in the worker's inbound window (a
                deliberate throughput/latency trade, not dispatch cost)
``detection``   SDC detection work (replication spans)
``recovery``    the FT scheduler's RECOVERTASK routine
``bookkeeping`` scheduler frame overhead inside busy time not covered
                above (join/notify/lock traffic, context reads/writes,
                spawn, trace counters)
``steal_park``  measured idle + work-finding episodes: PARK -> UNPARK
                sleeps plus the worker_loop span's residue over busy +
                parked (pop/steal probes, quiescence checks, GIL waits
                between frames)
``other``       unattributed residue (thread start/stop outside the
                worker loop, measurement skew)
==============  ========================================================

The *coverage* of the report is the fraction of total worker-seconds
attributed to a measured category (everything but ``other``).  Busy time
comes exactly from :class:`~repro.runtime.api.RunResult` and idle
episodes from PARK/UNPARK events, so coverage on a real threaded or
process-pool run should exceed 0.95 -- the acceptance bar the tests
assert.

The per-life view splits kernel/bracket time by task incarnation:
time spent computing incarnations that were later replaced (or faulted)
is *wasted work*, the live cost of the paper's re-execution-based
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.obs.events import Event, EventKind, events_in_order
from repro.obs.spans import spans_of
from repro.runtime.api import RunResult

__all__ = [
    "CATEGORIES",
    "WorkerBudget",
    "AttributionReport",
    "attribute_run",
    "format_attribution",
]

#: Budget categories, in presentation order.  ``other`` is the
#: unattributed residue and never counts toward coverage.
CATEGORIES: tuple[str, ...] = (
    "kernel",
    "dispatch",
    "queued",
    "detection",
    "recovery",
    "bookkeeping",
    "steal_park",
    "other",
)


@dataclass
class WorkerBudget:
    """One worker's share of the wall-clock budget."""

    worker: int
    total: float
    """Worker-seconds available: the run's makespan."""
    busy: float
    """Frame-execution time (exact, from RunResult)."""
    categories: dict[str, float] = field(default_factory=dict)
    phase_detail: dict[str, float] = field(default_factory=dict)
    """Raw span sums per phase (attach/serialize visible here even
    though the budget folds them into ``dispatch``)."""


@dataclass
class AttributionReport:
    makespan: float
    workers: int
    total: float
    """``makespan * workers`` -- the full budget."""
    categories: dict[str, float]
    per_worker: list[WorkerBudget]
    per_life: dict[tuple[Hashable, int], float]
    """Kernel/bracket seconds per (key, life) incarnation."""
    wasted: float
    """Seconds spent computing incarnations that were replaced or
    faulted -- the price of re-execution-based recovery."""
    dispatch_count: int
    dispatch_mean: float
    """Mean parent-side dispatch round trip (seconds/task); the number
    PERFORMANCE.md's dispatch-overhead claim is derived from."""
    dispatch_overhead_mean: float
    """Mean non-kernel share of the round trip (seconds/task)."""

    @property
    def coverage(self) -> float:
        """Fraction of the budget attributed to a measured category."""
        if self.total <= 0:
            return 1.0
        other = self.categories.get("other", 0.0)
        return max(0.0, min(1.0, 1.0 - other / self.total))


def _bracket_times(
    events: Sequence[Event],
) -> tuple[dict[int, float], dict[tuple[Hashable, int], float], dict[tuple[Hashable, int], bool]]:
    """COMPUTE_BEGIN .. COMPUTE_END/COMPUTE_FAULT durations.

    Returns per-worker bracket seconds, per-(key, life) bracket seconds,
    and a per-incarnation "ended in fault" flag.  Brackets left open
    (crash teardown) are dropped -- their time lands in ``other``.
    """
    per_worker: dict[int, float] = {}
    per_life: dict[tuple[Hashable, int], float] = {}
    faulted: dict[tuple[Hashable, int], bool] = {}
    open_by_worker: dict[int, tuple[Hashable, int, float]] = {}
    for e in events:
        if e.kind is EventKind.COMPUTE_BEGIN:
            open_by_worker[e.worker] = (e.key, e.life, e.t)
        elif e.kind in (EventKind.COMPUTE_END, EventKind.COMPUTE_FAULT):
            opened = open_by_worker.pop(e.worker, None)
            if opened is None or opened[0] != e.key:
                continue
            dt = max(0.0, e.t - opened[2])
            per_worker[e.worker] = per_worker.get(e.worker, 0.0) + dt
            lk = (e.key, e.life)
            per_life[lk] = per_life.get(lk, 0.0) + dt
            if e.kind is EventKind.COMPUTE_FAULT:
                faulted[lk] = True
    return per_worker, per_life, faulted


def _park_times(events: Sequence[Event], t_end: float) -> dict[int, float]:
    """PARK -> UNPARK episode seconds per worker; an episode still open
    at the end of the trace runs to ``t_end`` (the worker parked and
    then quiesced)."""
    parked: dict[int, float] = {}
    open_park: dict[int, float] = {}
    for e in events:
        if e.kind is EventKind.PARK:
            open_park[e.worker] = e.t
        elif e.kind is EventKind.UNPARK:
            t0 = open_park.pop(e.worker, None)
            if t0 is not None:
                parked[e.worker] = parked.get(e.worker, 0.0) + max(0.0, e.t - t0)
    for worker, t0 in open_park.items():
        parked[worker] = parked.get(worker, 0.0) + max(0.0, t_end - t0)
    return parked


def attribute_run(events: Iterable[Event], run: RunResult) -> AttributionReport:
    """Fold ``events`` (one instrumented run) and its
    :class:`~repro.runtime.api.RunResult` into an
    :class:`AttributionReport`."""
    events = events_in_order(events)
    workers = run.workers
    makespan = run.makespan
    total = makespan * workers
    busy = list(run.busy_time) if run.busy_time else [0.0] * workers

    t_end = max((e.t for e in events), default=0.0)
    bracket_w, bracket_life, faulted = _bracket_times(events)
    parked = _park_times(events, t_end)

    span_w: dict[int, dict[str, float]] = {}
    dispatch_walls: list[float] = []
    kernel_life: dict[tuple[Hashable, int], float] = {}
    run_window: tuple[float, float] | None = None
    loop_windows: dict[int, tuple[float, float]] = {}
    for s in spans_of(events):
        if s.phase == "run":
            if s.t0 is not None:
                run_window = (s.t0, s.t0 + s.wall)
            continue  # global budget window, not a worker's time
        per = span_w.setdefault(s.worker, {})
        per[s.phase] = per.get(s.phase, 0.0) + s.wall
        if s.phase == "kernel":
            lk = (s.key, s.life)
            kernel_life[lk] = kernel_life.get(lk, 0.0) + s.wall
        elif s.phase == "dispatch":
            dispatch_walls.append(s.wall)
        elif s.phase == "worker_loop" and s.t0 is not None:
            lo, hi = loop_windows.get(s.worker, (s.t0, s.t0 + s.wall))
            loop_windows[s.worker] = (min(lo, s.t0), max(hi, s.t0 + s.wall))

    per_worker: list[WorkerBudget] = []
    agg = {c: 0.0 for c in CATEGORIES}
    for w in range(workers):
        spans = span_w.get(w, {})
        b = busy[w] if w < len(busy) else 0.0
        kernel_spans = spans.get("kernel", 0.0)
        dispatch_spans = spans.get("dispatch", 0.0)
        queued = spans.get("queued", 0.0)
        detect = spans.get("detect", 0.0)
        recov = spans.get("recovery", 0.0)
        bracket = bracket_w.get(w, 0.0)
        if dispatch_spans > 0.0:
            kernel = kernel_spans
            dispatch = max(0.0, dispatch_spans - kernel_spans - queued)
        else:
            # In-process compute: the COMPUTE bracket *is* the kernel
            # (minus any detection work that ran inside it).
            kernel = max(0.0, bracket - detect)
            dispatch = 0.0
        bookkeeping = max(0.0, b - kernel - dispatch - queued - detect - recov)
        parked_w = parked.get(w, 0.0)
        # The runtime's worker_loop span covers the whole in-loop
        # lifetime; what it holds beyond busy + parked is the
        # work-*finding* cost (pop/steal probes, quiescence checks, GIL
        # waits between frames), which belongs with steal/park overhead.
        loop = spans.get("worker_loop", 0.0)
        search = max(0.0, loop - b - parked_w)
        steal_park = parked_w + search
        # Thread start/stop latency: the measured gap between the run's
        # budget window and this worker's loop window is runtime
        # management overhead -- bookkeeping, not mystery time.
        startup = 0.0
        if run_window is not None and w in loop_windows:
            l0, l1 = loop_windows[w]
            startup = max(0.0, l0 - run_window[0]) + max(0.0, run_window[1] - l1)
        bookkeeping += startup
        other = max(0.0, makespan - b - steal_park - startup)
        cats = {
            "kernel": kernel,
            "dispatch": dispatch,
            "queued": queued,
            "detection": detect,
            "recovery": recov,
            "bookkeeping": bookkeeping,
            "steal_park": steal_park,
            "other": other,
        }
        for c, v in cats.items():
            agg[c] += v
        per_worker.append(
            WorkerBudget(worker=w, total=makespan, busy=b, categories=cats, phase_detail=spans)
        )

    # Per-life waste: an incarnation's time is wasted if the key was later
    # recovered past it, or its own compute faulted.
    per_life = dict(kernel_life) if kernel_life else dict(bracket_life)
    final_life: dict[Hashable, int] = {}
    for (key, life) in per_life:
        if key is not None and life > final_life.get(key, -1):
            final_life[key] = life
    wasted = sum(
        secs
        for (key, life), secs in per_life.items()
        if life < final_life.get(key, life) or faulted.get((key, life), False)
    )

    n_disp = len(dispatch_walls)
    mean_disp = sum(dispatch_walls) / n_disp if n_disp else 0.0
    total_kernel_spans = sum(p.get("kernel", 0.0) for p in span_w.values())
    # Queued time is inside the dispatch bracket but is pipelining
    # backlog (the job waiting behind its channel-mates), not a cost the
    # dispatch machinery imposes -- subtract it like kernel time.
    total_queued_spans = sum(p.get("queued", 0.0) for p in span_w.values())
    mean_overhead = (
        (sum(dispatch_walls) - total_kernel_spans - total_queued_spans) / n_disp
        if n_disp
        else 0.0
    )

    return AttributionReport(
        makespan=makespan,
        workers=workers,
        total=total,
        categories=agg,
        per_worker=per_worker,
        per_life=per_life,
        wasted=wasted,
        dispatch_count=n_disp,
        dispatch_mean=mean_disp,
        dispatch_overhead_mean=max(0.0, mean_overhead),
    )


def _pct(v: float, total: float) -> str:
    return f"{100.0 * v / total:5.1f}%" if total > 0 else "  n/a"


def format_attribution(report: AttributionReport) -> str:
    """Human-readable budget table (the tail of ``python -m repro top``)."""
    lines = [
        "wall-clock budget "
        f"(makespan {report.makespan * 1e3:.1f} ms x {report.workers} workers "
        f"= {report.total * 1e3:.1f} ms; coverage {report.coverage * 100:.1f}%)",
        f"  {'category':<12} {'seconds':>10} {'share':>7}",
    ]
    for c in CATEGORIES:
        v = report.categories.get(c, 0.0)
        lines.append(f"  {c:<12} {v:>10.4f} {_pct(v, report.total):>7}")
    lines.append("per-worker (busy / kernel / dispatch / steal_park, ms):")
    for wb in report.per_worker:
        c = wb.categories
        lines.append(
            f"  worker {wb.worker:<3} {wb.busy * 1e3:8.1f} / {c['kernel'] * 1e3:8.1f} / "
            f"{c['dispatch'] * 1e3:8.1f} / {c['steal_park'] * 1e3:8.1f}"
        )
    if report.dispatch_count:
        lines.append(
            f"dispatch: {report.dispatch_count} round trips, mean "
            f"{report.dispatch_mean * 1e3:.3f} ms/task "
            f"({report.dispatch_overhead_mean * 1e3:.3f} ms/task non-kernel overhead)"
        )
    if report.wasted > 0:
        lines.append(
            f"wasted work (replaced/faulted incarnations): {report.wasted * 1e3:.1f} ms"
        )
    return "\n".join(lines)
