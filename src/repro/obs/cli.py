"""``python -m repro trace``: run an app with tracing, emit artifacts.

One command covers the whole observability loop: build a benchmark
instance, optionally plan and inject faults, execute it under the FT (or
baseline) scheduler with a bound :class:`~repro.obs.events.EventLog`,
verify the numerical result, then

* print the trace summary, the per-worker metrics table, and the
  per-fault recovery timeline;
* check that the event log replays to the live counters (``--check``,
  on by default for unbounded logs);
* write a Chrome trace-event JSON (``--chrome``) and/or a JSONL event
  dump (``--jsonl``).

Examples::

    python -m repro trace cholesky --chrome trace.json
    python -m repro trace lu --runtime threaded --workers 8 --jsonl ev.jsonl
    python -m repro trace fw --no-faults --report
    python -m repro trace lcs --phase before_compute --count 4 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES, make_app
from repro.obs.events import EventLog
from repro.obs.metrics import format_worker_metrics, worker_metrics
from repro.obs.replay import verify_consistency
from repro.obs.report import format_recovery_timeline, recovery_timeline


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("app", choices=APP_NAMES, help="benchmark to run")
    ap.add_argument("--scale", choices=("tiny", "default", "large"), default="tiny",
                    help="instance scale (default: tiny)")
    ap.add_argument("--runtime", choices=("inline", "sim", "threaded"), default="sim",
                    help="executor (default: sim = virtual-time work stealing)")
    ap.add_argument("--workers", type=int, default=4, help="worker count (sim/threaded)")
    ap.add_argument("--seed", type=int, default=0, help="runtime + fault-plan seed")
    ap.add_argument("--scheduler", choices=("ft", "nabbit"), default="ft",
                    help="ft (fault-tolerant) or nabbit (baseline; implies --no-faults)")
    ap.add_argument("--no-faults", action="store_true", help="fault-free run")
    ap.add_argument("--phase", choices=("before_compute", "after_compute", "after_notify"),
                    default="after_compute", help="fault lifetime point")
    ap.add_argument("--task-type", default="v=rand", help="victim class (v=0/v=rand/v=last)")
    ap.add_argument("--count", type=int, default=2, help="target implied re-executions")
    ap.add_argument("--capacity", type=int, default=None,
                    help="ring-buffer capacity (default: unbounded)")
    ap.add_argument("--chrome", metavar="PATH", default=None,
                    help="write a chrome://tracing trace-event JSON file")
    ap.add_argument("--jsonl", metavar="PATH", default=None,
                    help="write the raw event stream as JSON lines")
    ap.add_argument("--report", action="store_true",
                    help="print every event (seq, t, worker, kind, key, life)")
    ap.add_argument("--no-check", action="store_true",
                    help="skip the event-log vs counters consistency check")
    return ap


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.capacity is not None and args.capacity < 1:
        parser.error("--capacity must be >= 1 (omit it for an unbounded log)")
    from repro.core import FTScheduler, NabbitScheduler
    from repro.faults import FaultInjector, plan_faults
    from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
    from repro.runtime.tracing import ExecutionTrace

    log = EventLog(capacity=args.capacity)
    if args.runtime == "inline":
        runtime = InlineRuntime()
    elif args.runtime == "threaded":
        runtime = ThreadedRuntime(workers=args.workers, seed=args.seed, event_log=log)
    else:
        runtime = SimulatedRuntime(workers=args.workers, seed=args.seed, event_log=log)

    app = make_app(args.app, scale=args.scale)
    trace = ExecutionTrace()
    baseline = args.scheduler == "nabbit"
    faulty = not (args.no_faults or baseline)
    if baseline:
        store = app.make_store(False)
        sched = NabbitScheduler(app, runtime, store=store, trace=trace, event_log=log)
    else:
        store = app.make_store(True)
        hooks = None
        if faulty:
            plan = plan_faults(
                app, phase=args.phase, task_type=args.task_type,
                count=args.count, seed=args.seed,
            )
            hooks = FaultInjector(plan, app, store, trace)
        sched = FTScheduler(
            app, runtime, store=store, hooks=hooks, trace=trace, event_log=log,
        )
    result = sched.run()
    app.verify(store)
    events = log.events

    unit = "s" if args.runtime == "threaded" else "vt"
    print(f"{args.app}/{args.scale} on {args.runtime} "
          f"(P={runtime.workers}, seed={args.seed}, scheduler={sched.name}): "
          f"makespan={result.makespan:.6g}{unit}, verified ok")
    print(f"events recorded: {len(events)}"
          + (f" (dropped {log.dropped} to the ring buffer)" if log.dropped else ""))

    print("\n== trace summary ==")
    for name, value in trace.summary().items():
        print(f"  {name:>20}: {value}")

    if not args.no_check and log.dropped == 0:
        diff = verify_consistency(events, trace)
        if diff:
            detail = ", ".join(f"{k}: events={a} trace={b}" for k, (a, b) in sorted(diff.items()))
            print(f"\nCONSISTENCY CHECK FAILED: {detail}", file=sys.stderr)
            return 1
        print("\nconsistency check: event-log-derived counters match the live trace")
    elif log.dropped:
        print("\nconsistency check skipped: ring buffer dropped events")

    print("\n== per-worker metrics ==")
    print(format_worker_metrics(worker_metrics(events, run=result.run)))

    if faulty or trace.faults_observed:
        print("\n== recovery timeline ==")
        print(format_recovery_timeline(recovery_timeline(events)))

    if args.report:
        print("\n== event stream ==")
        for e in events:
            extra = " ".join(f"{k}={v!r}" for k, v in e.data.items())
            print(f"  [{e.seq:>5}] t={e.t:<12.6g} w{e.worker} {e.kind.value:<16} "
                  f"key={e.key!r} life={e.life}" + (f" {extra}" if extra else ""))

    rc = 0
    if args.chrome:
        from repro.harness.export import write_chrome_trace

        try:
            write_chrome_trace(events, args.chrome)
        except OSError as exc:
            print(f"\nerror: cannot write chrome trace to {args.chrome}: {exc}", file=sys.stderr)
            rc = 1
        else:
            print(f"\nchrome trace written to {args.chrome} (open in chrome://tracing or Perfetto)")
    if args.jsonl:
        from repro.harness.export import write_events_jsonl

        try:
            write_events_jsonl(events, args.jsonl)
        except OSError as exc:
            print(f"error: cannot write event JSONL to {args.jsonl}: {exc}", file=sys.stderr)
            rc = 1
        else:
            print(f"event JSONL written to {args.jsonl}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
