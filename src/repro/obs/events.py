"""Structured event log: the substrate of the observability layer.

The paper's Section V bounds and Section VI experiments are all *a
posteriori* -- they depend on what actually happened at run time: which
incarnation of which task recovered, when, on which worker, and what the
recovery scan cost.  :class:`ExecutionTrace` aggregates those facts into
counters; this module records the *events themselves* so the counters
(and much more: Chrome traces, worker metrics, recovery timelines) can
be derived after the fact from one source of truth.

Design constraints:

* **Low overhead when off.**  Schedulers and runtimes hold a
  :data:`NULL_LOG` by default and guard every emission with a cached
  ``log is not NULL_LOG`` identity check, so a fault-free benchmark run
  pays one local boolean test per would-be event.
* **Low contention when on.**  An unbounded log appends to *per-thread
  buffers* (no lock on the emission path); ordering comes from a shared
  sequence counter whose ``next()`` is a single GIL-atomic operation.
  The buffers are merged back into one totally-ordered sequence -- by
  that counter, never by timestamp (the simulator emits with
  non-monotone virtual times) -- when the log is *read*, which analysis
  and replay only do at quiescence.  The merged order is exactly the
  order a single-lock log would have recorded: the counter linearizes
  emissions, and any cross-thread happens-before edge (lock release ->
  acquire on a task record) orders the corresponding ``next()`` calls.
* **Worker attribution and timestamps come from the runtime.**  Each
  runtime exposes ``obs_now()`` (virtual time on the simulator,
  wall-clock seconds since ``execute()`` on the threaded runtime,
  accumulated charge inline) and ``obs_worker()``; the log binds to them
  via :meth:`EventLog.bind_runtime`.
* **Incarnations are distinguishable.**  Every task-scoped event carries
  the task key *and* its life number, so a recovered task's second
  incarnation never aliases its first.
* **Bounded memory on demand.**  ``EventLog(capacity=n)`` keeps only the
  most recent ``n`` events in a ring buffer (``dropped`` counts the
  rest); eviction needs a global view, so capacity logs keep the classic
  single-lock append path.  The default is unbounded, which is what the
  replay/consistency machinery in :mod:`repro.obs.replay` requires.
  ``EventLog(buffered=False)`` forces the single-lock path on an
  unbounded log -- the reference implementation that the buffered-log
  parity tests compare against.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Hashable, Iterable, Iterator


class EventKind(str, Enum):
    """Lifecycle vocabulary of one task-graph execution.

    Scheduler-side kinds map 1:1 onto the paper's routines (see
    docs/OBSERVABILITY.md for the full schema); runtime-side kinds
    (steal/park/unpark) describe the work-stealing substrate.
    """

    # -- task lifecycle (both schedulers) ------------------------------------
    TASK_CREATED = "task_created"
    """Task record inserted into the task map (INSERTTASKIFABSENT won)."""
    COMPUTE_BEGIN = "compute_begin"
    """COMPUTE invoked; pairs with COMPUTE_END or COMPUTE_FAULT."""
    COMPUTE_END = "compute_end"
    """COMPUTE returned without a detected fault."""
    TASK_COMPUTED = "task_computed"
    """Status published as Computed; successors may now be notified."""
    TASK_COMPLETED = "task_completed"
    """Notify array drained to stability; task reached Completed."""
    NOTIFY = "notify"
    """Join-counter decrement performed (bit successfully unset)."""
    NOTIFY_STALE = "notify_stale"
    """Notification dropped: the predecessor's bit was already clear."""

    # -- fault path (FT scheduler + injector) --------------------------------
    FAULT_INJECTED = "fault_injected"
    """The injector fired a planned fault event."""
    FAULT_OBSERVED = "fault_observed"
    """A scheduler catch block observed a detected-fault exception."""
    COMPUTE_FAULT = "compute_fault"
    """COMPUTE raised a detected fault; carries the attributed source."""
    RECOVERY = "recovery"
    """RECOVERTASK installed a new incarnation (life = the new life)."""
    RECOVERY_SKIPPED = "recovery_skipped"
    """RECOVERTASKONCE suppressed a duplicate recovery (Guarantee 1)."""
    RESET = "reset"
    """RESETNODE re-armed a consumer whose input was faulty."""
    REINIT_SCAN = "reinit_scan"
    """REINITNOTIFYENTRY examined one successor record (scan cost unit)."""
    REINIT = "reinit"
    """REINITNOTIFYENTRY re-enqueued a still-waiting successor."""
    STALE_FRAME = "stale_frame"
    """A frame of a replaced incarnation was dropped (life mismatch)."""

    # -- silent-fault detection (repro.detect) -------------------------------
    SDC_INJECTED = "sdc_injected"
    """A silent-fault injector mutated block payloads without setting any
    corruption flag; only a detector can surface it."""
    SDC_DETECTED = "sdc_detected"
    """A detector (checksum verification or task replication) caught a
    silent corruption and converted it into the detected-fault path."""
    SDC_ESCAPED = "sdc_escaped"
    """Post-run accounting: an injected silent fault was never detected
    (the run may have produced a wrong result)."""
    REPLICA_RUN = "replica_run"
    """The replication detector re-executed a task for output comparison."""

    # -- runtime substrate ---------------------------------------------------
    STEAL = "steal"
    """A thief took a frame from a victim's deque top."""
    PARK = "park"
    """A worker found nothing to run or steal and went idle."""
    UNPARK = "unpark"
    """A previously idle worker found work again."""
    WORKER_DOWN = "worker_down"
    """A compute worker *process* died mid-task (ProcessRuntime); the
    dispatch surfaces as a WorkerCrashError on the key it was running."""
    WORKER_UP = "worker_up"
    """A replacement compute worker *process* joined the pool
    (ProcessRuntime); ``data['pid']`` carries the new pid.  Pairs with
    WORKER_DOWN so pool-health timelines can show both transitions."""
    CONNECT = "connect"
    """A comm channel to a remote worker was established
    (ClusterRuntime); ``data['addr']`` names the peer address."""
    DISCONNECT = "disconnect"
    """A comm channel to a remote worker was lost -- closed, severed, or
    heartbeat-silent; ``data['addr']`` names the peer and
    ``data['reason']`` says how it died.  Usually followed by a
    WORKER_DOWN for the task the connection was carrying."""
    FETCH = "fetch"
    """A remote worker lazily fetched a block payload over the comm
    (ClusterRuntime); ``data['block']``/``data['version']`` identify the
    version and ``data['nbytes']`` its shipped size.  Absence of a FETCH
    for a dispatched input means the worker's versioned cache hit."""

    # -- telemetry -----------------------------------------------------------
    SPAN = "span"
    """A measured interval, attributed to the emitting worker.
    ``data['phase']`` names what was measured (``kernel``, ``attach``,
    ``serialize``, ``dispatch``, ``recovery``, ``detect``) and
    ``data['wall']`` is its duration in seconds.  Spans measured in the
    *parent* process (dispatch, recovery, detect) add ``data['t0']``,
    their start on the log's clock; worker-process spans ship durations
    only (the two processes do not share a clock epoch), and kernel
    spans add ``data['cpu']`` (worker process-CPU seconds)."""


@dataclass(slots=True, frozen=True)
class Event:
    """One timestamped, worker-attributed lifecycle event."""

    seq: int
    """Global emission order (total, gap-free for an unbounded log)."""
    t: float
    """Runtime time: virtual on the simulator, seconds on the threaded
    runtime, accumulated charge inline."""
    worker: int
    """Worker that emitted the event."""
    kind: EventKind
    key: Hashable = None
    """Task key, for task-scoped events."""
    life: int = 0
    """Incarnation number of ``key`` at emission (0 = not task-scoped)."""
    data: dict[str, Any] = field(default_factory=dict)
    """Kind-specific extras: fault source, exception type, successor key,
    victim worker, deque depth, phase ..."""

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe flat dict (keys stringified via repr when needed)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "t": self.t,
            "worker": self.worker,
            "kind": self.kind.value,
        }
        if self.key is not None:
            out["key"] = _json_key(self.key)
        if self.life:
            out["life"] = self.life
        for name, value in self.data.items():
            out[name] = _json_key(value) if name in _KEY_FIELDS else value
        return out


#: ``Event.data`` fields that hold task keys and need key serialization.
_KEY_FIELDS = frozenset({"source", "successor", "src", "target"})


def _json_key(key: Any) -> Any:
    """Task keys are arbitrary hashables; keep JSON-native ones, repr the rest."""
    if key is None or isinstance(key, (str, int, float, bool)):
        return key
    return repr(key)


def _seq_of(event: Event) -> int:
    return event.seq


class LateEmitError(RuntimeError):
    """An emission arrived after the merged total order was already
    observed *and* would have to be inserted before its end.

    The buffered log's merge is only stable if every new event extends
    the previously drained prefix.  An event whose sequence number falls
    inside that prefix (a worker thread that kept emitting after
    quiescence was declared) would silently reorder history for any
    consumer that drained twice -- so the next drain raises instead."""


class SealedLogError(RuntimeError):
    """An emission arrived after :meth:`EventLog.seal` closed the log."""


class EventLog:
    """Append-only, thread-safe event collector bound to a runtime clock.

    Unbounded logs (the default) take the *buffered* emission path: each
    emitting thread appends to its own list, and the only shared state an
    emission touches is ``next()`` on an :func:`itertools.count` -- a
    single C-level call that is atomic under the GIL and therefore a
    linearization point.  Merging the buffers by that sequence number at
    read time reconstructs exactly the total order a single-lock log
    would have produced (see the module docstring for the argument).
    Capacity-bounded logs and ``buffered=False`` use the single lock.
    """

    enabled = True
    """Emission guard: hot paths cache ``log is not NULL_LOG`` (or read
    this flag) before building an event.  Always True here; the
    :class:`NullEventLog` overrides it."""

    def __init__(self, capacity: int | None = None, buffered: bool = True) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._buffered = buffered and capacity is None
        self._events: deque[Event] | list[Event]
        self._events = deque(maxlen=capacity) if capacity is not None else []
        self._lock = threading.Lock()
        self._seq = 0
        self._count = itertools.count()
        self._local = threading.local()
        self._buffers: list[list[Event]] = []
        self._merged: list[Event] = []
        self._clock: Callable[[], float] = time.perf_counter
        self._worker: Callable[[], int] = _zero
        self._epoch = time.perf_counter()
        self._sealed = False

    # -- binding -----------------------------------------------------------------

    def bind_runtime(self, runtime: Any) -> None:
        """Adopt ``runtime``'s notion of time and worker identity.

        Any object with ``obs_now()`` / ``obs_worker()`` works; missing
        methods leave the wall-clock / worker-0 defaults in place.
        """
        now = getattr(runtime, "obs_now", None)
        if now is not None:
            self._clock = now
        worker = getattr(runtime, "obs_worker", None)
        if worker is not None:
            self._worker = worker

    def now(self) -> float:
        """Current time on the bound runtime clock (wall-clock seconds
        until :meth:`bind_runtime` adopts a runtime's ``obs_now``).
        Span emitters use this so their ``t0``/``wall`` fields live on
        the same axis as every other event timestamp."""
        return self._clock()

    # -- emission ----------------------------------------------------------------

    def _thread_buffer(self) -> list[Event]:
        """This thread's append buffer, created and registered on first use.

        Registration takes a lock once per (thread, log) pair -- never per
        event.  The registry holds strong references, so events survive
        their emitting worker thread."""
        buf: list[Event] = []
        with self._lock:
            self._buffers.append(buf)
        self._local.buf = buf
        return buf

    def emit(
        self,
        kind: EventKind,
        key: Hashable = None,
        life: int = 0,
        **data: Any,
    ) -> None:
        """Record one event at the bound runtime's current time/worker."""
        if self._buffered:
            if self._sealed:
                raise SealedLogError(f"emit({kind.value}) on a sealed EventLog")
            try:
                buf = self._local.buf
            except AttributeError:
                buf = self._thread_buffer()
            buf.append(
                Event(next(self._count), self._clock(), self._worker(), kind, key, life, data)
            )
            return
        self.emit_at(kind, self._clock(), self._worker(), key, life, **data)

    def emit_at(
        self,
        kind: EventKind,
        t: float,
        worker: int,
        key: Hashable = None,
        life: int = 0,
        **data: Any,
    ) -> None:
        """Record one event with explicit attribution (used by the
        simulator's driver loop, which acts *for* a virtual worker)."""
        if self._sealed:
            raise SealedLogError(f"emit({kind.value}) on a sealed EventLog")
        if self._buffered:
            try:
                buf = self._local.buf
            except AttributeError:
                buf = self._thread_buffer()
            buf.append(Event(next(self._count), t, worker, kind, key, life, data))
            return
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._events.append(Event(seq, t, worker, kind, key, life, data))

    # -- inspection ---------------------------------------------------------------

    def _drain(self) -> list[Event]:
        """Merged view of every thread buffer, ordered by sequence number.

        Memoized by total event count: buffers are append-only, so an
        unchanged total means an unchanged merge.  Safe to call while
        workers are still emitting (list snapshots are atomic under the
        GIL); the result is simply the events emitted so far."""
        with self._lock:
            snap = [list(b) for b in self._buffers]
        total = 0
        for b in snap:
            total += len(b)
        if len(self._merged) != total:
            merged = sorted((e for b in snap for e in b), key=_seq_of)
            prev = self._merged
            # Deterministic-merge guard (late worker-span delivery):
            # new events whose seq extends the previously drained prefix
            # append in order; an event whose seq falls *inside* that
            # prefix would silently rewrite history for anyone who
            # already read it, so it raises instead.  The L-th smallest
            # seq of old-union-new equals the old maximum iff no new
            # event interleaves below it.
            if prev and merged[len(prev) - 1].seq != prev[-1].seq:
                known = {e.seq for e in prev}
                late = [e for e in merged if e.seq < prev[-1].seq and e.seq not in known]
                raise LateEmitError(
                    f"{len(merged) - len(prev)} event(s) emitted after the merged "
                    f"order was observed would reorder the drained prefix "
                    f"(first offender: {late[0].kind.value} seq={late[0].seq}, "
                    f"drained max seq={prev[-1].seq})"
                )
            self._merged = merged
        return self._merged

    @property
    def events(self) -> list[Event]:
        """Snapshot of retained events in emission order."""
        if self._buffered:
            return list(self._drain())
        with self._lock:
            return list(self._events)

    @property
    def total_emitted(self) -> int:
        if self._buffered:
            with self._lock:
                return sum(len(b) for b in self._buffers)
        with self._lock:
            return self._seq

    @property
    def buffered(self) -> bool:
        """True when emissions take the per-thread buffered path."""
        return self._buffered

    @property
    def dropped(self) -> int:
        """Events lost to the ring buffer (0 for an unbounded log)."""
        if self._buffered:
            return 0
        with self._lock:
            return self._seq - len(self._events)

    def seal(self) -> None:
        """Close the log: drain once more, then make any further emission
        raise :class:`SealedLogError` at the *emit site* (instead of a
        :class:`LateEmitError` at the next drain).  Opt-in -- schedulers
        never seal automatically because legitimate post-run emitters
        exist (e.g. ``repro.detect`` escape accounting)."""
        if self._buffered:
            self._drain()
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def clear(self) -> None:
        with self._lock:
            for buf in self._buffers:
                buf.clear()
            self._merged = []
            self._count = itertools.count()
            self._events.clear()
            self._seq = 0
            self._sealed = False

    def __len__(self) -> int:
        if self._buffered:
            return self.total_emitted
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_kind(self, *kinds: EventKind) -> list[Event]:
        wanted = frozenset(kinds)
        return [e for e in self.events if e.kind in wanted]


class NullEventLog(EventLog):
    """The disabled log: every emission is a no-op.

    Schedulers/runtimes hold this by default so fault-free benchmark runs
    pay only an identity/flag check (and not even that where call sites
    cache the check, which all hot paths do)."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - trivially inherits
        super().__init__()

    def emit(self, kind: EventKind, key: Hashable = None, life: int = 0, **data: Any) -> None:
        return None

    def emit_at(
        self, kind: EventKind, t: float, worker: int, key: Hashable = None, life: int = 0, **data: Any
    ) -> None:
        return None


def _zero() -> int:
    return 0


#: Shared disabled log; identity-comparable (``log is NULL_LOG``).
NULL_LOG = NullEventLog()


def events_in_order(events: Iterable[Event]) -> list[Event]:
    """Events sorted by global sequence number (emission order)."""
    return sorted(events, key=lambda e: e.seq)
