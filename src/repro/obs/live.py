"""Live telemetry: metrics registry, background collector, HTTP endpoint.

PR 1 made the system perfectly observable *after* the fact (event log ->
replay/metrics/report/export); this module makes it observable *while it
runs*.  Three pieces, deliberately small:

* :class:`MetricsRegistry` -- a thread-safe get-or-create registry of
  counters, gauges (including pull-style callback gauges) and
  fixed-bucket histograms.  Schedulers, runtimes, block stores and
  :mod:`repro.detect` publish into it; everything it holds can be
  flattened into ``(name, labels, value)`` samples or rendered in the
  Prometheus text exposition format.
* :class:`MetricsCollector` -- a daemon thread that samples the registry
  into a bounded ring buffer at a fixed interval, giving consumers
  (``python -m repro top``, rate computations) a time series without the
  instruments themselves having to retain history.
* :class:`MetricsServer` -- a ``ThreadingHTTPServer`` exposing
  ``GET /metrics`` so any Prometheus-compatible scraper (or ``curl``)
  can watch a run live.

Design constraints mirror :mod:`repro.obs.events`:

* **Free when off.**  Hot paths hold :data:`NULL_METRICS` by default and
  cache a ``registry is not NULL_METRICS`` identity check (the ``_mx``
  flag idiom, enforced by the ``emit-guard`` lint) -- a disabled run pays
  one local boolean test per would-be sample.
* **Cheap when on.**  Counters and histograms take one small per-
  instrument lock; gauges for *existing* state (trace counters, queue
  depths, block-store occupancy) are **pull-based callback gauges** read
  only at collection time, so the scheduler hot path is never taxed for
  a value somebody else can read directly.
* **No third-party dependencies.**  The Prometheus text format is
  trivial to produce; we do not import a client library.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "CallbackGauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Sample",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "MetricsCollector",
    "MetricsServer",
    "render_prometheus",
]

#: Default histogram bucket upper bounds, in seconds: spans 10 us .. 10 s,
#: which covers everything from a metrics-emit microbenchmark to a slow
#: recovery cascade.  (Prometheus convention: each bucket counts
#: observations <= its bound; +Inf is implicit.)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: Mapping[str, Any]) -> LabelSet:
    """Canonical, hashable form of a label mapping (values stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity/presentation plumbing for all instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        self.name = name
        self.help = help
        self.labels = labels

    # Subclasses expose ``samples() -> [(suffix, extra_labels, value)]``.
    def samples(self) -> list[tuple[str, LabelSet, float]]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count (events, tasks, faults...)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        super().__init__(name, help, labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        return [("", (), self.value)]


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, residency...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        super().__init__(name, help, labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        return [("", (), self.value)]


class CallbackGauge(_Instrument):
    """Pull-based gauge: reads a live value (a trace counter, a deque
    length, a store's resident count) only when sampled.  The preferred
    way to surface state the system already maintains -- it costs the
    hot path nothing."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labels: LabelSet, fn: Callable[[], float]
    ) -> None:
        super().__init__(name, help, labels)
        self._fn = fn

    @property
    def value(self) -> float:
        try:
            return float(self._fn())
        except Exception:
            # A callback outliving its subject (store torn down, worker
            # gone) must never take the collector thread down with it.
            return float("nan")

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        return [("", (), self.value)]


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative counts, a running sum, and
    interpolated quantile estimates -- the standard latency instrument."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelSet,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._sum = 0.0
        self._n = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._n += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._n

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by linear interpolation inside
        the containing bucket; 0.0 when empty.  Overflow observations
        clamp to the largest finite bound (the estimate is then a lower
        bound, exactly like Prometheus's ``histogram_quantile``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            n = self._n
        if n == 0:
            return 0.0
        rank = q * n
        cum = 0.0
        for i, c in enumerate(counts):
            prev_cum = cum
            cum += c
            if cum >= rank and c:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i else 0.0
                hi = self.bounds[i]
                frac = (rank - prev_cum) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.bounds[-1]

    def samples(self) -> list[tuple[str, LabelSet, float]]:
        with self._lock:
            counts = list(self._counts)
            total = self._n
            acc_sum = self._sum
        out: list[tuple[str, LabelSet, float]] = []
        cum = 0
        for bound, c in zip(self.bounds, counts):
            cum += c
            out.append(("_bucket", (("le", _fmt_float(bound)),), float(cum)))
        out.append(("_bucket", (("le", "+Inf"),), float(total)))
        out.append(("_count", (), float(total)))
        out.append(("_sum", (), acc_sum))
        return out


@dataclass(frozen=True)
class Sample:
    """One flattened measurement at collection time."""

    name: str
    labels: LabelSet
    value: float

    @property
    def key(self) -> tuple[str, LabelSet]:
        return (self.name, self.labels)


class MetricsRegistry:
    """Thread-safe, get-or-create instrument registry.

    ``counter(name, help, **labels)`` (and friends) return the existing
    instrument for ``(name, labels)`` or create it -- so independent
    layers can publish into one registry without coordination.  Name
    collisions across instrument *types* raise: one name, one kind.
    """

    enabled = True
    """Publication guard, mirroring :attr:`EventLog.enabled`: hot paths
    cache ``registry is not NULL_METRICS`` (the ``_mx`` flag) so a
    disabled run never builds labels or takes a lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelSet], _Instrument] = {}
        self._kinds: dict[str, str] = {}

    # -- get-or-create -----------------------------------------------------------

    def _get(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Mapping[str, Any],
        **extra: Any,
    ) -> Any:
        key = (name, _labelset(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is not None:
                if not isinstance(inst, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {inst.kind}"
                    )
                return inst
            known = self._kinds.get(name)
            inst = cls(name, help, key[1], **extra)
            if known is not None and known != inst.kind:
                raise TypeError(f"metric {name!r} already registered as {known}")
            self._kinds[name] = inst.kind
            self._instruments[key] = inst
            return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def callback_gauge(
        self, name: str, fn: Callable[[], float], help: str = "", **labels: Any
    ) -> CallbackGauge:
        return self._get(CallbackGauge, name, help, labels, fn=fn)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- read side ---------------------------------------------------------------

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def collect(self) -> list[Sample]:
        """Flatten every instrument into ``Sample`` rows (histograms
        expand into ``_bucket``/``_count``/``_sum`` series)."""
        out: list[Sample] = []
        for inst in self.instruments():
            for suffix, extra, value in inst.samples():
                out.append(Sample(inst.name + suffix, inst.labels + extra, value))
        return out

    def value(self, name: str, **labels: Any) -> float | None:
        """Current value of one non-histogram instrument, or None."""
        key = (name, _labelset(labels))
        with self._lock:
            inst = self._instruments.get(key)
        if inst is None or isinstance(inst, Histogram):
            return None
        return inst.value

    def render_prometheus(self) -> str:
        return render_prometheus(self)


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: instruments it hands out are inert.

    Layers hold this by default so an uninstrumented run pays only the
    cached identity check -- and code that *does* call through (cold
    paths, tests) still works, it just measures nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_hist = _NullHistogram()

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._null_gauge

    def callback_gauge(
        self, name: str, fn: Callable[[], float], help: str = "", **labels: Any
    ) -> CallbackGauge:
        return self._null_gauge  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._null_hist

    def collect(self) -> list[Sample]:
        return []


class _NullCounter(Counter):
    def __init__(self) -> None:
        super().__init__("null", "", ())

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null", "", ())

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null", "", (), buckets=(1.0,))

    def observe(self, value: float) -> None:
        return None


#: Shared disabled registry; identity-comparable (``mx is NULL_METRICS``).
NULL_METRICS = NullMetricsRegistry()


# ---------------------------------------------------------------------------
# rendering


def _fmt_float(v: float) -> str:
    """Prometheus-friendly float: integers render bare, no exponent noise."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _fmt_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + body + "}"


def _escape(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format
    (version 0.0.4): ``# HELP`` / ``# TYPE`` headers per metric family,
    one ``name{labels} value`` line per sample."""
    families: dict[str, list[_Instrument]] = {}
    for inst in registry.instruments():
        families.setdefault(inst.name, []).append(inst)
    lines: list[str] = []
    for name in sorted(families):
        insts = families[name]
        help_text = next((i.help for i in insts if i.help), "")
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {insts[0].kind}")
        for inst in insts:
            for suffix, extra, value in inst.samples():
                labels = _fmt_labels(inst.labels + extra)
                val = _fmt_float(value) if value == value else "NaN"
                lines.append(f"{name}{suffix}{labels} {val}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# collector


class MetricsCollector:
    """Samples a registry into a bounded ring buffer on a daemon thread.

    Each tick stores ``(wall_time, {(name, labels): value})``; consumers
    read :meth:`snapshots` for time series or :meth:`rate` for windowed
    derivatives of counters.  The collector never blocks publishers --
    it only ever *reads* instruments.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 0.25,
        capacity: int = 512,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        self._ring: deque[tuple[float, dict[tuple[str, LabelSet], float]]] = deque(
            maxlen=capacity
        )
        self._stop = threading.Event()  # verify: ok=raw-threading (collector lifecycle flag; obs.live is the telemetry runtime)
        self._thread: threading.Thread | None = None  # verify: ok=raw-threading (annotation for the sampling daemon handle)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "MetricsCollector":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(  # verify: ok=raw-threading (sampling daemon; never touches scheduler state, reads instruments only)
            target=self._run, name="repro-metrics-collector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsCollector":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)

    # -- sampling ----------------------------------------------------------------

    def sample_once(self) -> dict[tuple[str, LabelSet], float]:
        """Take one sample synchronously (also used by ``--selftest``)."""
        tick = {s.key: s.value for s in self.registry.collect()}
        self._ring.append((time.time(), tick))
        return tick

    def snapshots(self) -> list[tuple[float, dict[tuple[str, LabelSet], float]]]:
        return list(self._ring)

    def latest(self) -> dict[tuple[str, LabelSet], float]:
        ring = self.snapshots()
        return ring[-1][1] if ring else {}

    def rate(self, name: str, window: float = 2.0, **labels: Any) -> float:
        """Windowed per-second rate of a counter-like series (0.0 when
        fewer than two samples cover the window)."""
        key = (name, _labelset(labels))
        ring = self.snapshots()
        if len(ring) < 2:
            return 0.0
        t_hi, latest = ring[-1]
        lo = None
        for t, tick in reversed(ring[:-1]):
            lo = (t, tick)
            if t_hi - t >= window:
                break
        if lo is None:
            return 0.0
        t_lo, first = lo
        if t_hi <= t_lo:
            return 0.0
        a, b = first.get(key), latest.get(key)
        if a is None or b is None:
            return 0.0
        return max(0.0, (b - a) / (t_hi - t_lo))


# ---------------------------------------------------------------------------
# HTTP endpoint


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] in ("/metrics", "/"):
            if self.path.startswith("/metrics"):
                body = render_prometheus(registry).encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                payload = {
                    f"{s.name}{_fmt_labels(s.labels)}": s.value
                    for s in registry.collect()
                    if s.value == s.value  # NaN-free JSON
                }
                body = json.dumps(payload, indent=2).encode()
                ctype = "application/json"
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, fmt: str, *args: Any) -> None:
        return None  # scrapes must not spam the run's stdout


class MetricsServer:
    """Prometheus text-exposition endpoint for one registry.

    ``port=0`` (the default) binds an ephemeral port; read ``.port``
    after construction and scrape ``http://127.0.0.1:<port>/metrics``.
    The server runs on a daemon thread and serves concurrent scrapes
    (``ThreadingHTTPServer``) without ever blocking the run.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0, host: str = "127.0.0.1") -> None:
        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._thread = threading.Thread(  # verify: ok=raw-threading (HTTP serving daemon; isolated from scheduler state)
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def iter_worker_values(
    samples: Iterable[Sample], name: str
) -> list[tuple[int, float]]:
    """Extract ``(worker, value)`` pairs for one per-worker metric family
    from a flattened sample list (helper for ``repro top`` rendering)."""
    out = []
    for s in samples:
        if s.name != name:
            continue
        labels = dict(s.labels)
        if "worker" in labels:
            try:
                out.append((int(labels["worker"]), s.value))
            except ValueError:
                continue
    return sorted(out)
