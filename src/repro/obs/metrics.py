"""Per-worker metrics derived from the event log and run results.

The paper reasons about the work-stealing substrate (steal bounds,
Theorem 2's P·T∞ term) in aggregate; this module gives the per-worker
breakdown -- steals, parks, compute busy/idle time, observed deque
occupancy -- that makes an individual run's schedule inspectable.

Sources are combined: :class:`~repro.runtime.api.RunResult` carries
runtime-maintained exact counters (frames, steals, busy time) when the
runtime records them per worker, and the event log contributes what only
events can know (parks, per-worker compute spans, deque depths sampled
at steal time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import Event, EventKind
from repro.runtime.api import RunResult


@dataclass
class WorkerMetrics:
    """One worker's share of an execution."""

    worker: int
    frames: int = 0
    """Frames executed (exact when the runtime reports per-worker frames)."""
    steals: int = 0
    """Successful steals performed by this worker (as thief)."""
    stolen_from: int = 0
    """Frames other workers stole from this worker's deque (as victim)."""
    parks: int = 0
    """Transitions into idleness (nothing to run or steal)."""
    computes: int = 0
    """COMPUTE invocations attributed to this worker."""
    busy: float = 0.0
    """Busy time: runtime-reported when available, else the summed
    compute spans observed in the event log."""
    span: float = 0.0
    """Makespan of the run this worker participated in."""
    deque_depths: list[int] = field(default_factory=list)
    """Deque occupancy of this worker sampled when thieves stole from it."""

    @property
    def idle(self) -> float:
        return max(0.0, self.span - self.busy)

    @property
    def utilization(self) -> float:
        return self.busy / self.span if self.span > 0 else 1.0

    @property
    def max_deque_depth(self) -> int:
        return max(self.deque_depths, default=0)


def worker_metrics(
    events: list[Event],
    run: RunResult | None = None,
    workers: int | None = None,
) -> list[WorkerMetrics]:
    """Build per-worker metrics from an event log and (optionally) the
    :class:`RunResult` of the same execution."""
    n = workers or (run.workers if run is not None else 0)
    n = max(n, max((e.worker for e in events), default=-1) + 1, 1)
    out = [WorkerMetrics(worker=w) for w in range(n)]
    span = run.makespan if run is not None else max((e.t for e in events), default=0.0)
    compute_begin: dict[tuple, float] = {}
    for e in events:
        m = out[e.worker]
        if e.kind is EventKind.STEAL:
            m.steals += 1
            victim = e.data.get("victim")
            if victim is not None and 0 <= victim < n:
                out[victim].stolen_from += 1
                depth = e.data.get("depth")
                if depth is not None:
                    out[victim].deque_depths.append(depth)
        elif e.kind is EventKind.PARK:
            m.parks += 1
        elif e.kind is EventKind.COMPUTE_BEGIN:
            m.computes += 1
            compute_begin[(e.key, e.life)] = e.t
        elif e.kind in (EventKind.COMPUTE_END, EventKind.COMPUTE_FAULT):
            t0 = compute_begin.pop((e.key, e.life), None)
            if t0 is not None:
                m.busy += max(0.0, e.t - t0)
    for m in out:
        m.span = span
    if run is not None:
        # Runtime-maintained counters are exact; prefer them where present.
        for w, frames in enumerate(run.worker_frames[:n]):
            out[w].frames = frames
        for w, steals in enumerate(run.worker_steals[:n]):
            out[w].steals = steals
        for w, busy in enumerate(run.busy_time[:n]):
            out[w].busy = busy
    return out


def format_worker_metrics(metrics: list[WorkerMetrics]) -> str:
    """Fixed-width table of the per-worker breakdown."""
    header = (
        f"{'worker':>6} {'frames':>8} {'computes':>8} {'steals':>7} "
        f"{'stolen':>7} {'parks':>6} {'busy':>12} {'idle':>12} {'util':>6} {'maxdeq':>6}"
    )
    lines = [header, "-" * len(header)]
    for m in metrics:
        lines.append(
            f"{m.worker:>6} {m.frames:>8} {m.computes:>8} {m.steals:>7} "
            f"{m.stolen_from:>7} {m.parks:>6} {m.busy:>12.6g} {m.idle:>12.6g} "
            f"{m.utilization:>6.1%} {m.max_deque_depth:>6}"
        )
    total_busy = sum(m.busy for m in metrics)
    lines.append(
        f"{'total':>6} {sum(m.frames for m in metrics):>8} "
        f"{sum(m.computes for m in metrics):>8} {sum(m.steals for m in metrics):>7} "
        f"{sum(m.stolen_from for m in metrics):>7} {sum(m.parks for m in metrics):>6} "
        f"{total_busy:>12.6g}"
    )
    return "\n".join(lines)
