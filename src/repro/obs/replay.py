"""Derive :class:`ExecutionTrace` counters from the structured event log.

The event log and the aggregate counters describe the same execution;
keeping them consistent means the counters stay *derivable* and the log
stays *complete* -- one source of truth.  ``replay_summary`` rebuilds
exactly the dict :meth:`ExecutionTrace.summary` reports, and
``verify_consistency`` diffs the two (used as a test-time invariant and
by ``python -m repro trace --check``).

Only valid for an **unbounded** log: a ring buffer that dropped events
cannot replay them (``verify_consistency`` refuses in that case).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.obs.events import Event, EventKind
from repro.runtime.tracing import ExecutionTrace

#: Counter-name -> event kind for the scalar counters (the per-key
#: counters ``computes``/``compute_failures``/``recoveries`` are handled
#: separately because summary() reports derived aggregates of them).
_SCALAR_KINDS: dict[str, EventKind] = {
    "recovery_skips": EventKind.RECOVERY_SKIPPED,
    "resets": EventKind.RESET,
    "notify_reinits": EventKind.REINIT,
    "reinit_scans": EventKind.REINIT_SCAN,
    "notifications": EventKind.NOTIFY,
    "stale_notifications": EventKind.NOTIFY_STALE,
    "stale_frames": EventKind.STALE_FRAME,
    "faults_observed": EventKind.FAULT_OBSERVED,
    "faults_injected": EventKind.FAULT_INJECTED,
    "sdc_injected": EventKind.SDC_INJECTED,
    "sdc_detected": EventKind.SDC_DETECTED,
    "sdc_escaped": EventKind.SDC_ESCAPED,
    "replica_runs": EventKind.REPLICA_RUN,
}


#: Kinds replayed through the per-key ``count_*`` methods (they feed the
#: derived aggregates in ``summary()``, not a scalar counter).
_PER_KEY_KINDS = frozenset(
    {EventKind.COMPUTE_BEGIN, EventKind.COMPUTE_FAULT, EventKind.RECOVERY}
)

#: Kinds deliberately *not* replayed into any counter.  Each entry is a
#: conscious decision, enforced two ways: statically by the
#: ``eventkind-coverage`` lint (``python -m repro verify lint``) and at
#: test time by ``tests/obs/test_replay_parity.py`` -- a new EventKind
#: member must be routed into a counter here or listed below, or both
#: checks fail.
#:
#: * TASK_CREATED / COMPUTE_END / TASK_COMPUTED / TASK_COMPLETED are
#:   lifecycle *milestones*: their counts are implied by the counters
#:   already replayed (created tasks == map inserts, ends == begins minus
#:   faults) and ExecutionTrace never tracked them.
#: * STEAL / PARK / UNPARK / WORKER_DOWN / WORKER_UP belong to the
#:   work-stealing / process-pool substrate; the runtime reports them in
#:   :class:`~repro.runtime.api.RunResult`, which has its own event
#:   parity check in ``repro.obs.metrics``.
#: * SPAN is pure telemetry (durations), consumed by
#:   :mod:`repro.obs.attribution`; it never moves a logical counter.
#: * CONNECT / DISCONNECT / FETCH describe the comm substrate under
#:   ClusterRuntime (channel lifecycle and lazy block shipping); like
#:   the pool events above they never move a logical scheduler counter
#:   -- a lost connection's *consequence* is the WORKER_DOWN /
#:   COMPUTE_FAULT / RECOVERY triple that follows it, which replays.
REPLAY_IGNORED = frozenset(
    {
        EventKind.TASK_CREATED,
        EventKind.COMPUTE_END,
        EventKind.TASK_COMPUTED,
        EventKind.TASK_COMPLETED,
        EventKind.STEAL,
        EventKind.PARK,
        EventKind.UNPARK,
        EventKind.WORKER_DOWN,
        EventKind.WORKER_UP,
        EventKind.CONNECT,
        EventKind.DISCONNECT,
        EventKind.FETCH,
        EventKind.SPAN,
    }
)

#: Every kind the replay accounts for, one way or another.
REPLAY_HANDLED = _PER_KEY_KINDS | frozenset(_SCALAR_KINDS.values())


def replay_trace(events: Iterable[Event]) -> ExecutionTrace:
    """Reconstruct an :class:`ExecutionTrace` equivalent to the one the
    instrumented run mutated, purely from its event log."""
    trace = ExecutionTrace()
    kinds = Counter()
    for event in events:
        if event.kind is EventKind.COMPUTE_BEGIN:
            trace.count_compute(event.key)
        elif event.kind is EventKind.COMPUTE_FAULT:
            trace.count_compute_failure(event.key)
        elif event.kind is EventKind.RECOVERY:
            trace.count_recovery(event.key)
        else:
            kinds[event.kind] += 1
    for name, kind in _SCALAR_KINDS.items():
        if kinds[kind]:
            trace.bump(name, kinds[kind])
    return trace


def replay_summary(events: Iterable[Event]) -> dict[str, int]:
    """The event-log-derived equivalent of :meth:`ExecutionTrace.summary`."""
    return replay_trace(events).summary()


def verify_consistency(events: Iterable[Event], trace: ExecutionTrace) -> dict[str, tuple[int, int]]:
    """Diff the event-log-derived counters against a live trace.

    Returns ``{counter: (from_events, from_trace)}`` for every mismatch
    -- empty means the log and the counters agree exactly.  Also checks
    the per-key execution counts (the paper's N(A)), not just the
    aggregates.
    """
    events = list(events)
    derived = replay_trace(events)
    diff: dict[str, tuple[int, int]] = {}
    for name, a in derived.summary().items():
        b = trace.summary()[name]
        if a != b:
            diff[name] = (a, b)
    if derived.executions() != trace.executions():
        diff["executions"] = (derived.total_computes, trace.total_computes)
    if dict(derived.recoveries) != dict(trace.recoveries):
        diff["recoveries_by_key"] = (derived.total_recoveries, trace.total_recoveries)
    return diff


def assert_consistent(log, trace: ExecutionTrace) -> None:
    """Raise ``AssertionError`` if ``log`` cannot replay to ``trace``.

    Accepts an :class:`~repro.obs.events.EventLog` (so it can refuse
    lossy ring buffers) or any iterable of events.
    """
    dropped = getattr(log, "dropped", 0)
    if dropped:
        raise AssertionError(
            f"event log dropped {dropped} events (ring buffer); counters are not derivable"
        )
    events = log.events if hasattr(log, "events") else list(log)
    diff = verify_consistency(events, trace)
    if diff:
        detail = ", ".join(
            f"{name}: events={a} trace={b}" for name, (a, b) in sorted(diff.items())
        )
        raise AssertionError(f"event log and ExecutionTrace disagree: {detail}")
