"""Recovery-timeline report: reconstruct each fault's recovery cascade.

The FT scheduler's recovery is *selective and localized*: a detected
fault on task A triggers REPLACETASK on A, a REINITNOTIFYENTRY scan over
A's successors (re-enqueueing the still-waiting ones), possibly RESETNODE
on consumers that observed the fault mid-compute, and -- if recovery
itself faults -- further incarnations (Guarantee 6).  This module folds
the event log back into that narrative, per recovered task: which
incarnations were installed, which successors were re-enqueued, what the
scan cost, and how long the cascade took from first observation to the
recovered incarnation's completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.obs.events import Event, EventKind, events_in_order


@dataclass
class RecoveryCascade:
    """The full recovery story of one task key."""

    key: Hashable
    first_fault_t: float | None = None
    """Time of the first FAULT_OBSERVED / COMPUTE_FAULT naming this key
    (as failing task or attributed source)."""
    observed_faults: int = 0
    injected_faults: int = 0
    incarnations: list[int] = field(default_factory=list)
    """Life numbers installed by RECOVERTASK, in order."""
    suppressed: int = 0
    """Duplicate recoveries skipped by the recovery table (Guarantee 1)."""
    reenqueued: list[Hashable] = field(default_factory=list)
    """Successors re-enqueued by REINITNOTIFYENTRY, in order."""
    scans: int = 0
    """Successor records examined while rebuilding notify arrays (the
    REINITNOTIFYENTRY scan cost, proportional to out-degree)."""
    resets: int = 0
    """RESETNODE re-arms of this task (it consumed a faulty input)."""
    completed_t: float | None = None
    """Completion time of the final recovered incarnation."""

    @property
    def recoveries(self) -> int:
        return len(self.incarnations)

    @property
    def duration(self) -> float | None:
        """First observation -> recovered completion (None if unfinished
        or the task's successors were already computed and recovery never
        ran -- the paper's 'not recovered' case)."""
        if self.first_fault_t is None or self.completed_t is None:
            return None
        return max(0.0, self.completed_t - self.first_fault_t)


def recovery_timeline(events: list[Event]) -> list[RecoveryCascade]:
    """Group fault-path events into per-task recovery cascades, ordered
    by first fault observation."""
    events = events_in_order(events)
    cascades: dict[Hashable, RecoveryCascade] = {}

    def cascade(key: Hashable) -> RecoveryCascade:
        c = cascades.get(key)
        if c is None:
            c = cascades[key] = RecoveryCascade(key=key)
        return c

    recovered: set[Hashable] = set()
    for e in events:
        if e.kind is EventKind.FAULT_INJECTED:
            c = cascade(e.key)
            c.injected_faults += 1
            if c.first_fault_t is None:
                c.first_fault_t = e.t
        elif e.kind in (EventKind.FAULT_OBSERVED, EventKind.COMPUTE_FAULT):
            # Attribute to the failing task: COMPUTE_FAULT names the
            # observing consumer but carries the attributed source.
            key = e.data.get("source") if e.kind is EventKind.COMPUTE_FAULT else e.key
            if key is None:
                key = e.key
            c = cascade(key)
            c.observed_faults += 1
            if c.first_fault_t is None:
                c.first_fault_t = e.t
        elif e.kind is EventKind.RECOVERY:
            cascade(e.key).incarnations.append(e.life)
            recovered.add(e.key)
        elif e.kind is EventKind.RECOVERY_SKIPPED:
            cascade(e.key).suppressed += 1
        elif e.kind is EventKind.REINIT:
            cascade(e.key).reenqueued.append(e.data.get("successor"))
        elif e.kind is EventKind.REINIT_SCAN:
            cascade(e.key).scans += 1
        elif e.kind is EventKind.RESET:
            cascade(e.key).resets += 1
        elif e.kind is EventKind.TASK_COMPLETED and e.key in recovered:
            cascades[e.key].completed_t = e.t
    return sorted(
        cascades.values(),
        key=lambda c: (c.first_fault_t if c.first_fault_t is not None else float("inf")),
    )


def format_recovery_timeline(cascades: list[RecoveryCascade]) -> str:
    """Human-readable cascade report (one block per recovered task)."""
    if not cascades:
        return "no faults observed; nothing recovered"
    lines: list[str] = []
    for c in cascades:
        when = f"t={c.first_fault_t:.6g}" if c.first_fault_t is not None else "t=?"
        lines.append(f"task {c.key!r} ({when}):")
        lines.append(
            f"  faults: {c.injected_faults} injected, {c.observed_faults} observed; "
            f"recoveries: {c.recoveries} "
            f"(lives {', '.join(map(str, c.incarnations)) or '-'}; "
            f"{c.suppressed} duplicate(s) suppressed)"
        )
        lines.append(
            f"  reinit: scanned {c.scans} successor record(s), "
            f"re-enqueued {len(c.reenqueued)}"
            + (f" -> {', '.join(repr(s) for s in c.reenqueued)}" if c.reenqueued else "")
        )
        if c.resets:
            lines.append(f"  resets: {c.resets} (consumed a faulty input and replayed)")
        if c.duration is not None:
            lines.append(f"  recovered: completed at t={c.completed_t:.6g} "
                         f"({c.duration:.6g} after first observation)")
        elif c.recoveries:
            lines.append("  recovered incarnation never completed (check the run!)")
        else:
            lines.append("  no recovery ran (successors already computed, or fault unobserved)")
    return "\n".join(lines)
