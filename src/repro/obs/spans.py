"""Typed view over ``SPAN`` events: worker-attributed measured intervals.

:class:`~repro.obs.events.EventKind.SPAN` events are the raw material of
overhead attribution (:mod:`repro.obs.attribution`): each one records a
named *phase* and its wall-clock duration, attributed to the worker that
spent the time.  Phases currently emitted:

==============  ======================================================
``attach``      worker-side shm attach + input decode (ProcessRuntime)
``kernel``      ``spec.compute`` wall time inside the worker process;
                ``cpu`` carries the worker's process-CPU seconds
``serialize``   worker-side pickling of the output payload
``dispatch``    parent-side full remote round trip (queue wait + ship
                + kernel + reply); carries ``t0`` on the log clock
``queued``      parent-estimated time a pipelined job sat behind its
                channel-mates in the worker's inbound window (inside
                the dispatch bracket; subtracted from its overhead)
``recovery``    FT scheduler's RECOVERTASK routine (install + rescan)
``detect``      one replication-detection attempt (replicas + votes)
``worker_loop`` one runtime worker's whole in-loop lifetime (threaded /
                procpool); carries no task key -- its residue over
                busy + parked time is the work-finding cost
``run``         the full budget window (``execute`` start -> quiesce)
                on the log clock, emitted once by the runtime; the gap
                between it and a worker_loop span is that worker's
                thread start/stop latency
==============  ======================================================

Durations for worker-process phases are measured on the *worker's*
clock and shipped back over the result pipe -- the parent merges them
into the event log attributed to the awaiting scheduler thread, which
is also the thread that owns the task's compute bracket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.obs.events import Event, EventKind

__all__ = ["Span", "spans_of", "wall_by_phase", "wall_by_worker_phase"]


@dataclass(frozen=True)
class Span:
    """One measured interval, decoded from a SPAN event."""

    seq: int
    worker: int
    phase: str
    wall: float
    key: Hashable = None
    life: int = 0
    cpu: float | None = None
    """Process-CPU seconds (kernel spans only)."""
    t0: float | None = None
    """Start on the log clock (parent-measured spans only)."""


def spans_of(events: Iterable[Event]) -> list[Span]:
    """Decode every SPAN event into a :class:`Span` (emission order)."""
    out: list[Span] = []
    for e in events:
        if e.kind is not EventKind.SPAN:
            continue
        out.append(
            Span(
                seq=e.seq,
                worker=e.worker,
                phase=str(e.data.get("phase", "unknown")),
                wall=float(e.data.get("wall", 0.0)),
                key=e.key,
                life=e.life,
                cpu=e.data.get("cpu"),
                t0=e.data.get("t0"),
            )
        )
    return out


def wall_by_phase(events: Iterable[Event]) -> dict[str, float]:
    """Total wall seconds per span phase."""
    totals: dict[str, float] = {}
    for s in spans_of(events):
        totals[s.phase] = totals.get(s.phase, 0.0) + s.wall
    return totals


def wall_by_worker_phase(events: Iterable[Event]) -> dict[int, dict[str, float]]:
    """Per-worker totals: ``{worker: {phase: seconds}}``."""
    out: dict[int, dict[str, float]] = {}
    for s in spans_of(events):
        per = out.setdefault(s.worker, {})
        per[s.phase] = per.get(s.phase, 0.0) + s.wall
    return out
