"""``python -m repro top``: live terminal monitor over an instrumented run.

``top`` for the scheduler: launch one benchmark on a real runtime
(process pool by default) with a :class:`~repro.obs.live.MetricsRegistry`
and an :class:`~repro.obs.events.EventLog` wired through every layer,
then redraw a one-screen dashboard while the run is in flight --
per-worker utilization and queue depths, live trace counters (computes,
recoveries, SDC detections), dispatch-latency quantiles, worker-crash
counts, and block-store occupancy.  When the run quiesces the monitor
prints the post-mortem: the verified result line and the overhead
attribution table (:mod:`repro.obs.attribution`) that says where every
worker-second of the makespan went.

With ``--connect host:port`` the monitor attaches to a *remote* process
instead of launching anything: it scrapes that process's ``GET /metrics``
endpoint (a ``--serve`` run on another machine, or a cluster worker
started with ``--metrics-port``) on every tick, parses the Prometheus
text back into samples, and renders the same dashboard -- including
windowed rates computed from consecutive scrapes.  Pure pull: the
monitored process only ever serves a page it already serves.

Examples::

    python -m repro top cholesky --workers 4
    python -m repro top lu --runtime threaded --scale default --interval 0.5
    python -m repro top lcs --crash 2 --faults 2       # kill workers + inject faults
    python -m repro top fw --serve --port 9200         # scrape /metrics while it runs
    python -m repro top --connect 10.0.0.5:9200        # watch a remote run/worker
    python -m repro top --selftest                     # deterministic CI check

The dashboard reads only *pull-based* state: every value on screen comes
from ``registry.collect()`` (callback gauges over counters the run
already maintains), so watching a run does not perturb it beyond the
collector's sampling tick.
"""

from __future__ import annotations

import argparse
import re
import sys
import threading
import time
from typing import Any, Hashable

from repro.obs.events import EventLog
from repro.obs.live import (
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    MetricsServer,
    Sample,
    iter_worker_values,
)

#: ANSI: move cursor home + clear to end of screen (redraw without flicker).
_ANSI_HOME_CLEAR = "\x1b[H\x1b[J"

#: Trace counters surfaced on the dashboard's summary line, in order.
_SUMMARY_COUNTERS = (
    ("tasks", "repro_trace_tasks_computed"),
    ("computes", "repro_trace_total_computes"),
    ("recoveries", "repro_trace_total_recoveries"),
    ("sdc", "repro_trace_sdc_detected"),
    ("faults", "repro_trace_faults_observed"),
)


def graph_keys(app: Any) -> list[Hashable]:
    """Every task key reachable from the sink (reverse BFS), in a
    deterministic discovery order -- the pool ``--crash`` victims are
    drawn from."""
    seen: list[Hashable] = []
    visited = {app.sink_key()}
    frontier = [app.sink_key()]
    while frontier:
        key = frontier.pop(0)
        seen.append(key)
        for pred in app.predecessors(key):
            if pred not in visited:
                visited.add(pred)
                frontier.append(pred)
    return seen


# ---------------------------------------------------------------------------
# dashboard rendering


def _scalar(samples: list[Sample], name: str, default: float = 0.0) -> float:
    for s in samples:
        if s.name == name and not s.labels:
            return s.value
    return default


def render_dashboard(
    registry: MetricsRegistry,
    collector: MetricsCollector,
    title: str,
    done: bool = False,
) -> str:
    """One frame of the monitor, built purely from registry samples."""
    samples = registry.collect()
    elapsed = _scalar(samples, "repro_run_elapsed_seconds")
    workers = int(_scalar(samples, "repro_workers"))
    outstanding = int(_scalar(samples, "repro_outstanding_frames"))
    lines = [
        f"repro top -- {title}"
        + (f"  [{'done' if done else 'running'} {elapsed:6.1f}s]"),
    ]

    counters = []
    for label, name in _SUMMARY_COUNTERS:
        v = _scalar(samples, name, float("nan"))
        if v == v:  # only counters the run actually registered
            counters.append(f"{label} {int(v)}")
    rate = collector.rate("repro_trace_total_computes")
    if rate > 0:
        counters.append(f"{rate:.0f} tasks/s")
    crashes = registry.value("repro_worker_crashes_total")
    if crashes:
        counters.append(f"worker-crashes {int(crashes)}")
    if counters:
        lines.append("  " + "   ".join(counters))

    busy = dict(iter_worker_values(samples, "repro_worker_busy_seconds"))
    frames = dict(iter_worker_values(samples, "repro_worker_frames"))
    depth = dict(iter_worker_values(samples, "repro_queue_depth"))
    if busy:
        lines.append(f"  {'worker':>6} {'busy(s)':>9} {'util%':>6} {'frames':>8} {'queue':>6}")
        for w in sorted(busy):
            b = busy.get(w, 0.0)
            util = 100.0 * b / elapsed if elapsed > 0 else 0.0
            lines.append(
                f"  {w:>6} {b:>9.2f} {min(util, 100.0):>6.1f} "
                f"{int(frames.get(w, 0)):>8} {int(depth.get(w, 0)):>6}"
            )
        lines.append(f"  outstanding frames: {outstanding}")

    for inst in registry.instruments():
        if isinstance(inst, Histogram) and inst.name == "repro_dispatch_seconds":
            n = inst.count
            if n:
                lines.append(
                    f"  dispatch: {n} round trips, "
                    f"p50 {inst.quantile(0.5) * 1e3:.2f} ms, "
                    f"p90 {inst.quantile(0.9) * 1e3:.2f} ms, "
                    f"mean {inst.sum / n * 1e3:.2f} ms"
                )
            break

    resident = _scalar(samples, "repro_store_resident_versions", float("nan"))
    if resident == resident:
        store_bits = [f"resident {int(resident)}"]
        for stat in ("writes", "reads", "evictions", "peak_resident"):
            v = _scalar(samples, f"repro_store_{stat}", float("nan"))
            if v == v:
                store_bits.append(f"{stat} {int(v)}")
        shm = _scalar(samples, "repro_shm_bytes_current", float("nan"))
        if shm == shm:
            store_bits.append(f"shm {shm / 1e6:.1f} MB")
        lines.append("  store: " + "  ".join(store_bits))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# remote monitor: scrape a /metrics endpoint and render from the text

#: Prometheus text sample line: ``name{labels} value`` or ``name value``.
_PROM_LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_PROM_LABEL = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> list[Sample]:
    """Parse Prometheus text exposition back into :class:`Sample`\\ s --
    the inverse of ``render_prometheus`` for the families it emits."""
    samples: list[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE.match(line)
        if not m:
            continue
        name, labelblob, raw = m.groups()
        try:
            value = float(raw)
        except ValueError:
            continue
        labels = tuple(
            (k, v.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n"))
            for k, v in _PROM_LABEL.findall(labelblob or "")
        )
        samples.append(Sample(name, labels, value))
    return samples


#: Counter families worth a live rate on the remote dashboard.
_REMOTE_RATES = (
    ("repro_trace_total_computes", "tasks/s"),
    ("repro_worker_jobs_total", "jobs/s"),
    ("repro_comm_fetches_total", "fetches/s"),
)


def render_remote_dashboard(
    samples: list[Sample],
    title: str,
    rates: dict[str, float] | None = None,
) -> str:
    """One monitor frame built purely from scraped samples."""
    lines = [f"repro top -- {title}"]

    counters = []
    for label, name in _SUMMARY_COUNTERS:
        v = _scalar(samples, name, float("nan"))
        if v == v:
            counters.append(f"{label} {int(v)}")
    for name, label in (
        ("repro_worker_jobs_total", "jobs"),
        ("repro_comm_fetches_total", "fetches"),
        ("repro_worker_crashes_total", "worker-crashes"),
    ):
        v = _scalar(samples, name, float("nan"))
        if v == v:
            counters.append(f"{label} {int(v)}")
    for name, unit in _REMOTE_RATES:
        r = (rates or {}).get(name, 0.0)
        if r > 0:
            counters.append(f"{r:.0f} {unit}")
    if counters:
        lines.append("  " + "   ".join(counters))

    busy = dict(iter_worker_values(samples, "repro_worker_busy_seconds"))
    if busy:
        elapsed = _scalar(samples, "repro_run_elapsed_seconds")
        frames = dict(iter_worker_values(samples, "repro_worker_frames"))
        lines.append(f"  {'worker':>6} {'busy(s)':>9} {'util%':>6} {'frames':>8}")
        for w in sorted(busy):
            b = busy.get(w, 0.0)
            util = 100.0 * b / elapsed if elapsed > 0 else 0.0
            lines.append(
                f"  {w:>6} {b:>9.2f} {min(util, 100.0):>6.1f} {int(frames.get(w, 0)):>8}"
            )

    n = _scalar(samples, "repro_dispatch_seconds_count", float("nan"))
    s = _scalar(samples, "repro_dispatch_seconds_sum", float("nan"))
    if n == n and n > 0 and s == s:
        lines.append(f"  dispatch: {int(n)} round trips, mean {s / n * 1e3:.2f} ms")

    cache_bytes = _scalar(samples, "repro_worker_cache_bytes", float("nan"))
    if cache_bytes == cache_bytes:
        entries = int(_scalar(samples, "repro_worker_cache_entries"))
        fetched = _scalar(samples, "repro_comm_fetch_bytes_total")
        lines.append(
            f"  cache: {cache_bytes / 1e6:.1f} MB in {entries} entries, "
            f"{fetched / 1e6:.1f} MB fetched over comm"
        )
    return "\n".join(lines)


def run_remote(args: argparse.Namespace) -> int:
    """Attach to ``--connect host:port`` and redraw until interrupted
    (or for ``--frames`` ticks when bounded, e.g. from CI)."""
    import urllib.error
    import urllib.request

    endpoint = args.connect
    if "://" not in endpoint:
        endpoint = f"http://{endpoint}"
    if not endpoint.endswith("/metrics"):
        endpoint = endpoint.rstrip("/") + "/metrics"

    prev: dict[str, float] = {}
    prev_t = 0.0
    rates: dict[str, float] = {}
    shown = 0
    misses = 0
    try:
        while args.frames <= 0 or shown < args.frames:
            t0 = time.time()
            try:
                body = urllib.request.urlopen(endpoint, timeout=5).read().decode()
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                misses += 1
                if misses >= 3:
                    print(f"top: lost {endpoint}: {exc}", file=sys.stderr)
                    return 1
                time.sleep(args.interval)
                continue
            misses = 0
            samples = parse_prometheus(body)
            now = {s.name: s.value for s in samples if not s.labels}
            if prev_t:
                dt = t0 - prev_t
                if dt > 0:
                    rates = {
                        name: max(0.0, (now.get(name, 0.0) - prev.get(name, 0.0)) / dt)
                        for name, _ in _REMOTE_RATES
                    }
            prev, prev_t = now, t0
            frame = render_remote_dashboard(samples, f"remote {args.connect}", rates)
            if args.plain:
                print(frame, flush=True)
            else:
                print(_ANSI_HOME_CLEAR + frame, flush=True)
            shown += 1
            if args.frames <= 0 or shown < args.frames:
                time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
    return 0


# ---------------------------------------------------------------------------
# the monitored run


def _build_runtime(args: argparse.Namespace, log: EventLog,
                   registry: MetricsRegistry, die_on: list) -> Any:
    if args.runtime == "threaded":
        from repro.runtime import ThreadedRuntime

        return ThreadedRuntime(
            workers=args.workers, seed=args.seed, event_log=log, metrics=registry
        )
    from repro.runtime import ProcessRuntime

    return ProcessRuntime(
        workers=args.workers, seed=args.seed, event_log=log,
        metrics=registry, die_on=die_on,
    )


def run_monitored(args: argparse.Namespace) -> int:
    from repro.apps import make_app
    from repro.core import FTScheduler
    from repro.obs.attribution import attribute_run, format_attribution

    app = make_app(args.app, scale=args.scale)
    log = EventLog()
    registry = MetricsRegistry()

    die_on: list = []
    if args.crash:
        if args.runtime != "procpool":
            print("top: --crash needs --runtime procpool (worker processes to kill)",
                  file=sys.stderr)
            return 2
        die_on = graph_keys(app)[-args.crash:]  # leaf-most keys: early dispatches

    hooks = None
    store = app.make_store(True, shared=(args.runtime == "procpool"))
    if args.faults:
        from repro.faults import FaultInjector, plan_faults

        plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                           count=args.faults, seed=args.seed)
        hooks = FaultInjector(plan, app, store)

    runtime = _build_runtime(args, log, registry, die_on)
    sched = FTScheduler(app, runtime, store=store, hooks=hooks,
                        event_log=log, metrics=registry)

    box: dict[str, Any] = {}

    def _run() -> None:
        try:
            box["result"] = sched.run()
        except BaseException as exc:  # surfaced after the monitor loop
            box["error"] = exc

    server = MetricsServer(registry, port=args.port) if args.serve else None
    title = (f"{args.app}/{args.scale} on {args.runtime}, "
             f"{args.workers} workers, seed {args.seed}")
    collector = MetricsCollector(registry, interval=min(args.interval, 0.25))
    thread = threading.Thread(  # verify: ok=raw-threading (monitor harness: the run occupies this thread so the main thread can redraw; joined below)
        target=_run, name="repro-top-run", daemon=True
    )
    try:
        collector.start()
        if server is not None:
            print(f"metrics endpoint: {server.url}")
        thread.start()
        while thread.is_alive():
            thread.join(timeout=args.interval)
            frame = render_dashboard(registry, collector, title, done=not thread.is_alive())
            if args.plain:
                print(frame, flush=True)
            else:
                print(_ANSI_HOME_CLEAR + frame, flush=True)
    except KeyboardInterrupt:
        print("\ninterrupted; abandoning the run", file=sys.stderr)
        return 130
    finally:
        collector.stop()
        if server is not None:
            server.close()

    if "error" in box:
        raise box["error"]
    result = box["result"]
    app.verify(store)
    close = getattr(store, "close", None)

    print()
    print(f"{args.app}/{args.scale} verified ok: makespan {result.run.makespan:.3f}s, "
          f"{result.trace.tasks_computed} tasks, "
          f"{result.trace.total_recoveries} recoveries, "
          f"{getattr(runtime, 'worker_crashes', 0)} worker crashes")
    log.seal()
    report = attribute_run(log.events, result.run)
    print()
    print(format_attribution(report))
    if close is not None and args.runtime == "procpool":
        close()
    return 0


# ---------------------------------------------------------------------------
# selftest (CI)


def _selftest() -> int:
    """Deterministic end-to-end check: registry semantics, a tiny
    instrumented run, one dashboard frame, one HTTP scrape, and the
    attribution report.  Exit 0 means live telemetry works here."""
    import urllib.request

    from repro.apps import make_app
    from repro.core import FTScheduler
    from repro.obs.attribution import attribute_run, format_attribution
    from repro.runtime import ThreadedRuntime

    failures: list[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  {label:<28} [{'ok' if ok else 'FAIL'}]")
        if not ok:
            failures.append(label)

    # 1. Instrument semantics.
    reg = MetricsRegistry()
    c = reg.counter("t_total", "things")
    c.inc()
    c.inc(2)
    g = reg.gauge("t_depth", "queue", worker=0)
    g.set(5)
    g.dec()
    h = reg.histogram("t_lat", "latency")
    for v in (0.001, 0.002, 0.004, 0.008):
        h.observe(v)
    check("counter/gauge/histogram", c.value == 3 and g.value == 4 and h.count == 4)
    check("histogram quantile", 0.0 < h.quantile(0.5) <= 0.0080001)
    text = reg.render_prometheus()
    check("prometheus render", "# TYPE t_total counter" in text
          and 't_depth{worker="0"} 4' in text and "t_lat_bucket" in text)

    # 2. A real (small, threaded) instrumented run.  Default scale, not
    # tiny: attribution coverage needs a makespan large enough that the
    # fixed thread-startup skew (which lands in "other") stays small.
    app = make_app("cholesky", scale="default")
    log = EventLog()
    registry = MetricsRegistry()
    runtime = ThreadedRuntime(workers=2, seed=0, event_log=log, metrics=registry)
    store = app.make_store(True)
    result = FTScheduler(app, runtime, store=store,
                         event_log=log, metrics=registry).run()
    app.verify(store)
    collector = MetricsCollector(registry, interval=0.05)
    collector.sample_once()
    tasks = registry.value("repro_trace_tasks_computed")
    check("live trace gauges", tasks is not None and tasks > 0)
    frame = render_dashboard(registry, collector, "cholesky/default selftest", done=True)
    check("dashboard renders", "worker" in frame and "tasks" in frame)

    # 3. Scrape the endpoint like a Prometheus server would.
    with MetricsServer(registry) as server:
        body = urllib.request.urlopen(server.url, timeout=10).read().decode()
    check("/metrics scrape", "repro_trace_tasks_computed" in body
          and "# TYPE repro_workers gauge" in body)

    # 4. Post-run attribution must account for (nearly) all of the budget.
    log.seal()
    report = attribute_run(log.events, result.run)
    check("attribution coverage>=0.95", report.coverage >= 0.95)
    check("attribution formats", "wall-clock budget" in format_attribution(report))

    print(f"top selftest {'passed' if not failures else 'FAILED'}")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    from repro.apps import APP_NAMES

    ap = argparse.ArgumentParser(
        prog="python -m repro top",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("app", nargs="?", default="cholesky", choices=APP_NAMES,
                    help="benchmark to run (default: cholesky)")
    ap.add_argument("--scale", choices=("tiny", "default", "large"), default="default",
                    help="instance scale (default: default)")
    ap.add_argument("--runtime", choices=("procpool", "threaded"), default="procpool",
                    help="executor (default: procpool = real multi-core)")
    ap.add_argument("--workers", type=int, default=4, help="worker count (default 4)")
    ap.add_argument("--seed", type=int, default=0, help="runtime + fault-plan seed")
    ap.add_argument("--interval", type=float, default=0.5,
                    help="dashboard refresh seconds (default 0.5)")
    ap.add_argument("--plain", action="store_true",
                    help="append frames instead of ANSI redraw (logs, CI)")
    ap.add_argument("--crash", type=int, default=0, metavar="N",
                    help="kill N worker processes mid-run (procpool only)")
    ap.add_argument("--faults", type=int, default=0, metavar="N",
                    help="inject ~N after-compute faults via the planner")
    ap.add_argument("--serve", action="store_true",
                    help="expose GET /metrics while the run is live")
    ap.add_argument("--port", type=int, default=0,
                    help="metrics endpoint port (default: ephemeral)")
    ap.add_argument("--connect", metavar="HOST:PORT", default=None,
                    help="attach to a remote /metrics endpoint instead of "
                         "launching a run (cluster worker or --serve run)")
    ap.add_argument("--frames", type=int, default=0, metavar="N",
                    help="with --connect: stop after N frames (0 = until ^C)")
    ap.add_argument("--selftest", action="store_true",
                    help="deterministic install check (used by CI)")
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selftest:
        return _selftest()
    if args.interval <= 0:
        print("top: --interval must be positive", file=sys.stderr)
        return 2
    if args.connect:
        return run_remote(args)
    if args.workers < 1:
        print("top: --workers must be >= 1", file=sys.stderr)
        return 2
    t0 = time.time()
    rc = run_monitored(args)
    if rc == 0:
        print(f"\ntotal wall time {time.time() - t0:.1f}s")
    return rc


if __name__ == "__main__":
    sys.exit(main())
