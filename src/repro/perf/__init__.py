"""Performance measurement: the BENCH trajectory's first-class citizen.

The paper's headline result is a *performance* claim (fault-tolerance
support under ~5% overhead at scale), so this reproduction treats "how
fast is the hot path" as an invariant to be measured and defended, not a
vibe.  This package provides:

* :mod:`repro.perf.bench` -- a statistical microbenchmark runner
  (warmup discard, min-of-k timing, bootstrap confidence intervals,
  in-process calibration against a reference spin loop);
* :mod:`repro.perf.suites` -- the benchmark catalogue: scheduler
  structure ops (task-map insert/get, recovery claims, notification
  bits), tracing-on/off scheduler throughput, threaded-runtime
  contention at 1/4/8 workers, simulator events/sec, and end-to-end
  LCS / Floyd-Warshall runs;
* :mod:`repro.perf.compare` -- baseline comparison and the >15%
  regression gate used by CI;
* :mod:`repro.perf.cli` -- ``python -m repro perf``, which writes
  ``BENCH_<n>.json`` files that seed the repo's perf trajectory.

See docs/PERFORMANCE.md for the hot-path inventory and how to read the
numbers.
"""

from repro.perf.bench import (
    Benchmark,
    BenchResult,
    RunnerConfig,
    bootstrap_ci,
    calibrate,
    run_benchmark,
    run_suite,
)
from repro.perf.compare import compare_runs, load_bench_json
from repro.perf.suites import SUITE, benchmarks, groups

__all__ = [
    "Benchmark",
    "BenchResult",
    "RunnerConfig",
    "SUITE",
    "benchmarks",
    "bootstrap_ci",
    "calibrate",
    "compare_runs",
    "groups",
    "load_bench_json",
    "run_benchmark",
    "run_suite",
]
