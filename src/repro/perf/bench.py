"""Statistical microbenchmark runner.

Timing discipline (the dask/distributed & pyperf folk wisdom, condensed):

* **warmup** -- the first ``warmup`` invocations are discarded: they pay
  import costs, allocator warmup, and branch-predictor cold starts that
  steady-state throughput never sees.
* **min-of-k** -- each retained *sample* is the best of ``k``
  back-to-back timings of the same freshly-set-up workload.  The minimum
  is the least-noise estimator for CPU-bound code: every source of
  interference (GC, scheduler preemption, turbo transitions) only ever
  adds time.
* **bootstrap CI** -- the reported median carries a percentile-bootstrap
  confidence interval over the retained samples, so two BENCH files can
  be compared without pretending timing noise is Gaussian.
* **calibration** -- every run also times a fixed pure-Python spin loop.
  Scores divided by the calibration score are roughly machine-portable,
  which is what makes a *committed* baseline JSON meaningful on CI
  hardware that is not the hardware that produced it.

A :class:`Benchmark` is a factory: ``make()`` performs setup and returns
a zero-argument callable that executes one batch and returns the number
of operations it performed.  Fresh state per sample keeps single-use
objects (schedulers) honest and stops cross-sample cache pollution.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True)
class Benchmark:
    """One named workload: ``make()`` -> batch callable -> ops performed."""

    name: str
    group: str
    make: Callable[[], Callable[[], int]]
    unit: str = "ops/s"
    higher_is_better: bool = True
    description: str = ""


@dataclass(frozen=True)
class RunnerConfig:
    """Sampling parameters shared by a whole suite run."""

    repeats: int = 5
    """Retained samples per benchmark."""
    k: int = 3
    """Timings per sample; the best (fastest) one is kept."""
    warmup: int = 1
    """Leading invocations discarded before sampling starts."""
    bootstrap: int = 2000
    """Bootstrap resamples for the confidence interval."""
    seed: int = 0
    """Bootstrap RNG seed (determinism of the CI, not of the timings)."""

    def scaled_down(self) -> "RunnerConfig":
        """The quick/selftest variant: enough to exercise every code
        path, not enough to produce publishable numbers."""
        return RunnerConfig(repeats=2, k=1, warmup=1, bootstrap=200, seed=self.seed)


@dataclass
class BenchResult:
    """Median + CI of one benchmark's throughput samples."""

    name: str
    group: str
    unit: str
    higher_is_better: bool
    samples: list[float] = field(default_factory=list)
    median: float = 0.0
    ci_lo: float = 0.0
    ci_hi: float = 0.0
    ops_per_batch: int = 0

    def to_dict(self) -> dict:
        return {
            "group": self.group,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "median": self.median,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "samples": self.samples,
            "ops_per_batch": self.ops_per_batch,
        }


def median(values: Sequence[float]) -> float:
    xs = sorted(values)
    n = len(xs)
    if not n:
        raise ValueError("empty sample set")
    mid = n // 2
    return xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])


def bootstrap_ci(
    samples: Sequence[float],
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the median of ``samples``.

    Deterministic given ``seed``; degenerates gracefully for tiny sample
    sets (with one sample the interval collapses onto it).
    """
    xs = list(samples)
    if not xs:
        raise ValueError("empty sample set")
    if len(xs) == 1:
        return xs[0], xs[0]
    rng = random.Random(seed)
    n = len(xs)
    meds = sorted(median([xs[rng.randrange(n)] for _ in range(n)]) for _ in range(n_boot))
    lo = meds[max(0, int(math.floor(alpha / 2 * n_boot)) - 1)]
    hi = meds[min(n_boot - 1, int(math.ceil((1 - alpha / 2) * n_boot)) - 1)]
    return lo, hi


def run_benchmark(bench: Benchmark, config: RunnerConfig | None = None) -> BenchResult:
    """Time ``bench`` under ``config`` and summarize the samples."""
    cfg = config or RunnerConfig()
    perf = time.perf_counter
    samples: list[float] = []
    ops_per_batch = 0
    for _ in range(cfg.warmup):
        batch = bench.make()
        batch()
    for _ in range(cfg.repeats):
        best = math.inf
        for _ in range(cfg.k):
            batch = bench.make()
            t0 = perf()
            ops = batch()
            dt = perf() - t0
            ops_per_batch = ops
            if dt <= 0.0:  # clock resolution floor; count it as one tick
                dt = 1e-9
            per_op = dt / max(1, ops)
            if per_op < best:
                best = per_op
        samples.append(1.0 / best)
    lo, hi = bootstrap_ci(samples, n_boot=cfg.bootstrap, seed=cfg.seed)
    return BenchResult(
        name=bench.name,
        group=bench.group,
        unit=bench.unit,
        higher_is_better=bench.higher_is_better,
        samples=samples,
        median=median(samples),
        ci_lo=lo,
        ci_hi=hi,
        ops_per_batch=ops_per_batch,
    )


def calibrate(loops: int = 200_000, k: int = 3) -> float:
    """Score (iterations/s) of a fixed pure-Python spin loop.

    Dividing any benchmark score by this number yields a roughly
    machine-portable "calibrated" score: the reference loop exercises the
    same interpreter dispatch the hot paths do, so the ratio cancels most
    of the difference between a laptop and a CI container.
    """
    perf = time.perf_counter
    best = math.inf
    for _ in range(k):
        acc = 0
        t0 = perf()
        for i in range(loops):
            acc += i
        dt = perf() - t0
        best = min(best, max(dt, 1e-9))
    return loops / best


def run_suite(
    benches: Sequence[Benchmark],
    config: RunnerConfig | None = None,
    progress: Callable[[str, BenchResult], None] | None = None,
) -> dict[str, BenchResult]:
    """Run every benchmark and return ``{name: result}`` in suite order."""
    cfg = config or RunnerConfig()
    out: dict[str, BenchResult] = {}
    for bench in benches:
        result = run_benchmark(bench, cfg)
        out[bench.name] = result
        if progress is not None:
            progress(bench.name, result)
    return out
