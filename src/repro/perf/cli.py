"""``python -m repro perf`` -- measure the hot paths and defend them.

Modes:

* default -- run the benchmark suite at default scale, print per-group
  tables, and write the next ``BENCH_<n>.json`` at the repo root.
* ``--baseline PATH`` -- additionally compare (calibrated) against a
  previous BENCH file and **exit 1** if any benchmark regressed by more
  than ``--gate-threshold`` (default 15%) or disappeared.
* ``--selftest`` -- CI install check: run every benchmark at a shrunken
  scale, verify the JSON round-trip, and prove the regression gate both
  passes on identical runs and fires on a synthetically slowed copy.
  Writes nothing; deterministic pass/fail, no timing thresholds.

Examples::

    python -m repro perf
    python -m repro perf --baseline BENCH_seed.json
    python -m repro perf --only scheduler --repeats 7
    python -m repro perf --selftest
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.perf.bench import BenchResult, RunnerConfig, calibrate, run_suite
from repro.perf.compare import (
    bench_payload,
    compare_runs,
    load_bench_json,
    next_bench_path,
    repo_root,
    write_bench_json,
)
from repro.perf.suites import benchmarks, groups


def _fmt_result(r: BenchResult) -> str:
    return (
        f"  {r.name:<34} {r.median:>14,.0f} {r.unit:<8} "
        f"[{r.ci_lo:,.0f}, {r.ci_hi:,.0f}]  n={len(r.samples)}"
    )


def _run(args: argparse.Namespace) -> int:
    scale = "selftest" if args.quick else "default"
    benches = benchmarks(scale)
    if args.only:
        wanted = set(args.only)
        benches = [b for b in benches if b.name in wanted or b.group in wanted]
        unknown = wanted - {b.name for b in benches} - {b.group for b in benches}
        if unknown:
            print(f"unknown benchmark/group selector(s): {sorted(unknown)}")
            return 2
        if not benches:
            print("selection matched no benchmarks")
            return 2
    cfg = RunnerConfig(repeats=args.repeats, k=args.k, warmup=args.warmup)
    if args.quick:
        cfg = cfg.scaled_down()
    print(f"calibrating reference loop ...", flush=True)
    cal = calibrate()
    print(f"calibration: {cal:,.0f} iter/s")
    t0 = time.time()
    results: dict[str, BenchResult] = {}
    for group, members in groups(benches).items():
        print(f"{group}:")
        results.update(
            run_suite(members, cfg, progress=lambda name, r: print(_fmt_result(r), flush=True))
        )
    print(f"suite done in {time.time() - t0:.1f}s")

    payload = bench_payload(
        results,
        calibration=cal,
        config={"scale": scale, "repeats": cfg.repeats, "k": cfg.k, "warmup": cfg.warmup},
        label=args.label,
    )
    if not args.no_write:
        root = repo_root()
        out = Path(args.out) if args.out else next_bench_path(root)
        write_bench_json(payload, out)
        print(f"wrote {out}")

    if args.baseline:
        return _gate(load_bench_json(args.baseline), payload, args.gate_threshold)
    return 0


def _gate(baseline: dict, current: dict, threshold: float) -> int:
    deltas, missing = compare_runs(baseline, current, threshold=threshold)
    print(f"\nregression gate vs baseline ({threshold:.0%} threshold, calibrated):")
    for d in deltas:
        print("  " + d.describe())
    for name in missing:
        print(f"  {name:<34} MISSING from current run")
    bad = [d for d in deltas if d.regressed]
    if bad or missing:
        print(f"perf gate: FAILED ({len(bad)} regression(s), {len(missing)} missing)")
        return 1
    print("perf gate: ok")
    return 0


def _selftest(args: argparse.Namespace) -> int:
    failures = 0
    t0 = time.time()

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if not ok:
            failures += 1
        print(f"  {label:<52} [{'ok' if ok else 'FAIL'}]{' ' + detail if detail else ''}")

    cfg = RunnerConfig().scaled_down()
    benches = benchmarks("selftest")
    cal = calibrate(loops=50_000, k=1)
    check("calibration positive", cal > 0, f"{cal:,.0f} iter/s")

    results = run_suite(benches, cfg)
    for b in benches:
        r = results.get(b.name)
        ok = (
            r is not None
            and len(r.samples) == cfg.repeats
            and r.median > 0
            and r.ci_lo <= r.median <= r.ci_hi
            and r.ops_per_batch > 0
        )
        check(f"bench {b.name} runs and measures", ok)

    payload = bench_payload(results, cal, {"scale": "selftest"}, label="selftest")
    with tempfile.TemporaryDirectory() as tmp:
        path = write_bench_json(payload, Path(tmp) / "BENCH_selftest.json")
        reloaded = load_bench_json(path)
        check("BENCH json round-trips", reloaded["results"].keys() == payload["results"].keys())

    deltas, missing = compare_runs(payload, payload)
    check(
        "gate passes on identical runs",
        not missing and all(not d.regressed for d in deltas),
    )

    slowed = copy.deepcopy(payload)
    victim = benches[0].name
    for field in ("median", "ci_lo", "ci_hi"):
        slowed["results"][victim][field] = payload["results"][victim][field] * 0.5
    deltas, _ = compare_runs(payload, slowed, threshold=0.15)
    check(
        "gate fires on a 2x slowdown",
        any(d.name == victim and d.regressed for d in deltas),
    )

    dropped = copy.deepcopy(payload)
    del dropped["results"][victim]
    _, missing = compare_runs(payload, dropped)
    check("gate flags a dropped benchmark", missing == [victim])

    seed = repo_root() / "BENCH_seed.json"
    if seed.exists():
        try:
            load_bench_json(seed)
            check("committed BENCH_seed.json loads", True)
        except (ValueError, json.JSONDecodeError) as exc:
            check("committed BENCH_seed.json loads", False, str(exc))

    print(f"perf selftest {'passed' if not failures else 'FAILED'} in {time.time() - t0:.1f}s")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro perf",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--selftest", action="store_true",
                    help="deterministic CI install check (no BENCH file written)")
    ap.add_argument("--baseline", type=str, default=None,
                    help="BENCH json to gate against (exit 1 on >threshold regression)")
    ap.add_argument("--gate-threshold", type=float, default=0.15,
                    help="relative slowdown that fails the gate (default 0.15)")
    ap.add_argument("--only", action="append", default=None,
                    help="benchmark or group name (repeatable)")
    ap.add_argument("--out", type=str, default=None,
                    help="output path (default: next BENCH_<n>.json at the repo root)")
    ap.add_argument("--no-write", action="store_true", help="do not write a BENCH file")
    ap.add_argument("--label", type=str, default="", help="free-form label stored in the json")
    ap.add_argument("--repeats", type=int, default=5, help="retained samples per benchmark")
    ap.add_argument("--k", type=int, default=3, help="timings per sample (min is kept)")
    ap.add_argument("--warmup", type=int, default=1, help="discarded leading invocations")
    ap.add_argument("--quick", action="store_true",
                    help="shrunken workloads and sampling (not for BENCH numbers)")
    args = ap.parse_args(argv)
    if args.selftest:
        return _selftest(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
