"""BENCH JSON files: serialization, numbering, and the regression gate.

A BENCH file is one suite run: per-benchmark median + bootstrap CI +
raw samples, plus the in-process calibration score that makes scores
comparable across machines.  ``BENCH_seed.json`` at the repo root is the
committed baseline; ``python -m repro perf`` emits ``BENCH_<n>.json``
siblings, growing the repo's performance trajectory one PR at a time.

The gate compares **calibrated** scores (score / reference-loop score):
raw ops/s on a laptop and on a throttled CI container differ 3x for
reasons that have nothing to do with the code.  A benchmark regresses
when its calibrated median is more than ``threshold`` (default 15%)
worse than the baseline's, with two noise guards:

* **CI overlap** -- if the current CI overlaps the baseline's CI, the
  difference is not resolvable at this sample size and is not flagged.
* **Calibration forgives, never accuses** -- the regression must also
  show up in the *raw* ratio.  The reference loop is pure interpreter
  dispatch; real workloads (locks, syscalls, memory traffic) scale
  less than 1:1 with host speed, so on a host *faster* than the
  baseline's, dividing by the calibration score deflates every
  benchmark and manufactures regressions out of thin air.  Calibration
  exists to excuse slower raw numbers on a slower host -- a benchmark
  whose raw score is at or above the baseline's cannot be a code
  regression.  (The dual risk -- a genuinely slower change masked by a
  much faster host -- is accepted: it re-fires on the next
  comparable-host run, while a false alarm would block every PR.)
"""

from __future__ import annotations

import json
import platform
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.perf.bench import BenchResult

SCHEMA_VERSION = 1
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def bench_payload(
    results: Mapping[str, BenchResult],
    calibration: float,
    config: Mapping[str, object],
    label: str = "",
) -> dict:
    """The JSON document for one suite run."""
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "calibration": calibration,
        "config": dict(config),
        "results": {name: r.to_dict() for name, r in results.items()},
    }


def write_bench_json(payload: dict, path: Path) -> Path:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: Path | str) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported BENCH schema {data.get('schema')!r}")
    return data


def next_bench_path(root: Path) -> Path:
    """First free ``BENCH_<n>.json`` under ``root`` (seed excluded)."""
    taken = set()
    for p in root.glob("BENCH_*.json"):
        m = _BENCH_RE.match(p.name)
        if m:
            taken.add(int(m.group(1)))
    n = 1
    while n in taken:
        n += 1
    return root / f"BENCH_{n}.json"


def repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor holding pyproject.toml (fallback: cwd) -- BENCH
    files live at the repo root regardless of where the CLI runs."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


# ---------------------------------------------------------------------------
# comparison


@dataclass(frozen=True)
class Delta:
    """One benchmark's baseline-vs-current comparison (calibrated)."""

    name: str
    unit: str
    baseline: float
    """Raw baseline median, in the benchmark's own units (for display)."""
    current: float
    """Raw current median, same units."""
    ratio: float
    """current / baseline in calibrated units; >1 means faster for
    higher-is-better benchmarks."""
    raw_ratio: float
    """current / baseline in raw units (same orientation as ``ratio``).
    A regression must show in both: see 'calibration forgives, never
    accuses' in the module docstring."""
    regressed: bool
    resolvable: bool
    """False when the CIs overlap: the difference is inside noise."""

    def describe(self) -> str:
        tag = "REGRESSED" if self.regressed else ("~" if not self.resolvable else "ok")
        return (
            f"{self.name:<34} {self.ratio:>6.2f}x vs baseline (calibrated; "
            f"raw {self.raw_ratio:.2f}x, {self.current:,.0f} vs "
            f"{self.baseline:,.0f} {self.unit}) [{tag}]"
        )


def compare_runs(
    baseline: dict, current: dict, threshold: float = 0.15
) -> tuple[list[Delta], list[str]]:
    """Compare two BENCH documents; returns ``(deltas, missing)``.

    ``missing`` lists benchmarks present in the baseline but absent from
    the current run (a silently-dropped benchmark must fail the gate too,
    otherwise deleting a slow benchmark "fixes" its regression).
    """
    base_cal = float(baseline.get("calibration") or 1.0)
    cur_cal = float(current.get("calibration") or 1.0)
    deltas: list[Delta] = []
    missing: list[str] = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name, base in base_results.items():
        cur = cur_results.get(name)
        if cur is None:
            missing.append(name)
            continue
        hib = bool(base.get("higher_is_better", True))
        b_raw, c_raw = float(base["median"]), float(cur["median"])
        b = b_raw / base_cal
        c = c_raw / cur_cal
        if b <= 0 or c <= 0:
            continue
        ratio = (c / b) if hib else (b / c)
        raw_ratio = (c_raw / b_raw) if hib else (b_raw / c_raw)
        b_lo, b_hi = float(base["ci_lo"]) / base_cal, float(base["ci_hi"]) / base_cal
        c_lo, c_hi = float(cur["ci_lo"]) / cur_cal, float(cur["ci_hi"]) / cur_cal
        resolvable = c_hi < b_lo or c_lo > b_hi
        bar = 1.0 - threshold
        regressed = resolvable and ratio < bar and raw_ratio < bar
        deltas.append(
            Delta(
                name=name,
                unit=str(base.get("unit", "ops/s")),
                baseline=b_raw,
                current=c_raw,
                ratio=ratio,
                raw_ratio=raw_ratio,
                regressed=regressed,
                resolvable=resolvable,
            )
        )
    return deltas, missing
