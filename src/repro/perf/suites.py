"""The benchmark catalogue: what "fast" means for this scheduler.

Four layers, mirroring the hot-path inventory in docs/PERFORMANCE.md:

* ``structs`` -- the shared concurrent structures every scheduler
  operation funnels through: :class:`~repro.core.taskmap.TaskMap`
  insert/get, :class:`~repro.core.recovery_table.RecoveryTable` claims,
  incarnation replacement (the "recover" op), and the notification
  bit-vector protocol on a :class:`~repro.core.records.TaskRecord`.
* ``scheduler`` -- whole-scheduler throughput on a no-op-compute grid
  graph, where bookkeeping *is* the workload: with tracing off (the
  number the paper's <5% overhead claim lives or dies by) and with a
  live :class:`~repro.obs.events.EventLog` attached.
* ``threaded`` / ``simulator`` -- the two parallel runtimes:
  real-thread contention at 1/4/8 workers, and the discrete-event loop's
  events/sec (every figure harness executes it millions of times).
* ``e2e`` -- tiny real-kernel LCS and Floyd-Warshall runs through the
  full FT stack, so a regression that hides between layers still shows;
  plus a kernel-bound Cholesky instance where NumPy compute, not
  bookkeeping, dominates (the regime ProcessRuntime targets).
* ``obs`` -- the live-telemetry layer (:mod:`repro.obs.live`): push
  instrument costs (``Counter.inc``, ``Histogram.observe``), the cached
  ``_mx`` guard a telemetry-off run pays per would-be publication, and
  a full ``registry.collect()`` sampler tick.
* ``comm`` -- the wire layer under :class:`~repro.runtime.cluster.
  ClusterRuntime`: the frame codec's encode/decode round trip at small
  and block-sized payloads, and ping-pong RTT over ``inproc://`` and
  localhost ``tcp://`` (the latency floor every remote dispatch pays).
* ``procpool`` -- FTScheduler + :class:`~repro.runtime.procpool.
  ProcessRuntime` on real-kernel apps over a shared-memory store: pool
  spin-up, descriptor shipping, the IPC round trip, and worker attach
  are all on the measured path (this is the dispatch-overhead number,
  not a speedup claim -- tiny graphs are bookkeeping-bound by design).
* ``finegrain`` -- the dispatch-overhead regime isolated: an LCS grid of
  many 16-element tiles through ProcessRuntime (per-task overhead, not
  kernels, dominates -- the workload the pipelined batched dispatch path
  exists for), plus a bare ``compute_dispatch`` microbenchmark against a
  persistent one-process pool, whose inverse score is the ms/job wire
  floor under every fine-grain task.

Scales: ``default`` produces the BENCH numbers; ``selftest`` shrinks
every workload so the whole suite (and CI) finishes in seconds.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.perf.bench import Benchmark

#: Unique inproc endpoint names across repeated benchmark ``make()`` calls.
_RTT_IDS = itertools.count()

# ---------------------------------------------------------------------------
# workload builders


def _noop_grid_spec(n: int):
    """An n x n dependence grid (LCS-shaped) whose tasks write one block
    and compute nothing: scheduler bookkeeping dominates by design."""
    from repro.graph.explicit import ExplicitTaskGraph
    from repro.graph.taskspec import BlockRef

    def noop(key, ctx):
        ctx.write(BlockRef(key, 0), 0)

    edges = []
    for i in range(n):
        for j in range(n):
            if i:
                edges.append(((i - 1, j), (i, j)))
            if j:
                edges.append(((i, j - 1), (i, j)))
    return ExplicitTaskGraph(edges, compute=noop)


def _run_ft(spec, runtime, event_log=None) -> int:
    from repro.core.ft import FTScheduler

    sched = FTScheduler(spec, runtime, event_log=event_log)
    sched.run()
    return sched.trace.total_computes


def _spawn_tree_root(runtime, depth: int):
    """Binary spawn tree of trivial frames: the simulator loop's pure
    overhead, undiluted by scheduler or kernel work."""
    from repro.runtime.frames import Frame

    def node(d):
        if d <= 0:
            return
        runtime.spawn(lambda: node(d - 1))
        runtime.spawn(lambda: node(d - 1))

    return Frame(lambda: node(depth))


# ---------------------------------------------------------------------------
# structs


def _bench_taskmap_insert(n_keys: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.core.taskmap import TaskMap

        tm = TaskMap(lambda k: 2)
        keys = list(range(n_keys))

        def batch() -> int:
            insert = tm.insert_if_absent
            for key in keys:
                insert(key)  # miss: allocates the record
            for key in keys:
                insert(key)  # hit: the common re-traversal case
            return 2 * n_keys

        return batch

    return make


def _bench_taskmap_get(n_keys: int, rounds: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.core.taskmap import TaskMap

        tm = TaskMap(lambda k: 2)
        keys = list(range(n_keys))
        for key in keys:
            tm.insert_if_absent(key)

        def batch() -> int:
            get = tm.get
            for _ in range(rounds):
                for key in keys:
                    get(key)
            return rounds * n_keys

        return batch

    return make


def _bench_recovery_claim(n_keys: int, lives: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.core.recovery_table import RecoveryTable

        def batch() -> int:
            table = RecoveryTable()
            claim = table.check_and_claim
            for life in range(1, lives + 1):
                for key in range(n_keys):
                    claim(key, life)
                    claim(key, life)  # duplicate observer standing down
            return 2 * n_keys * lives

        return batch

    return make


def _bench_recovery_replace(n_keys: int, lives: int) -> Callable[[], Callable[[], int]]:
    """The RECOVERTASKONCE structure op: claim the failure, then install
    a fresh incarnation (the paper's REPLACETASK)."""

    def make():
        from repro.core.recovery_table import RecoveryTable
        from repro.core.taskmap import TaskMap

        tm = TaskMap(lambda k: 2)
        for key in range(n_keys):
            tm.insert_if_absent(key)

        def batch() -> int:
            table = RecoveryTable()
            for life in range(1, lives + 1):
                for key in range(n_keys):
                    if table.check_and_claim(key, life):
                        tm.replace(key)
            return n_keys * lives

        return batch

    return make


def _bench_notify_bits(n_preds: int, rounds: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.core.records import TaskRecord

        rec = TaskRecord("k", n_preds)

        def batch() -> int:
            lock = rec.lock
            unset = rec.try_unset_bit
            for _ in range(rounds):
                for bit in range(n_preds + 1):
                    with lock:
                        unset(bit)
                with lock:
                    rec.reset_for_reuse()
            return rounds * (n_preds + 1)

        return batch

    return make


# ---------------------------------------------------------------------------
# scheduler / runtimes / e2e


def _bench_sched(n: int, traced: bool) -> Callable[[], Callable[[], int]]:
    spec = _noop_grid_spec(n)

    def make():
        from repro.obs.events import EventLog
        from repro.runtime.inline import InlineRuntime

        log = EventLog() if traced else None

        def batch() -> int:
            return _run_ft(spec, InlineRuntime(), event_log=log)

        return batch

    return make


def _bench_threaded(n: int, workers: int) -> Callable[[], Callable[[], int]]:
    spec = _noop_grid_spec(n)

    def make():
        from repro.runtime.threadpool import ThreadedRuntime

        def batch() -> int:
            return _run_ft(spec, ThreadedRuntime(workers=workers, seed=1))

        return batch

    return make


def _bench_simulator(depth: int, workers: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.runtime.simulator import SimulatedRuntime

        def batch() -> int:
            rt = SimulatedRuntime(workers=workers, seed=1)
            return rt.execute(_spawn_tree_root(rt, depth)).frames

        return batch

    return make


def _bench_e2e(app_name: str) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.apps import make_app
        from repro.runtime.simulator import SimulatedRuntime

        app = make_app(app_name, scale="tiny")

        def batch() -> int:
            from repro.core.ft import FTScheduler

            store = app.make_store(True)
            sched = FTScheduler(app, SimulatedRuntime(workers=4, seed=1), store=store)
            sched.run()
            app.verify(store)
            return sched.trace.total_computes

        return batch

    return make


def _bench_e2e_kernel(app_name: str, n: int, block: int) -> Callable[[], Callable[[], int]]:
    """Kernel-bound e2e: few, fat tasks -- compute dominates bookkeeping."""

    def make():
        from repro.apps import AppConfig, make_app
        from repro.runtime.inline import InlineRuntime

        app = make_app(app_name, config=AppConfig(n=n, block=block))

        def batch() -> int:
            from repro.core.ft import FTScheduler

            store = app.make_store(True)
            sched = FTScheduler(app, InlineRuntime(), store=store)
            sched.run()
            app.verify(store)
            return sched.trace.total_computes

        return batch

    return make


def _bench_procpool(app_name: str, workers: int) -> Callable[[], Callable[[], int]]:
    """Full multi-process dispatch path on a tiny real-kernel app.

    Closures are unpicklable, so this group must use registry apps (the
    spec is shipped to workers by pickle once per pool); the no-op grid
    specs above cannot run here.
    """

    def make():
        from repro.apps import make_app
        from repro.runtime.procpool import ProcessRuntime

        app = make_app(app_name, scale="tiny")

        def batch() -> int:
            from repro.core.ft import FTScheduler

            store = app.make_store(True, shared=True)
            rt = ProcessRuntime(workers=workers, seed=1)
            sched = FTScheduler(app, rt, store=store)
            sched.run()
            app.verify(store)
            store.close()
            return sched.trace.total_computes

        return batch

    return make


def _bench_finegrain_lcs(n: int, block: int, workers: int) -> Callable[[], Callable[[], int]]:
    """Fine-grain e2e: an LCS grid of many *tiny* tiles through the full
    multi-process FT stack, so per-task dispatch overhead -- not kernel
    time -- dominates the score.  This is the workload the pipelined
    batched dispatch path (ROADMAP item 4) exists for."""

    def make():
        from repro.apps import AppConfig, make_app
        from repro.runtime.procpool import ProcessRuntime

        app = make_app("lcs", config=AppConfig(n=n, block=block))

        def batch() -> int:
            from repro.core.ft import FTScheduler

            store = app.make_store(True, shared=True)
            rt = ProcessRuntime(workers=workers, seed=1)
            sched = FTScheduler(app, rt, store=store)
            sched.run()
            app.verify(store)
            store.close()
            return sched.trace.total_computes

        return batch

    return make


class _NoopDispatchSpec:
    """Module-level (hence picklable) spec with no inputs and a trivial
    compute: a dispatched job is pure round-trip overhead."""

    def inputs(self, key):
        return []

    def compute(self, key, ctx):
        ctx.write(("out", 0), key)


class _DispatchBenchContext:
    """The minimal parent-side context ``compute_dispatch`` touches: no
    store (inputs would ship by pickle; there are none), writes dropped."""

    store = None

    def read(self, ref):
        raise AssertionError("noop spec declares no inputs")

    def write(self, ref, value):
        pass


def _bench_dispatch_overhead(n_jobs: int) -> Callable[[], Callable[[], int]]:
    """Bare ``compute_dispatch`` round trips against a persistent one-
    process pool: no scheduler, no store, no kernel -- the per-job cost
    of the pipelined wire path itself (jid framing, batch pack/unpack,
    reply routing).  The inverse of this score is the ms/task floor the
    e2e fine-grain benchmarks pay per dispatch."""

    def make():
        from repro.runtime.procpool import ProcessRuntime

        rt = ProcessRuntime(workers=1, seed=1, procs=1)
        rt._ensure_pool()
        spec = _NoopDispatchSpec()
        ctx = _DispatchBenchContext()
        rt.compute_dispatch(spec, -1, ctx)  # ship the spec; warm the pipe
        # The pool is deliberately not torn down per batch: steady-state
        # dispatch is the measurand.  Workers are daemonic; the handful
        # of sample pools die with the benchmark process.

        def batch() -> int:
            dispatch = rt.compute_dispatch
            for i in range(n_jobs):
                dispatch(spec, i, ctx)
            return n_jobs

        return batch

    return make


def _bench_metrics_counter(n: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.obs.live import MetricsRegistry

        counter = MetricsRegistry().counter("bench_total", "emit-cost probe")

        def batch() -> int:
            inc = counter.inc
            for _ in range(n):
                inc()
            return n

        return batch

    return make


def _bench_metrics_histogram(n: int) -> Callable[[], Callable[[], int]]:
    def make():
        from repro.obs.live import MetricsRegistry

        hist = MetricsRegistry().histogram("bench_seconds", "emit-cost probe")

        def batch() -> int:
            observe = hist.observe
            for _ in range(n):
                observe(1.3e-4)
            return n

        return batch

    return make


def _bench_metrics_off_guard(n: int) -> Callable[[], Callable[[], int]]:
    """The telemetry-off hot path: the cached ``_mx`` identity-guard test
    that every would-be publication pays when metrics are disabled."""

    def make():
        from repro.obs.live import NULL_METRICS

        registry = NULL_METRICS
        mx = registry is not NULL_METRICS
        counter = registry.counter("bench_total", "never incremented")

        def batch() -> int:
            for _ in range(n):
                if mx:
                    counter.inc()
            return n

        return batch

    return make


def _bench_registry_collect(instruments: int, rounds: int) -> Callable[[], Callable[[], int]]:
    """One collector tick over a realistically populated registry."""

    def make():
        from repro.obs.live import MetricsRegistry

        reg = MetricsRegistry()
        state = {"v": 0.0}
        for i in range(instruments):
            reg.counter("bench_total", "probe", idx=i).inc()
            reg.callback_gauge("bench_gauge", lambda: state["v"], "probe", idx=i)
        hist = reg.histogram("bench_seconds", "probe")
        hist.observe(1e-4)

        def batch() -> int:
            samples = 0
            for _ in range(rounds):
                samples += len(reg.collect())
            return samples

        return batch

    return make


# ---------------------------------------------------------------------------
# comm: the wire layer under ClusterRuntime


def _bench_frame_codec(n_msgs: int, payload_bytes: int) -> Callable[[], Callable[[], int]]:
    """Full wire path in-process: dumps -> pack -> FrameDecoder -> loads.
    This is the per-message CPU cost every cluster dispatch pays twice
    (job out, reply back), with no socket in the way."""

    def make():
        from repro.comm import frame

        msg = ("job", (7, 7), [(("tile", 7, 7), 3)], False, 0, b"x" * payload_bytes)

        def batch() -> int:
            decoder = frame.FrameDecoder()
            feed = decoder.feed
            next_frame = decoder.next_frame
            loads = frame.loads
            encode = frame.encode_message
            for _ in range(n_msgs):
                feed(encode(msg))
                loads(next_frame())
            return n_msgs

        return batch

    return make


def _bench_comm_rtt(scheme: str, n_msgs: int) -> Callable[[], Callable[[], int]]:
    """Ping-pong round trips over a live connection: the latency floor
    under every ClusterRuntime dispatch on this transport."""

    def make():
        from repro import comm

        def echo(c):
            while True:
                try:
                    c.send(c.recv())
                except comm.CommClosedError:
                    return

        if scheme == "tcp":
            addr = "tcp://127.0.0.1:0"
        else:
            addr = f"inproc://perf-rtt-{next(_RTT_IDS)}"
        listener = comm.listen(addr, echo)
        chan = comm.connect(listener.address)
        msg = ("ping", (3, 3), [("b", 0)])

        def batch() -> int:
            send = chan.send
            recv = chan.recv
            for _ in range(n_msgs):
                send(msg)
                recv(timeout=30)
            return n_msgs

        return batch

    return make


def _bench_block_ship(
    scheme: str, payload_bytes: int, n_msgs: int, oob: bool = True
) -> Callable[[], Callable[[], int]]:
    """One-way block shipping over a live connection: ``send_oob`` on the
    zero-copy data plane, or plain ``send`` for the copying baseline the
    OOB speedup is measured against.  A sync ping-pong after the burst
    makes the receiver's decode cost part of the measurement."""

    def make():
        import numpy as np

        from repro import comm

        def sink(c):
            while True:
                try:
                    msg = c.recv()
                except comm.CommClosedError:
                    return
                if isinstance(msg, tuple) and msg[0] == "sync":
                    c.send(("ack",))

        if scheme == "tcp":
            addr = "tcp://127.0.0.1:0"
        else:
            addr = f"inproc://perf-ship-{next(_RTT_IDS)}"
        listener = comm.listen(addr, sink)
        chan = comm.connect(listener.address)
        arr = np.arange(payload_bytes // 8, dtype=np.float64)
        send = chan.send_oob if oob else chan.send

        def batch() -> int:
            for _ in range(n_msgs):
                send(("blk", arr))
            chan.send(("sync",))
            chan.recv(timeout=60)
            return n_msgs

        return batch

    return make


def _bench_fetch_rtt(scheme: str, payload_bytes: int, n_msgs: int) -> Callable[[], Callable[[], int]]:
    """Block-fetch round trips: a tiny request out, a block-sized
    ``send_oob`` reply back -- the shape of every worker cache miss."""

    def make():
        import numpy as np

        from repro import comm

        def server(c):
            arr = np.arange(payload_bytes // 8, dtype=np.float64)
            while True:
                try:
                    c.recv()
                except comm.CommClosedError:
                    return
                c.send_oob(("data", arr))

        if scheme == "tcp":
            addr = "tcp://127.0.0.1:0"
        else:
            addr = f"inproc://perf-fetch-{next(_RTT_IDS)}"
        listener = comm.listen(addr, server)
        chan = comm.connect(listener.address)

        def batch() -> int:
            send = chan.send
            recv = chan.recv
            for _ in range(n_msgs):
                send(("fetch", "b"))
                recv(timeout=60)
            return n_msgs

        return batch

    return make


# ---------------------------------------------------------------------------
# the suite


def benchmarks(scale: str = "default") -> list[Benchmark]:
    """The full catalogue at ``scale`` ('default' or 'selftest')."""
    if scale not in ("default", "selftest"):
        raise ValueError(f"unknown perf scale {scale!r}")
    tiny = scale == "selftest"
    grid = 10 if tiny else 32
    tgrid = 8 if tiny else 20
    depth = 8 if tiny else 14
    keys = 512 if tiny else 4096
    rounds = 2 if tiny else 8

    return [
        Benchmark(
            "taskmap_insert", "structs", _bench_taskmap_insert(keys),
            description="TaskMap.insert_if_absent, one miss + one hit per key",
        ),
        Benchmark(
            "taskmap_get", "structs", _bench_taskmap_get(keys, rounds),
            description="TaskMap.get over resident keys (the read-only hot path)",
        ),
        Benchmark(
            "recovery_claim", "structs", _bench_recovery_claim(keys // 4, 3),
            description="RecoveryTable.check_and_claim, winner + duplicate per (key, life)",
        ),
        Benchmark(
            "recovery_replace", "structs", _bench_recovery_replace(keys // 8, 3),
            description="claim + TaskMap.replace: the recover structure op",
        ),
        Benchmark(
            "notify_bits", "structs", _bench_notify_bits(12, 64 if tiny else 512),
            description="locked ATOMICBITUNSET sweep + re-arm on one TaskRecord",
        ),
        Benchmark(
            "sched_tasks_per_sec_tracing_off", "scheduler", _bench_sched(grid, traced=False),
            unit="tasks/s",
            description="FTScheduler + InlineRuntime on a no-op grid, NULL_LOG",
        ),
        Benchmark(
            "sched_tasks_per_sec_traced", "scheduler", _bench_sched(grid, traced=True),
            unit="tasks/s",
            description="same grid with a live EventLog attached",
        ),
        Benchmark(
            "threaded_tasks_per_sec_w1", "threaded", _bench_threaded(tgrid, 1),
            unit="tasks/s", description="FTScheduler + ThreadedRuntime, 1 worker",
        ),
        Benchmark(
            "threaded_tasks_per_sec_w4", "threaded", _bench_threaded(tgrid, 4),
            unit="tasks/s", description="FTScheduler + ThreadedRuntime, 4 workers",
        ),
        Benchmark(
            "threaded_tasks_per_sec_w8", "threaded", _bench_threaded(tgrid, 8),
            unit="tasks/s", description="FTScheduler + ThreadedRuntime, 8 workers",
        ),
        Benchmark(
            "sim_events_per_sec", "simulator", _bench_simulator(depth, 8),
            unit="frames/s",
            description="SimulatedRuntime inner loop on a trivial binary spawn tree",
        ),
        Benchmark(
            "sim_park_storm", "simulator", _bench_simulator(max(4, depth - 4), 32),
            unit="frames/s",
            description="32 workers on a shallow tree: park/unpark and steal-probe storms",
        ),
        Benchmark(
            "e2e_lcs", "e2e", _bench_e2e("lcs"), unit="tasks/s",
            description="full FT stack, real LCS kernels, simulator @ 4 workers",
        ),
        Benchmark(
            "e2e_fw", "e2e", _bench_e2e("fw"), unit="tasks/s",
            description="full FT stack, real Floyd-Warshall kernels, simulator @ 4 workers",
        ),
        Benchmark(
            "e2e_cholesky_kernel_bound", "e2e",
            _bench_e2e_kernel("cholesky", n=96 if tiny else 384, block=32 if tiny else 96),
            unit="tasks/s",
            description="kernel-bound Cholesky (few fat tiles), inline: compute dominates",
        ),
        Benchmark(
            "metrics_counter_inc", "obs", _bench_metrics_counter(keys * 4),
            description="Counter.inc: the locked push-instrument fast path",
        ),
        Benchmark(
            "metrics_histogram_observe", "obs", _bench_metrics_histogram(keys * 4),
            description="Histogram.observe: bisect + locked bucket bump",
        ),
        Benchmark(
            "metrics_off_guard", "obs", _bench_metrics_off_guard(keys * 8),
            description="cached _mx guard with NULL_METRICS: the telemetry-off cost",
        ),
        Benchmark(
            "metrics_registry_collect", "obs",
            _bench_registry_collect(8 if tiny else 32, rounds),
            description="registry.collect() ticks over counters, callback gauges, a histogram",
        ),
        Benchmark(
            "frame_codec_small", "comm",
            _bench_frame_codec(256 if tiny else 4096, 64),
            unit="msgs/s",
            description="frame codec round trip (64 B payload): per-dispatch CPU cost",
        ),
        Benchmark(
            "frame_codec_64k", "comm",
            _bench_frame_codec(64 if tiny else 1024, 1 << 16),
            unit="msgs/s",
            description="frame codec round trip with a 64 KiB block payload",
        ),
        Benchmark(
            "comm_rtt_inproc", "comm",
            _bench_comm_rtt("inproc", 128 if tiny else 2048),
            unit="msgs/s",
            description="ping-pong RTT over inproc://: codec + queue handoff floor",
        ),
        Benchmark(
            "comm_rtt_tcp", "comm",
            _bench_comm_rtt("tcp", 64 if tiny else 1024),
            unit="msgs/s",
            description="ping-pong RTT over localhost tcp://: the cluster dispatch floor",
        ),
        Benchmark(
            "block_ship_plain_1m_inproc", "comm",
            _bench_block_ship("inproc", 1 << 20, 4 if tiny else 128, oob=False),
            unit="blocks/s",
            description="1 MiB blocks one-way via plain send: the copying baseline for the OOB speedup",
        ),
        Benchmark(
            "block_ship_64k_inproc", "comm",
            _bench_block_ship("inproc", 1 << 16, 16 if tiny else 512),
            unit="blocks/s",
            description="64 KiB blocks one-way over inproc:// via send_oob",
        ),
        Benchmark(
            "block_ship_1m_inproc", "comm",
            _bench_block_ship("inproc", 1 << 20, 4 if tiny else 128),
            unit="blocks/s",
            description="1 MiB blocks one-way over inproc:// via send_oob (zero-copy alias)",
        ),
        Benchmark(
            "block_ship_16m_inproc", "comm",
            _bench_block_ship("inproc", 16 << 20, 2 if tiny else 16),
            unit="blocks/s",
            description="16 MiB blocks one-way over inproc:// via send_oob",
        ),
        Benchmark(
            "block_ship_64k_tcp", "comm",
            _bench_block_ship("tcp", 1 << 16, 16 if tiny else 256),
            unit="blocks/s",
            description="64 KiB blocks one-way over localhost tcp:// via send_oob",
        ),
        Benchmark(
            "block_ship_1m_tcp", "comm",
            _bench_block_ship("tcp", 1 << 20, 4 if tiny else 64),
            unit="blocks/s",
            description="1 MiB blocks one-way over localhost tcp://: gather-send + pooled recv_into",
        ),
        Benchmark(
            "block_ship_16m_tcp", "comm",
            _bench_block_ship("tcp", 16 << 20, 2 if tiny else 8),
            unit="blocks/s",
            description="16 MiB blocks one-way over localhost tcp:// via send_oob",
        ),
        Benchmark(
            "fetch_rtt_1m_inproc", "comm",
            _bench_fetch_rtt("inproc", 1 << 20, 4 if tiny else 64),
            unit="msgs/s",
            description="1 MiB block-fetch RTT over inproc://: the worker cache-miss shape",
        ),
        Benchmark(
            "fetch_rtt_1m_tcp", "comm",
            _bench_fetch_rtt("tcp", 1 << 20, 4 if tiny else 32),
            unit="msgs/s",
            description="1 MiB block-fetch RTT over localhost tcp://",
        ),
        Benchmark(
            "finegrain_lcs_w2", "finegrain",
            _bench_finegrain_lcs(n=64 if tiny else 256, block=16, workers=2),
            unit="tasks/s",
            description="fine-grain LCS (16-elem tiles) through ProcessRuntime: dispatch-bound e2e",
        ),
        Benchmark(
            "dispatch_overhead", "finegrain",
            _bench_dispatch_overhead(64 if tiny else 512),
            unit="jobs/s",
            description="bare compute_dispatch round trips on a persistent 1-proc pool",
        ),
        Benchmark(
            "procpool_lcs_w2", "procpool", _bench_procpool("lcs", 2),
            unit="tasks/s",
            description="FTScheduler + ProcessRuntime(2) on tiny LCS over shm store",
        ),
        Benchmark(
            "procpool_cholesky_w2", "procpool", _bench_procpool("cholesky", 2),
            unit="tasks/s",
            description="FTScheduler + ProcessRuntime(2) on tiny Cholesky over shm store",
        ),
    ]


#: Default-scale suite (built lazily on first use by the CLI; importing
#: this module never imports numpy-heavy app code).
SUITE: tuple[str, ...] = tuple(b.name for b in benchmarks("selftest"))


def groups(benches: Sequence[Benchmark]) -> dict[str, list[Benchmark]]:
    out: dict[str, list[Benchmark]] = {}
    for b in benches:
        out.setdefault(b.group, []).append(b)
    return out
