"""Work-stealing execution runtimes.

The scheduler (``repro.core``) is written against a tiny
:class:`~repro.runtime.api.ExecutionContext` surface -- ``spawn`` a frame,
``charge`` virtual cost -- and therefore runs unchanged on three runtimes:

* :class:`~repro.runtime.inline.InlineRuntime` -- serial LIFO stack;
  the reference executor for unit tests and P=1 measurements.
* :class:`~repro.runtime.simulator.SimulatedRuntime` -- a deterministic
  discrete-event simulation of P workers with per-worker deques and
  randomized stealing, in *virtual time* driven by a
  :class:`~repro.runtime.costmodel.CostModel`.  This is the substitute for
  the paper's 48-core Cilk++ testbed (see DESIGN.md): the scheduling
  protocol is identical, only time is virtual.
* :class:`~repro.runtime.threadpool.ThreadedRuntime` -- real ``threading``
  workers with the same deque/steal protocol, used to stress the
  scheduler's synchronization under genuine interleaving (the GIL
  serializes the pure-Python bookkeeping, so this stresses races, not
  scalability).
* :class:`~repro.runtime.procpool.ProcessRuntime` -- the threaded
  runtime with compute phases dispatched to a pool of worker
  *processes* over a shared-memory block store: GIL-free multicore
  execution with wall-clock makespans; worker death surfaces as a
  recoverable compute-phase fault.
* :class:`~repro.runtime.cluster.ClusterRuntime` -- the same dispatch
  seam stretched over ``repro.comm`` to remote
  :class:`~repro.runtime.cluster.WorkerServer` processes
  (``tcp://host:port`` or in-process ``inproc://``): block payloads
  fetched lazily and cached by version, liveness by heartbeat, and a
  dead connection recovered through the identical ``WORKER_DOWN`` path.

Frames follow the Cilk discipline the paper's pseudocode assumes: a frame
never blocks; ``spawn`` pushes work to the bottom of the spawning worker's
deque; owners pop bottom (LIFO), thieves steal top (FIFO).
"""

from repro.runtime.api import ExecutionContext, RunResult, Runtime
from repro.runtime.cluster import ClusterRuntime, WorkerServer
from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame
from repro.runtime.deque import WorkDeque
from repro.runtime.inline import InlineRuntime
from repro.runtime.procpool import ProcessRuntime
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.threadpool import ThreadedRuntime

__all__ = [
    "ExecutionContext",
    "RunResult",
    "Runtime",
    "CostModel",
    "Frame",
    "WorkDeque",
    "ClusterRuntime",
    "InlineRuntime",
    "ProcessRuntime",
    "WorkerServer",
    "SimulatedRuntime",
    "ThreadedRuntime",
]
