"""Runtime interfaces shared by the inline, simulated, and threaded executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.runtime.frames import Frame


@runtime_checkable
class ExecutionContext(Protocol):
    """What scheduler code may do while running inside a frame."""

    @property
    def workers(self) -> int:
        """Number of workers (the paper's P)."""
        ...

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        """Push a child frame onto the current worker's deque bottom."""
        ...

    def charge(self, amount: float) -> None:
        """Account ``amount`` virtual time to the currently running frame.

        No-op on wall-clock runtimes.
        """
        ...


@dataclass
class RunResult:
    """Outcome of one ``Runtime.execute`` call."""

    makespan: float
    """Completion time: virtual time of the last frame completion for the
    simulator, wall-clock seconds for the threaded runtime, accumulated
    charge for the inline runtime."""

    frames: int = 0
    steals: int = 0
    failed_steals: int = 0
    workers: int = 1
    busy_time: list[float] = field(default_factory=list)
    """Per-worker accumulated frame-execution time (virtual time on the
    simulator/inline runtimes, wall-clock seconds on the threaded one)."""

    worker_frames: list[int] = field(default_factory=list)
    """Per-worker frame counts (sums to ``frames`` when populated)."""

    worker_steals: list[int] = field(default_factory=list)
    """Per-worker successful steals, attributed to the thief (sums to
    ``steals`` when populated)."""

    parks: int = 0
    """Transitions into idleness (a worker found nothing to run or steal)."""

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each worker spent executing frames."""
        if not self.busy_time or self.makespan <= 0:
            return 1.0
        return sum(self.busy_time) / (self.makespan * len(self.busy_time))


class Runtime(Protocol):
    """A frame executor: drives a root frame and its spawned descendants to
    quiescence, then reports timing."""

    @property
    def workers(self) -> int: ...

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None: ...

    def charge(self, amount: float) -> None: ...

    def execute(self, root: Frame) -> RunResult: ...
