"""Cluster runtime: compute phases executed by remote worker servers.

:class:`ClusterRuntime` is :class:`~repro.runtime.procpool.ProcessRuntime`'s
shape stretched over the comm layer: every piece of scheduler state --
task map, join counters, recovery table, block store -- stays in the
**parent**, scheduler frames still run on N parent threads, and only the
pure compute phase crosses the wire.  Each scheduler thread owns one
:class:`~repro.comm.core.Comm` channel to a :class:`WorkerServer`
(``python -m repro worker --listen tcp://...``), assigned round-robin
over the configured addresses.

What changes versus the pipe runtime is *how bytes move*:

* **Dispatch by descriptor.**  A job message carries the task key and
  the declared input references ``(block, version)`` -- never payloads.
  The parent still reads every input through its own context first (the
  fault gate: corruption flags, checksum mismatches, and evictions
  raise *here*, inside the scheduler's recovery path, before anything
  ships), holding the values for the duration of the dispatch.
* **Lazy fetch + versioned cache.**  The worker asks for a payload only
  on the first read of a version it has never seen (``FETCH`` event,
  parent serves it from the held values) and caches it in a local
  byte-bounded LRU keyed by ``(block, version)``.  Store versions are
  written once and kernels are deterministic, so the versioned key
  makes the cache trivially coherent -- a re-executed producer after
  recovery regenerates bit-identical bytes, and an *evicted* version
  faults parent-side before dispatch, so a stale cache entry can never
  be asked for a version the store would refuse.
* **Peer loss is a detected compute-phase fault.**  A dead connection,
  a refused reconnect, or ``heartbeat_timeout`` seconds of silence from
  a worker that should be heartbeating collapse into one path: emit
  ``DISCONNECT`` + ``WORKER_DOWN``, dial a replacement channel
  (``WORKER_UP`` + ``CONNECT``), raise
  :class:`~repro.exceptions.WorkerCrashError` -- and the untouched FT
  scheduler re-executes the lost subgraph through RECOVERTASKONCE,
  exactly as it does for a dead pipe worker.

Fault injection mirrors ``die_on``: the first dispatch of a listed key
makes its worker die *before* computing -- ``os._exit(73)`` on a TCP
server (genuine process death, indistinguishable from ``kill -9``), a
connection sever on an in-process server (the yanked-cable case) -- and
the recovered task's re-dispatch runs normally.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable

from repro.comm import frame
from repro.comm.core import Comm, CommClosedError, connect_with_retry, listen
from repro.exceptions import SchedulerError, WorkerCrashError
from repro.graph.taskspec import BlockRef
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import RunResult
from repro.runtime.frames import Frame
from repro.runtime.procpool import CRASH_EXIT_CODE, _POLL_SECONDS
from repro.runtime.threadpool import ThreadedRuntime

#: Default worker-side block-cache budget.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Parent-side liveness policy: a worker connection that stays byte-silent
#: this long while owing a reply is declared dead.  Workers heartbeat
#: every HEARTBEAT_INTERVAL_SECONDS (0.25 s), so the default tolerates
#: ~8 consecutive missed beats; see docs/DISTRIBUTED.md for tuning.
DEFAULT_HEARTBEAT_TIMEOUT = 2.0


# ---------------------------------------------------------------------------
# worker-server side


class BlockCache:
    """Byte-bounded LRU of decoded block payloads, keyed by
    ``(block, version)``.

    Versioned keys are what make this cache coherent with zero
    invalidation traffic: a version's bytes never change once written
    (determinism, Theorem 1), so an entry can be stale only by
    *absence*, never by content.  That guarantee holds *within* a run;
    across runs the same ``(block, version)`` pair can name different
    data, so entries are additionally scoped by the dispatching
    runtime's ``run token`` -- a long-lived server reused by many runs
    never crosses their payloads.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> tuple[bool, Any]:
        with self._lock:
            try:
                value, _ = self._entries[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: tuple, value: Any, nbytes: int) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted

    @property
    def nbytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)


class _FetchingContext:
    """Worker-side compute context: reads hit the local cache or fetch
    the payload from the parent over the job's comm channel; writes are
    buffered and applied by the parent (which re-enforces the declared
    footprint there)."""

    __slots__ = ("key", "_declared", "_comm", "_cache", "_token", "reads",
                 "writes", "written", "fetch_seconds")

    def __init__(
        self, key: Hashable, declared: frozenset, comm: Comm, cache: BlockCache, token: str
    ) -> None:
        self.key = key
        self._declared = declared
        self._token = token
        self._comm = comm
        self._cache = cache
        self.reads: list[BlockRef] = []
        self.writes: list[BlockRef] = []
        self.written: list[tuple[tuple, Any]] = []
        self.fetch_seconds = 0.0

    def read(self, ref: BlockRef) -> Any:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        if (ref.block, ref.version) not in self._declared:
            raise SchedulerError(
                f"task {self.key!r} read undeclared input {ref!r} on a cluster worker"
            )
        ck = (self._token, ref.block, ref.version)
        hit, value = self._cache.get(ck)
        if not hit:
            t0 = time.perf_counter()
            self._comm.send(("fetch", ref.block, ref.version))
            tag, block, version, payload = self._comm.recv()
            self.fetch_seconds += time.perf_counter() - t0
            if tag != "data" or payload is None:
                raise SchedulerError(
                    f"parent could not serve {ref!r} for task {self.key!r} (reply {tag!r})"
                )
            value = frame.loads(payload)
            self._cache.put(ck, value, len(payload))
        self.reads.append(ref)
        return value

    def write(self, ref: BlockRef, value: Any) -> None:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        self.writes.append(ref)
        self.written.append((tuple(ref), value))


class WorkerServer:
    """A compute server: listens on an address, executes shipped compute
    phases, fetches block payloads lazily, caches them by version.

    One server handles any number of parent connections (each on its own
    handler thread); the block cache is shared across them.  Run one per
    node with ``python -m repro worker --listen tcp://HOST:PORT``.
    """

    def __init__(
        self,
        listen_addr: str,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._listen_addr = listen_addr
        self.cache = BlockCache(cache_bytes)
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._mx = self._metrics is not NULL_METRICS
        self._jobs_counter = self._metrics.counter(
            "repro_worker_jobs_total", "compute phases executed by this worker server"
        )
        self._fetch_counter = self._metrics.counter(
            "repro_comm_fetches_total", "block payloads fetched from the parent"
        )
        self._fetch_bytes = self._metrics.counter(
            "repro_comm_fetch_bytes_total", "payload bytes fetched from the parent"
        )
        self._listener: Any = None
        self._stopped = threading.Event()
        if self._mx:
            self._metrics.callback_gauge(
                "repro_worker_cache_bytes",
                lambda: float(self.cache.nbytes),
                "bytes resident in the versioned block cache",
            )
            self._metrics.callback_gauge(
                "repro_worker_cache_entries",
                lambda: float(len(self.cache)),
                "entries resident in the versioned block cache",
            )

    @property
    def address(self) -> str:
        """The concrete bound address (kernel-assigned port filled in)."""
        if self._listener is None:
            raise SchedulerError("WorkerServer.address read before start()")
        return self._listener.address

    def start(self) -> "WorkerServer":
        self._listener = listen(self._listen_addr, self._serve_connection)
        return self

    def close(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            self._listener.close()

    def wait(self) -> None:
        """Block until :meth:`close` (the ``repro worker`` CLI's main loop)."""
        self._stopped.wait()

    # -- per-connection protocol --------------------------------------------

    def _serve_connection(self, comm: Comm) -> None:
        start_hb = getattr(comm, "start_heartbeat", None)
        if start_hb is not None:
            start_hb()  # parent-side liveness watches for these beats
        spec = None
        try:
            while True:
                try:
                    msg = comm.recv()
                except CommClosedError:
                    return
                tag = msg[0]
                if tag == "ping":
                    comm.send(("pong",))
                    continue
                if tag == "stop":
                    comm.close()
                    return
                if tag == "spec":
                    spec = pickle.loads(msg[1])
                    continue
                if tag != "job":
                    comm.send(("raise", SchedulerError(f"unknown message tag {tag!r}")))
                    continue
                _, key, refs, die, life, token = msg
                if die:
                    self._die(comm)
                    return
                self._run_job(comm, spec, key, refs, token)
        finally:
            comm.close()

    def _die(self, comm: Comm) -> None:
        """Injected worker death (``die_on``): genuine process death on a
        TCP server, an impolite connection sever on an in-process one --
        both exercise the parent's peer-loss path."""
        sever = getattr(comm, "sever", None)
        if sever is not None:
            sever()
            return
        os._exit(CRASH_EXIT_CODE)

    def _run_job(self, comm: Comm, spec: Any, key: Hashable, refs: list, token: str) -> None:
        mx = self._mx
        ctx = _FetchingContext(
            key, frozenset((b, v) for b, v in refs), comm, self.cache, token
        )
        spans: dict[str, float] = {}
        try:
            if spec is None:
                raise SchedulerError(f"job {key!r} arrived before its task spec")
            fetched_before = self.cache.misses
            t_kw = time.perf_counter()
            t_kc = time.process_time()
            spec.compute(key, ctx)
            spans["kernel_cpu"] = time.process_time() - t_kc
            spans["kernel"] = time.perf_counter() - t_kw
            spans["fetch"] = ctx.fetch_seconds
            t_sz = time.perf_counter()
            blob = pickle.dumps(ctx.written, pickle.HIGHEST_PROTOCOL)
            spans["serialize"] = time.perf_counter() - t_sz
            reply = ("ok", blob, spans)
            if mx:
                self._jobs_counter.inc()
                fetched = self.cache.misses - fetched_before
                if fetched:
                    self._fetch_counter.inc(fetched)
        except BaseException as exc:
            reply = ("raise", _portable_exc(exc))
        try:
            comm.send(reply)
        except CommClosedError:
            return  # parent gone; its liveness policy handles the rest


def _portable_exc(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary that does."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SchedulerError(f"worker exception: {type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# parent side


class _RemoteHandle:
    __slots__ = ("comm", "addr", "spec_id")

    def __init__(self, comm: Comm, addr: str) -> None:
        self.comm = comm
        self.addr = addr
        self.spec_id: int | None = None


class ClusterRuntime(ThreadedRuntime):
    """Work-stealing thread pool whose compute phases run on remote
    :class:`WorkerServer` processes reached through ``repro.comm``.

    Parameters beyond :class:`ThreadedRuntime`'s:

    ``addresses``
        Worker-server addresses (``tcp://host:port`` or an
        ``inproc://name`` server in this process).  The N channels are
        assigned round-robin; a lost channel's replacement is dialed
        starting at the same address, then the others.
    ``die_on``
        Iterable of task keys; the first dispatch of each kills its
        worker (process death on TCP, connection sever on inproc).
        One-shot per key, exactly like ``ProcessRuntime``'s.
    ``heartbeat_timeout``
        Seconds of byte-silence (on a heartbeating transport) after
        which a connection owing a reply is declared dead; ``None``
        disables the check and trusts transport-level EOF alone.
    """

    def __init__(
        self,
        workers: int = 4,
        seed: int | None = None,
        event_log: EventLog | None = None,
        addresses: Iterable[str] | None = None,
        die_on: Iterable[Hashable] | None = None,
        metrics: MetricsRegistry | None = None,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        connect_attempts: int = 8,
    ) -> None:
        super().__init__(workers, seed, event_log, metrics=metrics)
        addrs = list(addresses or ())
        if not addrs:
            raise ValueError("ClusterRuntime needs at least one worker address")
        self._addresses = addrs
        self._die_on = set(die_on or ())
        self._die_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._handles: list[_RemoteHandle] = []
        self._idle: queue.Queue[_RemoteHandle] = queue.Queue()
        self._spec_blobs: dict[int, bytes] = {}
        self._hb_timeout = heartbeat_timeout
        self._connect_attempts = connect_attempts
        self._crashes = 0
        # Scopes worker-side cache entries to this runtime: a long-lived
        # WorkerServer reused across runs must never serve one run's
        # bytes to another run's identically-named block version.
        self._run_token = f"{os.getpid():x}.{id(self):x}.{time.monotonic_ns():x}"
        self._dispatch_hist = self._metrics.histogram(
            "repro_dispatch_seconds",
            "full remote compute round trip (queue wait + ship + kernel + reply)",
        )
        self._crash_counter = self._metrics.counter(
            "repro_worker_crashes_total",
            "worker connections lost mid-dispatch and replaced",
        )
        self._fetch_counter = self._metrics.counter(
            "repro_comm_fetches_total", "block payloads served to lazy worker fetches"
        )
        self._fetch_bytes = self._metrics.counter(
            "repro_comm_fetch_bytes_total", "payload bytes served to lazy worker fetches"
        )

    @property
    def worker_crashes(self) -> int:
        """Worker connections lost mid-dispatch (and replaced)."""
        return self._crashes

    # -- channel pool lifecycle ----------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        self._ensure_pool()
        try:
            return super().execute(root)
        finally:
            self._shutdown_pool()

    def _ensure_pool(self) -> None:
        if self._handles:
            return
        with self._pool_lock:
            if self._handles:
                return
            handles = [
                self._dial(self._addresses[i % len(self._addresses)])  # verify: ok=blocking-under-lock (cold path: pool is built before any scheduler thread exists to contend)
                for i in range(self._workers)
            ]
            self._handles = handles
            for h in handles:
                self._idle.put(h)

    def _dial(self, addr: str) -> _RemoteHandle:
        comm = connect_with_retry(addr, attempts=self._connect_attempts)
        # A completed TCP handshake is not proof of a live server: the
        # kernel accepts into a dying process's listen backlog right up
        # to FD teardown.  A connection counts only once a handler
        # thread has answered a ping.
        try:
            comm.send(("ping",))
            reply = comm.recv(timeout=10.0)
        except (CommClosedError, TimeoutError) as exc:
            comm.close()
            raise CommClosedError(f"worker at {addr} accepted but never answered: {exc}")
        if reply != ("pong",):  # pragma: no cover - protocol bug
            comm.close()
            raise CommClosedError(f"worker at {addr} answered ping with {reply!r}")
        if self._log is not NULL_LOG:
            self._log.emit(EventKind.CONNECT, None, 0, addr=addr)
        return _RemoteHandle(comm, addr)

    def _reconnect(self, dead: _RemoteHandle, reason: str) -> _RemoteHandle:
        """Replace a lost channel: the dead address first (its server may
        have survived a mere sever, or a supervisor restarted it), then
        the other configured addresses.

        Bookkeeping happens under the pool lock; the dial itself must
        not -- a slow TCP handshake would stall every other scheduler
        thread that needs the lock, including ones trying to report
        their own dead handles.
        """
        with self._pool_lock:
            try:
                self._handles.remove(dead)
            except ValueError:
                pass
            dead.comm.close()
            self._crashes += 1
            if self._log is not NULL_LOG:
                self._log.emit(EventKind.DISCONNECT, None, 0, addr=dead.addr, reason=reason)
            start = self._addresses.index(dead.addr) if dead.addr in self._addresses else 0
            order = self._addresses[start:] + self._addresses[:start]
        last: Exception | None = None
        for addr in order:
            try:
                fresh = self._dial(addr)
            except CommClosedError as exc:
                last = exc
                continue
            with self._pool_lock:
                self._handles.append(fresh)
            return fresh
        raise SchedulerError(
            f"no worker address reachable after losing {dead.addr}: {last}"
        )

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            handles, self._handles = self._handles, []
            try:
                while True:
                    self._idle.get_nowait()
            except queue.Empty:
                pass
        for h in handles:
            try:
                h.comm.send(("stop",))
            except CommClosedError:
                pass
            h.comm.close()
            if self._log is not NULL_LOG:
                self._log.emit(EventKind.DISCONNECT, None, 0, addr=h.addr, reason="shutdown")

    # -- the dispatch seam ----------------------------------------------------

    def compute_dispatch(self, spec: Any, key: Hashable, ctx: Any, life: int = 0) -> None:
        """Run ``spec.compute(key, ...)`` on a remote worker.

        Identical contract to ``ProcessRuntime.compute_dispatch``: the
        parent-side reads below are the fault gate, and a lost worker
        surfaces as :class:`WorkerCrashError` on ``key``.
        """
        obs = self._log is not NULL_LOG
        mx = self._mx
        t0 = self._log.now() if obs else (time.perf_counter() if mx else 0.0)
        values: dict[tuple, Any] = {}
        refs: list[tuple] = []
        for raw in spec.inputs(key):
            ref = raw if type(raw) is BlockRef else BlockRef(*raw)
            # Fault gate: corruption flags, checksum mismatches, and
            # evictions raise here, before anything ships.
            values[(ref.block, ref.version)] = ctx.read(ref)
            refs.append((ref.block, ref.version))
        die = False
        if self._die_on:
            with self._die_lock:
                if key in self._die_on:
                    self._die_on.discard(key)
                    die = True
        written, spans = self._submit(spec, key, refs, values, die, life)
        if obs:
            log = self._log
            end = log.now()
            log.emit(EventKind.SPAN, key, life, phase="fetch",
                     wall=spans.get("fetch", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="kernel",
                     wall=spans.get("kernel", 0.0), cpu=spans.get("kernel_cpu", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="serialize",
                     wall=spans.get("serialize", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="dispatch", wall=end - t0, t0=t0)
        if mx:
            self._dispatch_hist.observe(
                (self._log.now() if obs else time.perf_counter()) - t0
            )
        for reftup, value in written:
            ctx.write(BlockRef(*reftup), value)

    def _spec_blob(self, spec: Any) -> bytes:
        blob = self._spec_blobs.get(id(spec))
        if blob is None:
            blob = pickle.dumps(spec)
            self._spec_blobs[id(spec)] = blob
        return blob

    def _submit(
        self,
        spec: Any,
        key: Hashable,
        refs: list,
        values: dict[tuple, Any],
        die: bool,
        life: int,
    ) -> tuple[list, dict[str, float]]:
        self._ensure_pool()
        try:
            handle = self._idle.get(timeout=60.0)
        except queue.Empty:  # pragma: no cover - pool accounting bug
            raise SchedulerError("no cluster worker channel became available within 60s")
        try:
            reason = "closed"
            try:
                if handle.spec_id != id(spec):
                    handle.comm.send(("spec", self._spec_blob(spec)))
                    handle.spec_id = id(spec)
                handle.comm.send(("job", key, refs, die, life, self._run_token))
                reply, reason = self._await_reply(handle, key, values, life)
            except CommClosedError:
                reply = None
            if reply is None:
                dead, handle = handle, self._reconnect(handle, reason)
                if self._log is not NULL_LOG:
                    self._log.emit(EventKind.WORKER_DOWN, key, 0, addr=dead.addr, reason=reason)
                    self._log.emit(EventKind.WORKER_UP, None, 0, addr=handle.addr)
                if self._mx:
                    self._crash_counter.inc()
                raise WorkerCrashError(key)
            tag = reply[0]
            if tag == "ok":
                return pickle.loads(reply[1]), reply[2]
            if tag == "raise":
                raise reply[1]  # FaultError -> scheduler recovery; else scheduler bug
            raise SchedulerError(f"unexpected reply tag {tag!r} from {handle.addr}")
        finally:
            self._idle.put(handle)

    def _await_reply(
        self, handle: _RemoteHandle, key: Hashable, values: dict[tuple, Any], life: int
    ) -> tuple[Any, str]:
        """The worker's final reply, serving lazy fetches along the way.

        Returns ``(reply, reason)`` where reply is ``None`` if the peer
        was lost -- by transport EOF (``reason='closed'``) or by
        heartbeat silence (``reason='heartbeat'``).
        """
        comm = handle.comm
        idle_seconds: Callable[[], float] | None = getattr(comm, "idle_seconds", None)
        obs = self._log is not NULL_LOG
        mx = self._mx
        while True:
            try:
                if not comm.poll(_POLL_SECONDS):
                    if (
                        idle_seconds is not None
                        and self._hb_timeout is not None
                        and idle_seconds() > self._hb_timeout
                    ):
                        return None, "heartbeat"
                    continue
                msg = comm.recv()
            except CommClosedError:
                return None, "closed"
            if msg[0] == "fetch":
                _, block, version = msg
                value = values.get((block, version), None)
                if value is None and (block, version) not in values:
                    comm.send(("data", block, version, None))
                    continue
                payload = frame.dumps(value)
                if obs:
                    self._log.emit(
                        EventKind.FETCH, key, life,
                        block=block, version=version, nbytes=len(payload),
                    )
                if mx:
                    self._fetch_counter.inc()
                    self._fetch_bytes.inc(len(payload))
                comm.send(("data", block, version, payload))
                continue
            return msg, "ok"
