"""Cluster runtime: compute phases executed by remote worker servers.

:class:`ClusterRuntime` is :class:`~repro.runtime.procpool.ProcessRuntime`'s
shape stretched over the comm layer: every piece of scheduler state --
task map, join counters, recovery table, block store -- stays in the
**parent**, scheduler frames still run on N parent threads, and only the
pure compute phase crosses the wire.  Channels to
:class:`WorkerServer` processes (``python -m repro worker --listen
tcp://...``) are assigned round-robin over the configured addresses and
shared by the scheduler threads through per-channel outstanding-job
windows.

What changes versus the pipe runtime is *how bytes move*:

* **Dispatch by descriptor.**  A job message carries the task key and
  the declared input references ``(block, version)`` -- never payloads.
  The parent still reads every input through its own context first (the
  fault gate: corruption flags, checksum mismatches, and evictions
  raise *here*, inside the scheduler's recovery path, before anything
  ships), holding the values for the duration of the dispatch.
* **Pipelined, micro-batched dispatch** (the fast path of ROADMAP item
  4, via :class:`~repro.runtime.dispatch.PipelinedDispatchMixin`): up to
  ``inflight`` jobs ride each channel concurrently, concurrently-ready
  jobs ship as one ``("jobs", pack_frames([...]))`` frame -- one syscall
  and one wire round trip for the burst -- and the worker streams one
  ``("done", jid, ...)``/``("fail", jid, ...)`` reply per job.
* **Lazy fetch + versioned cache.**  The worker asks for a payload only
  on the first read of a version it has never seen (``("fetch", jid,
  block, version)`` -- the job id routes the request to the dispatching
  thread's held values; ``FETCH`` event parent-side) and caches it in a
  local byte-bounded LRU keyed by ``(block, version)``.  Store versions
  are written once and kernels are deterministic, so the versioned key
  makes the cache trivially coherent -- a re-executed producer after
  recovery regenerates bit-identical bytes, and an *evicted* version
  faults parent-side before dispatch, so a stale cache entry can never
  be asked for a version the store would refuse.
* **Peer loss is a detected compute-phase fault.**  A dead connection,
  a refused reconnect, or ``heartbeat_timeout`` seconds of silence from
  a worker that should be heartbeating collapse into one path: emit
  ``DISCONNECT`` + one ``WORKER_DOWN``/``WORKER_UP`` pair, dial a
  replacement channel (``CONNECT``), and raise
  :class:`~repro.exceptions.WorkerCrashError` for *every* job that was
  in flight on the lost channel -- the untouched FT scheduler
  re-executes exactly the unfinished jobs through RECOVERTASKONCE
  (replies streamed before the loss are never re-run), exactly as it
  does for a dead pipe worker.

Fault injection mirrors ``die_on``: the first dispatch of a listed key
makes its worker die *before* computing -- ``os._exit(73)`` on a TCP
server (genuine process death, indistinguishable from ``kill -9``), a
connection sever on an in-process server (the yanked-cable case) -- and
the recovered task's re-dispatch runs normally, even when the death
lands mid-batch.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Hashable, Iterable

from repro.comm import frame
from repro.comm.core import Comm, CommClosedError, connect_with_retry, listen
from repro.comm.frame import unpack_frames
from repro.exceptions import SchedulerError, WorkerCrashError
from repro.graph.taskspec import BlockRef
from repro.memory.shm import own_payload
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import RunResult
from repro.runtime.dispatch import PipelineChannel, PipelinedDispatchMixin
from repro.runtime.frames import Frame
from repro.runtime.procpool import CRASH_EXIT_CODE, DEFAULT_INFLIGHT
from repro.runtime.threadpool import ThreadedRuntime

#: Default worker-side block-cache budget.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Parent-side liveness policy: a worker connection that stays byte-silent
#: this long while owing a reply is declared dead.  Workers heartbeat
#: every HEARTBEAT_INTERVAL_SECONDS (0.25 s), so the default tolerates
#: ~8 consecutive missed beats; see docs/DISTRIBUTED.md for tuning.
DEFAULT_HEARTBEAT_TIMEOUT = 2.0


# ---------------------------------------------------------------------------
# worker-server side


class BlockCache:
    """Byte-bounded LRU of decoded block payloads, keyed by
    ``(block, version)``.

    Versioned keys are what make this cache coherent with zero
    invalidation traffic: a version's bytes never change once written
    (determinism, Theorem 1), so an entry can be stale only by
    *absence*, never by content.  That guarantee holds *within* a run;
    across runs the same ``(block, version)`` pair can name different
    data, so entries are additionally scoped by the dispatching
    runtime's ``run token`` -- a long-lived server reused by many runs
    never crosses their payloads.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> tuple[bool, Any]:
        with self._lock:
            try:
                value, _ = self._entries[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: tuple, value: Any, nbytes: int) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted

    @property
    def nbytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)


#: Default send-side encoded-payload budget (see EncodedBlockCache).
DEFAULT_ENCODED_CACHE_BYTES = 64 * 1024 * 1024


class EncodedBlockCache:
    """Parent-side LRU of *encoded* block payloads, keyed
    ``(block, version)`` -- the send half of the worker ``BlockCache``.

    A block fetched by W workers used to be pickled W times; this cache
    makes it ``frame.encode_oob`` once, gather W times (the buffer
    segments ship straight from the cached :class:`frame.Encoded`'s
    views, so a hit costs no serialization at all).

    Coherence rides the same versioned-key discipline as the worker
    cache, with one extra guard for the fault-injection paths that *do*
    change a version's payload in place in the parent store
    (``corrupt_data``, re-execution rewrites): a hit additionally
    requires the stored source object to *be* (``is``) the value about
    to ship.  Rewrites and mutator-style corruption replace the stored
    payload object, so they miss by identity and re-encode -- stale
    encodings are never served across a payload swap.  (For the OOB
    segments themselves even a same-object in-place mutation cannot go
    stale: the cached ``Encoded`` holds buffer views over the value's
    live memory, gathered at send time.)
    """

    def __init__(self, capacity_bytes: int = DEFAULT_ENCODED_CACHE_BYTES) -> None:
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple, tuple[Any, Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, block: Hashable, version: int, value: Any) -> Any:
        """The cached encoding of ``value`` for ``(block, version)``, or
        ``None`` when absent or superseded by a payload swap."""
        key = (block, version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is value:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            self.misses += 1
            return None

    def put(self, block: Hashable, version: int, value: Any, encoded: Any) -> None:
        key = (block, version)
        nbytes = encoded.nbytes
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (value, encoded, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, (_, _, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted

    @property
    def nbytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)


class _FetchingContext:
    """Worker-side compute context: reads hit the local cache or fetch
    the payload from the parent over the job's comm channel; writes are
    buffered and applied by the parent (which re-enforces the declared
    footprint there).

    With pipelined dispatch the parent may interleave new ``jobs`` or
    ``spec`` frames into the channel while a fetch reply is awaited;
    anything that is not the awaited ``data`` message goes into the
    connection's ``backlog`` deque, which the handler loop drains before
    its next ``recv`` (the handler thread *is* the compute thread, so no
    locking is needed).
    """

    __slots__ = ("key", "jid", "_declared", "_comm", "_cache", "_token",
                 "_backlog", "reads", "writes", "written", "fetch_seconds")

    def __init__(
        self,
        key: Hashable,
        jid: int,
        declared: frozenset,
        comm: Comm,
        cache: BlockCache,
        token: str,
        backlog: deque,
    ) -> None:
        self.key = key
        self.jid = jid
        self._declared = declared
        self._token = token
        self._comm = comm
        self._cache = cache
        self._backlog = backlog
        self.reads: list[BlockRef] = []
        self.writes: list[BlockRef] = []
        self.written: list[tuple[tuple, Any]] = []
        self.fetch_seconds = 0.0

    def read(self, ref: BlockRef) -> Any:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        if (ref.block, ref.version) not in self._declared:
            raise SchedulerError(
                f"task {self.key!r} read undeclared input {ref!r} on a cluster worker"
            )
        ck = (self._token, ref.block, ref.version)
        hit, value = self._cache.get(ck)
        if not hit:
            t0 = time.perf_counter()
            self._comm.send(("fetch", self.jid, ref.block, ref.version))
            tag, block, version, payload = self._await_data()
            self.fetch_seconds += time.perf_counter() - t0
            if tag != "data" or payload is None:
                raise SchedulerError(
                    f"parent could not serve {ref!r} for task {self.key!r} (reply {tag!r})"
                )
            if isinstance(payload, frame.Encoded):
                # The OOB path: array payloads decode as zero-copy views
                # over the transport buffer.  The cache outlives the
                # buffer's loan, so cache an *owning* copy -- the one
                # copy per fetched block the zero-copy budget allows.
                nbytes = payload.nbytes
                value, _ = own_payload(payload.load())
            else:
                nbytes = len(payload)
                value = frame.loads(payload)
            self._cache.put(ck, value, nbytes)
        self.reads.append(ref)
        return value

    def _await_data(self) -> tuple:
        """The parent's ``data`` reply to our fetch; pipelined frames that
        arrive first are parked in the connection backlog."""
        while True:
            msg = self._comm.recv()
            if msg[0] == "data":
                return msg
            self._backlog.append(msg)

    def write(self, ref: BlockRef, value: Any) -> None:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        self.writes.append(ref)
        self.written.append((tuple(ref), value))


class WorkerServer:
    """A compute server: listens on an address, executes shipped compute
    phases, fetches block payloads lazily, caches them by version.

    One server handles any number of parent connections (each on its own
    handler thread); the block cache is shared across them.  Run one per
    node with ``python -m repro worker --listen tcp://HOST:PORT``.
    """

    def __init__(
        self,
        listen_addr: str,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._listen_addr = listen_addr
        self.cache = BlockCache(cache_bytes)
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._mx = self._metrics is not NULL_METRICS
        self._jobs_counter = self._metrics.counter(
            "repro_worker_jobs_total", "compute phases executed by this worker server"
        )
        self._fetch_counter = self._metrics.counter(
            "repro_comm_fetches_total", "block payloads fetched from the parent"
        )
        self._fetch_bytes = self._metrics.counter(
            "repro_comm_fetch_bytes_total", "payload bytes fetched from the parent"
        )
        self._listener: Any = None
        self._stopped = threading.Event()
        if self._mx:
            self._metrics.callback_gauge(
                "repro_worker_cache_bytes",
                lambda: float(self.cache.nbytes),
                "bytes resident in the versioned block cache",
            )
            self._metrics.callback_gauge(
                "repro_worker_cache_entries",
                lambda: float(len(self.cache)),
                "entries resident in the versioned block cache",
            )

    @property
    def address(self) -> str:
        """The concrete bound address (kernel-assigned port filled in)."""
        if self._listener is None:
            raise SchedulerError("WorkerServer.address read before start()")
        return self._listener.address

    def start(self) -> "WorkerServer":
        self._listener = listen(self._listen_addr, self._serve_connection)
        return self

    def close(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            self._listener.close()

    def wait(self) -> None:
        """Block until :meth:`close` (the ``repro worker`` CLI's main loop)."""
        self._stopped.wait()

    # -- per-connection protocol --------------------------------------------

    def _serve_connection(self, comm: Comm) -> None:
        start_hb = getattr(comm, "start_heartbeat", None)
        if start_hb is not None:
            start_hb()  # parent-side liveness watches for these beats
        spec = None
        token = ""
        # Frames a fetch wait pulled off the wire ahead of its data reply;
        # always drained before the next recv.
        backlog: deque = deque()
        try:
            while True:
                if backlog:
                    msg = backlog.popleft()
                else:
                    try:
                        msg = comm.recv()
                    except CommClosedError:
                        return
                tag = msg[0]
                if tag == "ping":
                    comm.send(("pong",))
                    continue
                if tag == "stop":
                    comm.close()
                    return
                if tag == "spec":
                    spec = pickle.loads(msg[1])
                    token = msg[2]
                    continue
                if tag != "jobs":
                    comm.send(("fail", None, SchedulerError(f"unknown message tag {tag!r}")))
                    continue
                # Two batch shapes: a list of job tuples (the OOB path)
                # or a legacy packed-frames blob.
                batch = msg[1]
                if isinstance(batch, (bytes, bytearray, memoryview)):
                    batch = [frame.loads(p) for p in unpack_frames(bytes(batch))]
                for jid, key, refs, die, _life in batch:
                    if die:
                        self._die(comm)
                        return  # unreached on TCP; severed inproc conn is done
                    self._run_job(comm, spec, jid, key, refs, token, backlog)
        finally:
            comm.close()

    def _die(self, comm: Comm) -> None:
        """Injected worker death (``die_on``): genuine process death on a
        TCP server, an impolite connection sever on an in-process one --
        both exercise the parent's peer-loss path.  Jobs batched behind
        the dying one are lost with it, exactly like a real crash."""
        sever = getattr(comm, "sever", None)
        if sever is not None:
            sever()
            return
        os._exit(CRASH_EXIT_CODE)

    def _run_job(
        self,
        comm: Comm,
        spec: Any,
        jid: int,
        key: Hashable,
        refs: list,
        token: str,
        backlog: deque,
    ) -> None:
        mx = self._mx
        ctx = _FetchingContext(
            key, jid, frozenset((b, v) for b, v in refs), comm, self.cache, token, backlog
        )
        spans: dict[str, float] = {}
        try:
            if spec is None:
                raise SchedulerError(f"job {key!r} arrived before its task spec")
            fetched_before = self.cache.misses
            t_kw = time.perf_counter()
            t_kc = time.process_time()
            spec.compute(key, ctx)
            spans["kernel_cpu"] = time.process_time() - t_kc
            spans["kernel"] = time.perf_counter() - t_kw
            spans["fetch"] = ctx.fetch_seconds
            t_sz = time.perf_counter()
            blob = frame.encode_oob(ctx.written)
            spans["serialize"] = time.perf_counter() - t_sz
            reply = ("done", jid, blob, spans)
            if mx:
                self._jobs_counter.inc()
                fetched = self.cache.misses - fetched_before
                if fetched:
                    self._fetch_counter.inc(fetched)
        except BaseException as exc:
            reply = ("fail", jid, _portable_exc(exc))
        try:
            comm.send_oob(reply)
        except CommClosedError:
            return  # parent gone; its liveness policy handles the rest


def _portable_exc(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary that does."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SchedulerError(f"worker exception: {type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# parent side


class _RemoteHandle(PipelineChannel):
    """One worker-server connection plus the shared pipelining state."""

    __slots__ = ("comm", "addr")

    def __init__(self, comm: Comm, addr: str) -> None:
        super().__init__()
        self.comm = comm
        self.addr = addr


class ClusterRuntime(PipelinedDispatchMixin, ThreadedRuntime):
    """Work-stealing thread pool whose compute phases run on remote
    :class:`WorkerServer` processes reached through ``repro.comm``, with
    pipelined batched dispatch.

    Parameters beyond :class:`ThreadedRuntime`'s:

    ``addresses``
        Worker-server addresses (``tcp://host:port`` or an
        ``inproc://name`` server in this process).  Channels are
        assigned round-robin; a lost channel's replacement is dialed
        starting at the same address, then the others.
    ``die_on``
        Iterable of task keys; the first dispatch of each kills its
        worker (process death on TCP, connection sever on inproc).
        One-shot per key, exactly like ``ProcessRuntime``'s.
    ``heartbeat_timeout``
        Seconds of byte-silence (on a heartbeating transport) after
        which a connection owing a reply is declared dead; ``None``
        disables the check and trusts transport-level EOF alone.
    ``channels``
        Connection count; defaults to ``workers`` (one per scheduler
        thread).
    ``inflight``
        Outstanding-job window per channel (K jobs in flight before a
        dispatching thread must wait for a reply slot).
    ``encoded_cache_bytes``
        Budget for the send-side :class:`EncodedBlockCache`: a block
        fetched by W workers is encoded once and gathered W times.
        ``0`` disables reuse (every fetch re-encodes).
    """

    def __init__(
        self,
        workers: int = 4,
        seed: int | None = None,
        event_log: EventLog | None = None,
        addresses: Iterable[str] | None = None,
        die_on: Iterable[Hashable] | None = None,
        metrics: MetricsRegistry | None = None,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        connect_attempts: int = 8,
        channels: int | None = None,
        inflight: int = DEFAULT_INFLIGHT,
        encoded_cache_bytes: int = DEFAULT_ENCODED_CACHE_BYTES,
    ) -> None:
        super().__init__(workers, seed, event_log, metrics=metrics)
        addrs = list(addresses or ())
        if not addrs:
            raise ValueError("ClusterRuntime needs at least one worker address")
        self._addresses = addrs
        self._die_on = set(die_on or ())
        self._die_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._channels = max(1, workers if channels is None else channels)
        self._inflight = max(1, inflight)
        self._handles: list[_RemoteHandle] = []
        self._idle: queue.Queue[_RemoteHandle] = queue.Queue()
        self._spec_blobs: dict[int, bytes] = {}
        self._hb_timeout = heartbeat_timeout
        self._connect_attempts = connect_attempts
        self._crashes = 0
        # Scopes worker-side cache entries to this runtime: a long-lived
        # WorkerServer reused across runs must never serve one run's
        # bytes to another run's identically-named block version.
        self._run_token = f"{os.getpid():x}.{id(self):x}.{time.monotonic_ns():x}"
        self._enc_cache = EncodedBlockCache(encoded_cache_bytes)
        self._dispatch_hist = self._metrics.histogram(
            "repro_dispatch_seconds",
            "full remote compute round trip (queue wait + ship + kernel + reply)",
        )
        self._crash_counter = self._metrics.counter(
            "repro_worker_crashes_total",
            "worker connections lost mid-dispatch and replaced",
        )
        self._fetch_counter = self._metrics.counter(
            "repro_comm_fetches_total", "block payloads served to lazy worker fetches"
        )
        self._fetch_bytes = self._metrics.counter(
            "repro_comm_fetch_bytes_total", "payload bytes served to lazy worker fetches"
        )

    @property
    def worker_crashes(self) -> int:
        """Worker connections lost mid-dispatch (and replaced)."""
        return self._crashes

    # -- channel pool lifecycle ----------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        self._ensure_pool()
        try:
            return super().execute(root)
        finally:
            self._shutdown_pool()

    def _ensure_pool(self) -> None:
        if self._handles:
            return
        with self._pool_lock:
            if self._handles:
                return
            handles = [
                self._dial(self._addresses[i % len(self._addresses)])  # verify: ok=blocking-under-lock (cold path: pool is built before any scheduler thread exists to contend)
                for i in range(self._channels)
            ]
            self._handles = handles
            for h in handles:
                for _ in range(self._inflight):
                    self._idle.put(h)

    def _dial(self, addr: str) -> _RemoteHandle:
        comm = connect_with_retry(addr, attempts=self._connect_attempts)
        # A completed TCP handshake is not proof of a live server: the
        # kernel accepts into a dying process's listen backlog right up
        # to FD teardown.  A connection counts only once a handler
        # thread has answered a ping.
        try:
            comm.send(("ping",))
            reply = comm.recv(timeout=10.0)
        except (CommClosedError, TimeoutError) as exc:
            comm.close()
            raise CommClosedError(f"worker at {addr} accepted but never answered: {exc}")
        if reply != ("pong",):  # pragma: no cover - protocol bug
            comm.close()
            raise CommClosedError(f"worker at {addr} answered ping with {reply!r}")
        if self._log is not NULL_LOG:
            self._log.emit(EventKind.CONNECT, None, 0, addr=addr)
        return _RemoteHandle(comm, addr)

    def _reconnect(self, dead: _RemoteHandle, reason: str) -> _RemoteHandle:
        """Replace a lost channel: the dead address first (its server may
        have survived a mere sever, or a supervisor restarted it), then
        the other configured addresses.

        Bookkeeping happens under the pool lock; the dial itself must
        not -- a slow TCP handshake would stall every other scheduler
        thread that needs the lock, including ones trying to report
        their own dead handles.
        """
        with self._pool_lock:
            try:
                self._handles.remove(dead)
            except ValueError:
                pass
            dead.comm.close()
            self._crashes += 1
            if self._log is not NULL_LOG:
                self._log.emit(EventKind.DISCONNECT, None, 0, addr=dead.addr, reason=reason)
            start = self._addresses.index(dead.addr) if dead.addr in self._addresses else 0
            order = self._addresses[start:] + self._addresses[:start]
        last: Exception | None = None
        for addr in order:
            try:
                fresh = self._dial(addr)
            except CommClosedError as exc:
                last = exc
                continue
            with self._pool_lock:
                self._handles.append(fresh)
            return fresh
        raise SchedulerError(
            f"no worker address reachable after losing {dead.addr}: {last}"
        )

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            handles, self._handles = self._handles, []
            try:
                while True:
                    self._idle.get_nowait()
            except queue.Empty:
                pass
        for h in handles:
            try:
                h.comm.send(("stop",))
            except CommClosedError:
                pass
            h.comm.close()
            if self._log is not NULL_LOG:
                self._log.emit(EventKind.DISCONNECT, None, 0, addr=h.addr, reason="shutdown")

    # -- the dispatch seam ----------------------------------------------------

    def compute_dispatch(self, spec: Any, key: Hashable, ctx: Any, life: int = 0) -> None:
        """Run ``spec.compute(key, ...)`` on a remote worker.

        Identical contract to ``ProcessRuntime.compute_dispatch``: the
        parent-side reads below are the fault gate, and a lost worker
        surfaces as :class:`WorkerCrashError` on ``key``.
        """
        obs = self._log is not NULL_LOG
        mx = self._mx
        t0 = self._log.now() if obs else (time.perf_counter() if mx else 0.0)
        values: dict[tuple, Any] = {}
        refs: list[tuple] = []
        for raw in spec.inputs(key):
            ref = raw if type(raw) is BlockRef else BlockRef(*raw)
            # Fault gate: corruption flags, checksum mismatches, and
            # evictions raise here, before anything ships.
            values[(ref.block, ref.version)] = ctx.read(ref)
            refs.append((ref.block, ref.version))
        die = False
        if self._die_on:
            with self._die_lock:
                if key in self._die_on:
                    self._die_on.discard(key)
                    die = True

        def build_msg(jid: int, handle: _RemoteHandle) -> tuple:
            return (jid, key, refs, die, life)

        reply, queued = self._dispatch_job(spec, key, build_msg, die, life, values=values)
        blob, spans = self._reply_result(reply)
        # OOB replies arrive pre-decoded as frame.Encoded (result arrays
        # are views over the transport buffer); a plain bytes blob is the
        # legacy shape, kept for raw-protocol clients.
        written = blob.load() if isinstance(blob, frame.Encoded) else pickle.loads(blob)
        if obs:
            log = self._log
            end = log.now()
            log.emit(EventKind.SPAN, key, life, phase="fetch",
                     wall=spans.get("fetch", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="kernel",
                     wall=spans.get("kernel", 0.0), cpu=spans.get("kernel_cpu", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="serialize",
                     wall=spans.get("serialize", 0.0))
            if queued > 0.0:
                log.emit(EventKind.SPAN, key, life, phase="queued", wall=queued)
            log.emit(EventKind.SPAN, key, life, phase="dispatch", wall=end - t0, t0=t0)
        if mx:
            self._dispatch_hist.observe(
                (self._log.now() if obs else time.perf_counter()) - t0
            )
        for reftup, value in written:
            ctx.write(BlockRef(*reftup), value)

    def _spec_blob(self, spec: Any) -> bytes:
        blob = self._spec_blobs.get(id(spec))
        if blob is None:
            blob = pickle.dumps(spec)
            self._spec_blobs[id(spec)] = blob
        return blob

    # -- PipelinedDispatchMixin hooks -----------------------------------------

    def _channel_comm(self, handle: _RemoteHandle) -> Comm:
        return handle.comm

    def _ship_spec(self, handle: _RemoteHandle, spec: Any) -> None:
        handle.comm.send(("spec", self._spec_blob(spec), self._run_token))

    def _ship_jobs(self, handle: _RemoteHandle, msgs: list[tuple]) -> None:
        # The batch rides one OOB message: job tuples carry only refs on
        # this runtime, so the frame is small -- but the shared encoding
        # keeps the two wire protocols identical.
        handle.comm.send_oob(("jobs", msgs))

    def _silent_reason(self, handle: _RemoteHandle) -> str | None:
        idle_seconds = getattr(handle.comm, "idle_seconds", None)
        if (
            idle_seconds is not None
            and self._hb_timeout is not None
            and idle_seconds() > self._hb_timeout
        ):
            return "heartbeat"
        return None

    def _route_aux(self, handle: _RemoteHandle, msg: tuple) -> None:
        """Serve a worker's lazy ``fetch`` from the dispatching job's held
        values (runs on the channel's current drain leader)."""
        if msg[0] != "fetch":
            return  # late echo from a replaced channel; never actionable
        _, jid, block, version = msg
        with handle.lock:
            p = handle.pending.get(jid)
        values = p.values if p is not None and p.values is not None else {}
        value = values.get((block, version), None)
        if value is None and (block, version) not in values:
            payload = None
        else:
            # Encode once per version, gather per fetch: the cache hit
            # ships the same Encoded's buffer views again, zero
            # serialization work on the repeat.
            payload = self._enc_cache.get(block, version, value)
            if payload is None:
                payload = frame.encode_oob(value)
                self._enc_cache.put(block, version, value, payload)
            if self._log is not NULL_LOG and p is not None:
                self._log.emit(
                    EventKind.FETCH, p.key, p.life,
                    block=block, version=version, nbytes=payload.nbytes,
                )
            if self._mx:
                self._fetch_counter.inc()
                self._fetch_bytes.inc(payload.nbytes)
        try:
            with handle.send_lock:
                handle.comm.send_oob(("data", block, version, payload))  # verify: ok=blocking-under-lock (send_lock exists to serialize wire writes; sending under it is its purpose)
        except CommClosedError:
            self._channel_lost(handle, "closed")

    def _replace_channel(
        self, dead: _RemoteHandle, reason: str, down_key: Hashable | None
    ) -> _RemoteHandle:
        dead.death = reason
        fresh = self._reconnect(dead, reason)
        if self._log is not NULL_LOG:
            self._log.emit(EventKind.WORKER_DOWN, down_key, 0, addr=dead.addr, reason=reason)
            self._log.emit(EventKind.WORKER_UP, None, 0, addr=fresh.addr)
        if self._mx:
            self._crash_counter.inc()
        return fresh

    def _crashed_error(self, key: Hashable, handle: _RemoteHandle) -> WorkerCrashError:
        return WorkerCrashError(key)
