"""CLI entry points for the cluster runtime.

``python -m repro worker --listen tcp://HOST:PORT``
    Run a :class:`~repro.runtime.cluster.WorkerServer` in this process
    until killed.  ``--metrics-port N`` additionally serves the worker's
    registry over HTTP (``/metrics`` Prometheus text, ``/`` JSON) for
    ``python -m repro top --connect`` and CI scrapes.  Bound addresses
    are printed to stdout (one ``listening ...`` / ``metrics ...`` line
    each) so a spawner using port 0 can discover them.

``python -m repro cluster --selftest``
    The CI cluster job: spawn real localhost-TCP worker processes, then

    1. assert bit-identical parity (inline vs cluster) for LCS and
       Cholesky, with and without a fault plan;
    2. ``die_on``-inject a worker death (``os._exit(73)``) and assert
       recovery through the normal ``WORKER_DOWN`` → FT path;
    3. ``kill -9`` a worker process mid-run and assert the run still
       completes correctly with at least one recorded crash;
    4. scrape the surviving worker's ``/metrics`` endpoint.

``python -m repro cluster --addresses tcp://H1:P1,tcp://H2:P2``
    Run the parity check against *already running* workers (e.g. on
    other machines) instead of spawning local ones.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request


def worker_main(argv: list[str]) -> int:
    from repro.obs.live import MetricsRegistry, MetricsServer
    from repro.runtime.cluster import DEFAULT_CACHE_BYTES, WorkerServer

    ap = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Serve compute phases for a ClusterRuntime parent.",
    )
    ap.add_argument("--listen", required=True,
                    help="address to bind, e.g. tcp://0.0.0.0:7070 (port 0 = ephemeral)")
    ap.add_argument("--metrics-port", type=int, default=None,
                    help="also serve /metrics on this HTTP port (0 = ephemeral)")
    ap.add_argument("--cache-mb", type=int, default=DEFAULT_CACHE_BYTES // (1024 * 1024),
                    help="block-cache budget in MiB (default %(default)s)")
    args = ap.parse_args(argv)

    metrics = MetricsRegistry() if args.metrics_port is not None else None
    server = WorkerServer(
        args.listen, cache_bytes=args.cache_mb * 1024 * 1024, metrics=metrics
    ).start()
    print(f"listening {server.address}", flush=True)
    mserver = None
    if metrics is not None:
        mserver = MetricsServer(metrics, port=args.metrics_port)
        print(f"metrics http://127.0.0.1:{mserver.port}/metrics", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if mserver is not None:
            mserver.close()
    return 0


# ---------------------------------------------------------------------------
# selftest plumbing


class _SpawnedWorker:
    """A ``python -m repro worker`` subprocess with discovered addresses."""

    def __init__(self, metrics: bool = False) -> None:
        cmd = [sys.executable, "-m", "repro", "worker", "--listen", "tcp://127.0.0.1:0"]
        if metrics:
            cmd += ["--metrics-port", "0"]
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env
        )
        self.address = self._read_line("listening ")
        self.metrics_url = self._read_line("metrics ") if metrics else None

    def _read_line(self, prefix: str) -> str:
        deadline = time.time() + 30.0
        assert self.proc.stdout is not None
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("worker subprocess exited before binding")
            if line.startswith(prefix):
                return line[len(prefix):].strip()
        raise RuntimeError("worker subprocess never reported its address")

    def kill9(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10.0)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=5.0)


def _run_ft(app: object, runtime: object, plan: object = None) -> tuple[object, object]:
    from repro.core import FTScheduler
    from repro.faults import FaultInjector
    from repro.runtime.tracing import ExecutionTrace

    store = app.make_store(True, shared=False)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace).run()
    return app.extract(store), trace


def _assert_same(got: object, want: object, label: str) -> None:
    import numpy as np

    same = (got == want).all() if isinstance(want, np.ndarray) else got == want
    if not same:
        raise AssertionError(f"{label}: cluster result differs from inline")


def _check_parity(addresses: list[str], workers: int) -> None:
    from repro.apps import make_app
    from repro.faults import plan_faults
    from repro.runtime import ClusterRuntime, InlineRuntime

    for name in ("lcs", "cholesky"):
        app = make_app(name, scale="tiny")
        want, _ = _run_ft(app, InlineRuntime())
        got, _ = _run_ft(app, ClusterRuntime(workers=workers, seed=0, addresses=addresses))
        _assert_same(got, want, name)

        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=2, seed=3)
        want_f, t0 = _run_ft(app, InlineRuntime(), plan=plan)
        got_f, t1 = _run_ft(
            app, ClusterRuntime(workers=workers, seed=0, addresses=addresses), plan=plan
        )
        _assert_same(got_f, want_f, f"{name}+faults")
        if t0.total_recoveries == 0 or t1.total_recoveries == 0:
            raise AssertionError(f"{name}: fault plan injected no recoveries")
        print(f"  parity    [ok]  {name}: bit-identical, with and without faults")


def _check_die_on(addresses: list[str]) -> None:
    from repro.apps import make_app
    from repro.core import FTScheduler
    from repro.obs.events import EventKind, EventLog
    from repro.runtime import ClusterRuntime

    app = make_app("lcs", scale="tiny")
    store = app.make_store(True, shared=False)
    log = EventLog()
    rt = ClusterRuntime(
        workers=2, seed=0, addresses=addresses, die_on=[(1, 1)], event_log=log
    )
    sched = FTScheduler(app, rt, store=store, event_log=log)
    sched.run()
    app.verify(store)
    downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
    if rt.worker_crashes != 1 or len(downs) != 1 or downs[0].key != (1, 1):
        raise AssertionError(
            f"die_on: expected exactly one WORKER_DOWN for (1, 1); "
            f"crashes={rt.worker_crashes} downs={[(e.key, e.data) for e in downs]}"
        )
    if sched.trace.total_recoveries < 1:
        raise AssertionError("die_on: worker death did not route through recovery")
    print("  die-on    [ok]  os._exit(73) worker death recovered via WORKER_DOWN -> FT")


def _check_kill9(make_workers: int = 2) -> None:
    """kill -9 a live worker process mid-run; the run must still finish
    correctly, with the loss visible as >= 1 recorded crash."""
    from repro.apps import make_app
    from repro.core import FTScheduler
    from repro.obs.live import MetricsRegistry
    from repro.runtime import ClusterRuntime

    spawned = [_SpawnedWorker() for _ in range(make_workers)]
    try:
        app = make_app("cholesky", scale="tiny")
        store = app.make_store(True, shared=False)
        metrics = MetricsRegistry()
        rt = ClusterRuntime(
            workers=2,
            seed=0,
            addresses=[w.address for w in spawned],
            metrics=metrics,
            heartbeat_timeout=2.0,
        )
        done = threading.Event()
        hist = metrics.histogram("repro_dispatch_seconds")

        def killer() -> None:
            # Wait for the run to be demonstrably mid-flight (two full
            # dispatch round trips), then SIGKILL worker 0.
            while not done.is_set():
                if hist.count >= 2:
                    spawned[0].kill9()
                    return
                time.sleep(0.001)

        kt = threading.Thread(target=killer, daemon=True)
        kt.start()
        sched = FTScheduler(app, rt, store=store)
        sched.run()
        done.set()
        kt.join(timeout=5.0)
        app.verify(store)
        if spawned[0].proc.poll() is None:
            raise AssertionError("kill -9 never fired (run finished before 2 dispatches?)")
        if rt.worker_crashes < 1:
            raise AssertionError("killed worker was never detected as a crash")
        if sched.trace.total_recoveries < 1:
            raise AssertionError("killed worker did not route through recovery")
        print(
            f"  kill-9    [ok]  SIGKILL mid-run: {rt.worker_crashes} crash(es), "
            f"{sched.trace.total_recoveries} recovery(ies), result verified"
        )
    finally:
        for w in spawned:
            w.stop()


def _check_metrics_scrape() -> None:
    from repro.apps import make_app
    from repro.runtime import ClusterRuntime, InlineRuntime

    w = _SpawnedWorker(metrics=True)
    try:
        app = make_app("lcs", scale="tiny")
        want, _ = _run_ft(app, InlineRuntime())
        got, _ = _run_ft(app, ClusterRuntime(workers=2, seed=0, addresses=[w.address]))
        _assert_same(got, want, "scrape-run")
        assert w.metrics_url is not None
        with urllib.request.urlopen(w.metrics_url, timeout=10.0) as resp:
            text = resp.read().decode("utf-8", "replace")
        for family in ("repro_worker_jobs_total", "repro_comm_fetches_total",
                       "repro_worker_cache_bytes"):
            if family not in text:
                raise AssertionError(f"/metrics scrape is missing {family}")
        jobs = [
            float(line.rsplit(None, 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_worker_jobs_total")
        ]
        if not jobs or jobs[0] <= 0:
            raise AssertionError(f"worker served a run but reports {jobs!r} jobs")
        print(f"  scrape    [ok]  /metrics live ({jobs[0]:.0f} jobs, fetch+cache families present)")
    finally:
        w.stop()


def cluster_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Run task graphs on remote worker servers over TCP, "
        "or --selftest the whole distributed path on localhost.",
    )
    ap.add_argument("--selftest", action="store_true",
                    help="spawn localhost TCP workers; parity + kill -9 recovery + /metrics")
    ap.add_argument("--addresses", default=None,
                    help="comma-separated worker addresses to run the parity check against")
    ap.add_argument("--workers", type=int, default=2,
                    help="parent-side scheduler threads / channels (default 2)")
    args = ap.parse_args(argv)

    t0 = time.time()
    if args.addresses:
        addrs = [a for a in args.addresses.split(",") if a]
        _check_parity(addrs, args.workers)
        print(f"cluster parity passed in {time.time() - t0:.1f}s")
        return 0
    if not args.selftest:
        ap.error("need --selftest or --addresses")

    failures = 0
    spawned = [_SpawnedWorker(), _SpawnedWorker()]
    try:
        steps: list[tuple[str, object]] = [
            ("parity", lambda: _check_parity([w.address for w in spawned], args.workers)),
            ("die-on", lambda: _check_die_on([w.address for w in spawned])),
        ]
        for label, step in steps:
            try:
                step()
            except Exception as exc:
                print(f"  {label:9s} [FAIL]  {type(exc).__name__}: {exc}")
                failures += 1
    finally:
        for w in spawned:
            w.stop()
    for label, step in (("kill-9", _check_kill9), ("scrape", _check_metrics_scrape)):
        try:
            step()
        except Exception as exc:
            print(f"  {label:9s} [FAIL]  {type(exc).__name__}: {exc}")
            failures += 1
    print(f"cluster selftest {'passed' if not failures else 'FAILED'} in {time.time() - t0:.1f}s")
    return 1 if failures else 0
