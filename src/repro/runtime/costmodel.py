"""Virtual-time cost model for the discrete-event runtime.

All values are in abstract time units; application task costs (flop
counts, see ``repro.apps``) are typically 10^3-10^6 units, so the default
scheduler-overhead constants keep bookkeeping at or below the ~1% level
the paper measures for fault-tolerance support outside Floyd-Warshall.

The FT-specific fields model the *only* costs the paper's design adds in
the absence of faults (Section IV, closing paragraph): the per-notification
atomic bit-vector maintenance, slightly larger task initialization, and --
for multi-version memory policies -- degraded compute locality from the
extra resident version (the source of FW's ~10%/~18% overhead in Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-event virtual costs charged by the simulator and the scheduler."""

    frame_overhead: float = 1.0
    """Fixed cost of dispatching any frame (deque pop + call)."""

    spawn_cost: float = 0.5
    """Cost charged to the spawning frame per child pushed."""

    steal_cost: float = 5.0
    """Latency of a successful steal (CAS on the victim's top pointer)."""

    failed_steal_cost: float = 2.0
    """Latency of probing an empty victim before the next attempt."""

    lock_cost: float = 0.3
    """Cost of one uncontended task-lock acquire/release pair."""

    atomic_cost: float = 0.1
    """Cost of one atomic read-modify-write (join counter, status)."""

    ft_notify_cost: float = 0.15
    """Extra FT cost per notification: the atomic bit-vector unset that
    Guarantee 3 adds in front of every join-counter decrement."""

    ft_init_cost: float = 0.5
    """Extra FT cost per task initialization: allocating/zeroing the
    notification bit vector and threading the life number."""

    recovery_table_cost: float = 1.0
    """Cost of one recovery-table probe/insert (ISRECOVERING)."""

    reinit_scan_cost: float = 0.4
    """Cost per successor scanned while rebuilding a notify array
    (REINITNOTIFYENTRY)."""

    two_version_compute_factor: float = 1.10
    """Multiplier on compute cost when the memory policy keeps >= 2
    versions resident: models the extra cache misses of the doubled
    working set the paper reports for Floyd-Warshall."""

    def compute_factor(self, keep: int | None) -> float:
        """Compute-cost multiplier implied by a retention policy."""
        if keep is not None and keep >= 2:
            return self.two_version_compute_factor
        return 1.0

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale all *scheduler* overheads (not compute factors);
        used by the overhead-sensitivity ablation."""
        return replace(
            self,
            frame_overhead=self.frame_overhead * factor,
            spawn_cost=self.spawn_cost * factor,
            steal_cost=self.steal_cost * factor,
            failed_steal_cost=self.failed_steal_cost * factor,
            lock_cost=self.lock_cost * factor,
            atomic_cost=self.atomic_cost * factor,
            ft_notify_cost=self.ft_notify_cost * factor,
            ft_init_cost=self.ft_init_cost * factor,
            recovery_table_cost=self.recovery_table_cost * factor,
            reinit_scan_cost=self.reinit_scan_cost * factor,
        )

    def __post_init__(self) -> None:
        for name in (
            "frame_overhead",
            "spawn_cost",
            "steal_cost",
            "failed_steal_cost",
            "lock_cost",
            "atomic_cost",
            "ft_notify_cost",
            "ft_init_cost",
            "recovery_table_cost",
            "reinit_scan_cost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.failed_steal_cost <= 0:
            raise ValueError("failed_steal_cost must be > 0 (drives idle-time progress)")
        if self.two_version_compute_factor < 1.0:
            raise ValueError("two_version_compute_factor must be >= 1.0")
