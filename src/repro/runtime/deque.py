"""Work-stealing deque.

The classic owner/thief split (Arora-Blumofe-Plaxton [12] in the paper's
references): the owning worker pushes and pops at the *bottom* (LIFO,
preserving the depth-first execution order Cilk's bounds rely on), while
thieves remove from the *top* (FIFO, stealing the shallowest -- and
typically largest -- piece of the traversal).

CPython cannot express the THE-protocol's memory fences, so this
implementation guards the underlying :class:`collections.deque` with one
mutex.  That preserves the semantics (linearizable push/pop/steal with the
right ends) at a constant-factor cost; the virtual-time simulator charges
steal latency through the cost model instead.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class WorkDeque(Generic[T]):
    """Mutex-guarded double-ended work queue."""

    __slots__ = ("_items", "_lock")

    def __init__(self) -> None:
        self._items: deque[T] = deque()
        self._lock = threading.Lock()

    def push_bottom(self, item: T) -> None:
        """Owner: push a newly spawned frame."""
        with self._lock:
            self._items.append(item)

    def pop_bottom(self) -> T | None:
        """Owner: take the most recently pushed frame (LIFO); None if empty."""
        with self._lock:
            if self._items:
                return self._items.pop()
            return None

    def steal_top(self) -> T | None:
        """Thief: take the oldest frame (FIFO); None if empty."""
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0
