"""Pipelined dispatch: the shared fast path under both remote runtimes.

Before this module, :class:`~repro.runtime.procpool.ProcessRuntime` and
:class:`~repro.runtime.cluster.ClusterRuntime` dispatched in lock-step:
one scheduler thread took exclusive ownership of one worker channel,
shipped one job, and blocked until that job's reply came back.  Every
task paid a full round trip of wake-up latency, and a worker slept
between jobs while its parent thread woke, wrote results back, and found
the next task.  PERFORMANCE.md measured that at ~0.8-1.6 ms per task --
dwarfing kernel time at fine grain (ROADMAP item 4).

This module replaces the seam with three cooperating pieces, shared by
both runtimes through :class:`PipelinedDispatchMixin`:

* **Outstanding-job windows.**  A channel is entered into the idle pool
  ``inflight`` times, so up to K scheduler threads can have jobs in
  flight on the same worker concurrently.  The worker's inbound buffer
  stays fed: it moves straight from one job to the next without ever
  sleeping on an empty pipe, which is where most of the old per-task
  latency lived.
* **Micro-batched sends.**  Jobs are not sent directly: a submitting
  thread appends its wire message to the channel's *outbox* and then
  flushes under the channel send lock.  Whoever holds the lock ships
  everything queued meanwhile as one ``("jobs", pack_frames([...]))``
  frame -- flat combining, so a burst of ready tasks for one worker
  costs one syscall and one wake-up instead of N.
* **Leader-drain replies.**  Workers stream one reply per job
  (``("done", jid, ...)`` / ``("fail", jid, exc)``).  Exactly one of the
  threads with a job in flight on a channel -- whichever wins the
  channel recv lock -- drains replies for *all* of them, resolving each
  submitter's event; the others sleep on their event and wake only when
  their own result is in hand.  Leadership hands off naturally: when the
  leader's own job resolves it returns, and the next waiter's
  try-acquire succeeds within a couple of milliseconds (usually hidden
  under the worker's next kernel).

**Fault tolerance is unchanged by design.**  A lost channel (process
death, severed connection, heartbeat silence) resolves *every* job in
flight on it as crashed: each blocked submitter raises
:class:`~repro.exceptions.WorkerCrashError` for its own task and the FT
scheduler re-executes exactly the unfinished jobs -- jobs earlier in the
batch already streamed their replies and are never re-run.  The channel
is replaced once per death (one ``WORKER_DOWN``/``WORKER_UP`` pair, one
crash count), keyed by the ``die_on``-flagged job when the death was
injected.

The leader also computes each job's **queued** time parent-side: a
worker executes its channel's jobs in FIFO order, so job *B* started
(approximately) when the reply before it arrived.  ``queued = clamp(
previous_reply_arrival - t_sent, 0, round_trip)`` therefore measures how
long B sat behind its channel-mates -- deliberate pipelining backlog,
not dispatch cost -- and overhead attribution subtracts it (see
``repro.obs.attribution``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Callable, Hashable

from repro.comm.core import CommClosedError
from repro.exceptions import SchedulerError

#: Reply-poll granularity of the drain leader (also each silent-channel
#: liveness check interval).
POLL_SECONDS = 0.05

#: How long a non-leader submitter sleeps on its event between
#: leadership probes.  Small: on leader hand-off the next waiter must
#: take over quickly or replies sit unread in the channel buffer.
_WAITER_WAKE_SECONDS = 0.002

#: Submit gives up if no channel token frees up for this long (pool
#: accounting bug, or every channel wedged without dying).
_ACQUIRE_TIMEOUT_SECONDS = 60.0

#: Job ids, unique per parent process (``next`` on a count is atomic
#: under the GIL -- no lock needed).
_JIDS = itertools.count(1)

#: Reply sentinel: the channel died before this job's reply arrived.
CRASHED = object()


class PendingJob:
    """One job in flight on a channel: the submitter blocks on ``event``
    until the drain leader fills ``reply`` (or the channel dies and it
    becomes :data:`CRASHED`)."""

    __slots__ = ("jid", "key", "life", "die", "values", "event", "reply",
                 "t_sent", "queued")

    def __init__(
        self, jid: int, key: Hashable, life: int = 0, die: bool = False,
        values: dict | None = None,
    ) -> None:
        self.jid = jid
        self.key = key
        self.life = life
        self.die = die
        #: Cluster only: the held input payloads lazy fetches are served from.
        self.values = values
        self.event = threading.Event()
        self.reply: Any = None
        self.t_sent = 0.0
        self.queued = 0.0


class PipelineChannel:
    """Per-channel pipelining state, embedded in each runtime's handle.

    Lock order (outermost first): ``recv_lock`` > ``send_lock`` >
    ``lock``.  ``lock`` guards the mutable bookkeeping and is never held
    across a blocking call; ``send_lock`` serializes wire writes;
    ``recv_lock`` elects the drain leader.
    """

    __slots__ = ("lock", "send_lock", "recv_lock", "outbox", "pending",
                 "pinned", "dead", "spec_id", "last_reply", "death")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.recv_lock = threading.Lock()
        #: Wire messages queued for the next flush: ``(spec, msg)`` pairs.
        self.outbox: list[tuple[Any, tuple]] = []
        #: jid -> PendingJob for every job sent (or queued) but unresolved.
        self.pending: dict[int, PendingJob] = {}
        #: Shm segment names this channel's worker has attached (procpool
        #: descriptor pre-pinning; repeat sends ship a light PinnedRef).
        self.pinned: set[str] = set()
        self.dead = False
        self.spec_id: int | None = None
        #: Parent-clock arrival time of the most recent reply (queued-time
        #: estimation; None until the first reply).
        self.last_reply: float | None = None
        #: Set by the runtime on replacement: (pid, exitcode) or a reason.
        self.death: Any = None


class PipelinedDispatchMixin:
    """The submit/flush/drain engine.  Host runtimes provide:

    * ``self._idle`` -- ``queue.Queue`` of channel tokens (each live
      channel appears ``self._inflight`` times);
    * ``self._inflight`` -- the per-channel outstanding-job window K;
    * ``self._ensure_pool()`` / ``self.aborted()``;
    * ``_channel_comm(h)``, ``_ship_spec(h, spec)``, ``_ship_jobs(h,
      msgs)`` -- the wire;
    * ``_silent_reason(h)`` -- liveness verdict for a channel that owes
      replies but stays quiet (process death, heartbeat silence);
    * ``_replace_channel(dead, reason, down_key)`` -- replace the
      channel, emit WORKER_DOWN/WORKER_UP, return the fresh handle;
    * ``_crashed_error(key, h)`` -- the WorkerCrashError to raise;
    * ``_route_aux(h, msg)`` -- side messages in the reply stream
      (cluster's lazy fetch).
    """

    # -- submit ---------------------------------------------------------------

    def _dispatch_job(
        self,
        spec: Any,
        key: Hashable,
        build_msg: Callable[[int, Any], tuple],
        die: bool,
        life: int = 0,
        values: dict | None = None,
    ) -> tuple[Any, float]:
        """Ship one job and block until its reply: ``(reply, queued)``.

        ``build_msg(jid, handle)`` constructs the wire message under the
        channel lock -- which is what lets the procpool runtime make its
        pin-or-descriptor decision atomically with enqueue order.
        """
        while True:
            handle = self._acquire_channel()
            me = PendingJob(next(_JIDS), key, life, die, values)
            with handle.lock:
                if handle.dead:
                    continue  # token raced the crash; fetch a fresh one
                msg = build_msg(me.jid, handle)
                handle.pending[me.jid] = me
                handle.outbox.append((spec, msg))
            break
        try:
            self._flush_channel(handle)
            reply = self._await_pipelined(handle, me, key)
        finally:
            if not handle.dead:
                self._idle.put(handle)
        if reply is CRASHED:
            raise self._crashed_error(key, handle)
        return reply, me.queued

    def _acquire_channel(self) -> Any:
        self._ensure_pool()
        deadline = time.perf_counter() + _ACQUIRE_TIMEOUT_SECONDS
        while True:
            try:
                handle = self._idle.get(timeout=0.25)
            except queue.Empty:
                if self.aborted():
                    raise SchedulerError("run aborted while waiting for a worker channel")
                if time.perf_counter() > deadline:  # pragma: no cover - pool accounting bug
                    raise SchedulerError("no worker channel became available within 60s")
                continue
            if handle.dead:
                continue  # stale token of a replaced channel; drop it
            return handle

    # -- the combining send path ----------------------------------------------

    def _flush_channel(self, handle: Any) -> None:
        """Ship everything in the channel outbox, combining with whatever
        other submitters queued while we waited for the send lock.  A
        submitter whose message was already flushed by the previous lock
        holder finds an empty outbox and returns immediately."""
        with handle.send_lock:
            while True:
                with handle.lock:
                    batch, handle.outbox = handle.outbox, []
                    dead = handle.dead
                if dead or not batch:
                    return
                try:
                    self._ship_batch(handle, batch)  # verify: ok=blocking-under-lock (send_lock exists to serialize wire writes; sending under it is its purpose)
                except CommClosedError:
                    self._channel_lost(handle, "closed")  # verify: ok=blocking-under-lock (channel already dead; the corpse-join keeps send_lock only against peers that will see handle.dead)
                    return

    def _ship_batch(self, handle: Any, batch: list[tuple[Any, tuple]]) -> None:
        """Send one flushed outbox: spec announcements interleaved (in
        order) with micro-batched job frames."""
        msgs: list[tuple] = []
        for spec, msg in batch:
            if spec is not None and handle.spec_id != id(spec):
                if msgs:
                    self._stamp_and_ship(handle, msgs)
                    msgs = []
                self._ship_spec(handle, spec)
                handle.spec_id = id(spec)
            msgs.append(msg)
        if msgs:
            self._stamp_and_ship(handle, msgs)

    def _stamp_and_ship(self, handle: Any, msgs: list[tuple]) -> None:
        now = time.perf_counter()
        with handle.lock:
            for m in msgs:
                p = handle.pending.get(m[0])
                if p is not None:
                    p.t_sent = now
        self._ship_jobs(handle, msgs)

    # -- the leader-drain receive path ----------------------------------------

    def _await_pipelined(self, handle: Any, me: PendingJob, key: Hashable) -> Any:
        event = me.event
        while True:
            if event.is_set():
                return me.reply
            if handle.recv_lock.acquire(blocking=False):
                try:
                    if not event.is_set():
                        self._drain_channel(handle, me)
                finally:
                    handle.recv_lock.release()
            else:
                event.wait(_WAITER_WAKE_SECONDS)
            if self.aborted() and not event.is_set():
                with handle.lock:
                    handle.pending.pop(me.jid, None)
                raise SchedulerError(
                    f"run aborted while task {key!r} awaited a worker reply"
                )

    def _drain_channel(self, handle: Any, me: PendingJob) -> None:
        """Drain replies for every job in flight on ``handle`` until our
        own resolves or the channel is lost.  Runs with ``recv_lock``
        held: we are the only reader."""
        comm = self._channel_comm(handle)
        while not me.event.is_set():
            try:
                if comm.poll(POLL_SECONDS):  # verify: ok=blocking-under-lock (recv_lock is the drain-leader election; blocking here with it held is the design)
                    self._route_reply(handle, comm.recv())
                    continue
            except CommClosedError:
                self._channel_lost(handle, "closed")
                return
            reason = self._silent_reason(handle)
            if reason is not None:
                try:
                    if comm.poll(0):  # a final reply raced the death
                        self._route_reply(handle, comm.recv())
                        continue
                except CommClosedError:
                    pass
                self._channel_lost(handle, reason)
                return
            if self.aborted():
                return

    def _route_reply(self, handle: Any, msg: tuple) -> None:
        tag = msg[0]
        if tag in ("done", "fail"):
            now = time.perf_counter()
            with handle.lock:
                p = handle.pending.pop(msg[1], None)
                prev, handle.last_reply = handle.last_reply, now
            if p is None:
                return  # reply for a job resolved another way (late, post-crash)
            if prev is not None and p.t_sent:
                # The worker runs this channel's jobs in FIFO order, so our
                # job started when the reply before it arrived: everything
                # between t_sent and then is pipelining backlog, not cost.
                p.queued = min(max(0.0, prev - p.t_sent), max(0.0, now - p.t_sent))
            p.reply = msg
            p.event.set()
            return
        self._route_aux(handle, msg)

    def _reply_result(self, reply: tuple) -> tuple[Any, dict]:
        """Unpack a resolved reply: ``(written_blob, spans)`` or raise the
        shipped exception (FaultError -> scheduler recovery)."""
        if reply[0] == "fail":
            raise reply[2]
        return reply[2], reply[3]

    # -- channel loss ----------------------------------------------------------

    def _channel_lost(self, handle: Any, reason: str) -> None:
        """Exactly-once teardown of a lost channel: replace it, refill the
        token pool, and resolve every in-flight job as crashed so each
        submitter raises WorkerCrashError for its own task."""
        with handle.lock:
            if handle.dead:
                return
            handle.dead = True
            pending = list(handle.pending.values())
            handle.pending.clear()
            handle.outbox = []
        down_key = None
        for p in pending:
            if p.die:
                down_key = p.key  # the injected death names its victim
                break
        if down_key is None and pending:
            down_key = pending[0].key
        fresh = None
        try:
            fresh = self._replace_channel(handle, reason, down_key)
        finally:
            # Resolve even if replacement failed: blocked submitters must
            # not hang on a channel that will never speak again.
            for p in pending:
                p.reply = CRASHED
                p.event.set()
        if fresh is not None:
            for _ in range(self._inflight):
                self._idle.put(fresh)
