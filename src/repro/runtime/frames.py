"""Execution frames: the unit of work a runtime schedules.

A frame corresponds to one invocation of a scheduler routine
(TRYINITCOMPUTE, INITANDCOMPUTE, NOTIFYSUCCESSOR, ...) plus everything it
calls *without* spawning.  Frames are the paper's Cilk strands between
spawn points: they run to completion, never block, and communicate only
through shared task records and the block store.
"""

from __future__ import annotations

from typing import Callable


class Frame:
    """A schedulable closure with a base virtual cost and a debug label."""

    __slots__ = ("fn", "base_cost", "label")

    def __init__(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        self.fn = fn
        self.base_cost = float(base_cost)
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frame({self.label or self.fn!r}, base_cost={self.base_cost})"
