"""Serial reference executor.

Runs frames depth-first from an explicit LIFO stack -- the schedule a
single Cilk worker produces -- without touching threads or the event loop.
Virtual charges are still accumulated so ``makespan`` equals total charged
work, which for one worker coincides with the simulator's result modulo
steal bookkeeping.  Used by unit tests and as the P=1 oracle.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.api import RunResult
from repro.runtime.frames import Frame


class InlineRuntime:
    """Depth-first serial frame executor."""

    #: Frames run one at a time in the caller's thread; schedulers may
    #: drop per-bump trace locking (``ExecutionTrace.assume_serial``).
    concurrent_frames = False

    def __init__(self) -> None:
        self._stack: list[Frame] = []
        self._total = 0.0
        self._frames = 0
        self._running = False

    @property
    def workers(self) -> int:
        return 1

    # -- observability surface ------------------------------------------------------

    def obs_now(self) -> float:
        """Virtual time = charge accumulated so far."""
        return self._total

    def obs_worker(self) -> int:
        return 0

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        if not self._running:
            raise RuntimeError("spawn called outside execute()")
        self._stack.append(Frame(fn, base_cost, label))

    def charge(self, amount: float) -> None:
        self._total += amount

    def execute(self, root: Frame) -> RunResult:
        if self._running:
            raise RuntimeError("InlineRuntime is not reentrant")
        self._running = True
        self._total = 0.0
        self._frames = 0
        self._stack = [root]
        stack = self._stack  # spawn() appends to the same list object
        frames = 0
        try:
            while stack:
                frame = stack.pop()
                frames += 1
                self._total += frame.base_cost
                frame.fn()
        finally:
            self._frames = frames
            self._running = False
        return RunResult(
            makespan=self._total,
            frames=self._frames,
            workers=1,
            busy_time=[self._total],
        )
