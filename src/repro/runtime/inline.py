"""Serial reference executor.

Runs frames depth-first from an explicit LIFO stack -- the schedule a
single Cilk worker produces -- without touching threads or the event loop.
Virtual charges are still accumulated so ``makespan`` equals total charged
work, which for one worker coincides with the simulator's result modulo
steal bookkeeping.  Used by unit tests and as the P=1 oracle.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.api import RunResult
from repro.runtime.frames import Frame


class InlineRuntime:
    """Depth-first serial frame executor."""

    def __init__(self) -> None:
        self._stack: list[Frame] = []
        self._total = 0.0
        self._frames = 0
        self._running = False

    @property
    def workers(self) -> int:
        return 1

    # -- observability surface ------------------------------------------------------

    def obs_now(self) -> float:
        """Virtual time = charge accumulated so far."""
        return self._total

    def obs_worker(self) -> int:
        return 0

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        if not self._running:
            raise RuntimeError("spawn called outside execute()")
        self._stack.append(Frame(fn, base_cost, label))

    def charge(self, amount: float) -> None:
        self._total += amount

    def execute(self, root: Frame) -> RunResult:
        if self._running:
            raise RuntimeError("InlineRuntime is not reentrant")
        self._running = True
        self._total = 0.0
        self._frames = 0
        self._stack = [root]
        try:
            while self._stack:
                frame = self._stack.pop()
                self._frames += 1
                self._total += frame.base_cost
                frame.fn()
        finally:
            self._running = False
        return RunResult(
            makespan=self._total,
            frames=self._frames,
            workers=1,
            busy_time=[self._total],
        )
