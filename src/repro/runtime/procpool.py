"""Process-pool runtime: real multi-core execution of compute phases.

:class:`ProcessRuntime` keeps every piece of scheduler state -- the task
map, join counters, bit vectors, the recovery table, the block store --
in the **parent** process, exactly where :class:`ThreadedRuntime` keeps
it: scheduler frames still run on N parent threads with per-worker
deques and randomized stealing.  What moves off-process is the *compute
phase* only: the pure, stateless NumPy kernels (Theorem 1's assumption)
are dispatched over a pipe to a pool of N worker processes, one per
scheduler thread, so kernels execute on real cores with no GIL in the
way while the parent thread blocks (releasing the GIL) awaiting the
reply.

The dispatch seam is :meth:`compute_dispatch`: schedulers probe the
runtime for it once (``getattr(runtime, "compute_dispatch", None)``) and
call it in place of ``spec.compute(key, ctx)``.  Per task it

1. reads every declared input through the parent-side context -- fault
   flags, checksum verification, and eviction all surface *here*, inside
   the scheduler's existing ``except FaultError`` recovery path;
2. ships each input either as a zero-copy shared-memory descriptor
   (:meth:`repro.memory.shm.SharedMemoryBackend.descriptor`) or, for
   stores without the shm backend, by pickle;
3. runs ``spec.compute`` in the worker against a read-only context and
   writes the returned outputs back through the parent context, so
   strict-footprint enforcement, store versioning, fingerprinting, and
   shm materialization all stay parent-side and single-owner.

**Worker death is a detected compute-phase fault.**  If the worker
process exits without replying (killed, segfault, ``die_on``-injected
``os._exit``), the dispatcher starts a replacement worker, emits a
``WORKER_DOWN`` event, and raises
:class:`~repro.exceptions.WorkerCrashError` -- whose source is the task
itself, so the FT scheduler recovers it through RECOVERTASKONCE and the
task re-executes on the fresh worker.  The baseline Nabbit scheduler has
no recovery path, and a crash fails the run (faithful to the paper).

Faults injected by parent-side hooks (flag corruption, silent data
corruption) interact with dispatch exactly as with in-process runtimes,
because every read and write happens in the parent.

The pool forks (where available) at the top of ``execute()``, while the
calling thread is still the only thread -- never mid-run -- and is torn
down when the run quiesces.  ``charge`` stays a no-op: like its parent
class, this runtime lives on the wall clock.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from typing import Any, Hashable, Iterable

from repro.comm.core import CommClosedError
from repro.comm.pipe import PipeComm, pipe_pair, wrap_connection
from repro.exceptions import OverwrittenError, SchedulerError, WorkerCrashError
from repro.graph.taskspec import BlockRef
from repro.memory.shm import ShmDescriptor, attach_payload
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import RunResult
from repro.runtime.frames import Frame
from repro.runtime.threadpool import ThreadedRuntime

#: Exit code of a ``die_on``-injected worker death (tests assert on it).
CRASH_EXIT_CODE = 73

#: Reply-poll granularity: how often the awaiting parent thread checks
#: whether the worker process is still alive.
_POLL_SECONDS = 0.05


# ---------------------------------------------------------------------------
# worker-process side


class _WorkerComputeContext:
    """The compute context a worker hands to ``spec.compute``.

    Reads serve the input snapshot the parent shipped (attempting an
    unshipped -- i.e. undeclared -- input is the same ``SchedulerError``
    the strict parent context raises); writes are buffered and applied by
    the parent, which re-enforces the declared footprint there.
    """

    __slots__ = ("key", "_values", "reads", "writes", "written")

    def __init__(self, key: Hashable, values: dict) -> None:
        self.key = key
        self._values = values
        self.reads: list[BlockRef] = []
        self.writes: list[BlockRef] = []
        self.written: list[tuple[tuple, Any]] = []

    def read(self, ref: BlockRef) -> Any:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        try:
            value = self._values[ref]
        except KeyError:
            raise SchedulerError(
                f"task {self.key!r} read undeclared input {ref!r} in a worker process"
            ) from None
        self.reads.append(ref)
        return value

    def write(self, ref: BlockRef, value: Any) -> None:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        self.writes.append(ref)
        self.written.append((tuple(ref), value))


def _decode_inputs(inputs: list) -> tuple[dict, list]:
    values: dict = {}
    attachments: list = []
    for block, version, payload in inputs:
        if isinstance(payload, ShmDescriptor):
            try:
                value, att = attach_payload(payload)
            except FileNotFoundError:
                # The parent unlinked the segment after taking the
                # descriptor: the version was evicted/rewritten, which is
                # exactly the memory-reuse fault a parent-side read of an
                # evicted version raises.
                raise OverwrittenError(block, version, None) from None
            attachments.append(att)
        else:
            value = payload
        values[BlockRef(block, version)] = value
    return values, attachments


def _portable_exc(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary that
    does (exception classes with required constructor args often pickle
    but fail to *unpickle*)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SchedulerError(f"worker exception: {type(exc).__name__}: {exc}")


def _worker_main(raw_conn: Any) -> None:
    """Worker-process loop: receive a spec once, then serve jobs.

    The inherited pipe end is wrapped in a :class:`PipeComm`, so the
    loop speaks the comm contract: a vanished parent is one
    ``CommClosedError``, not a zoo of OS-level errnos.
    """
    conn = wrap_connection(raw_conn, peer="pipe://parent")
    spec = None
    while True:
        try:
            msg = conn.recv()
        except CommClosedError:
            return
        tag = msg[0]
        if tag == "stop":
            conn.close()
            return
        if tag == "spec":
            spec = pickle.loads(msg[1])
            continue
        if tag != "job":
            conn.send(("raise", SchedulerError(f"unknown message tag {tag!r}")))
            continue
        _, key, inputs, die = msg
        if die:
            os._exit(CRASH_EXIT_CODE)
        attachments: list = []
        # Worker-side spans: the parent cannot see where time goes inside
        # this process, so the worker measures its own phases -- shm
        # attach, kernel wall + process-CPU, reply serialization -- and
        # ships the numbers back with the result.  Durations only: the
        # two processes do not share a clock epoch.
        spans: dict[str, float] = {}
        try:
            t_at = time.perf_counter()
            values, attachments = _decode_inputs(inputs)
            spans["attach"] = time.perf_counter() - t_at
            ctx = _WorkerComputeContext(key, values)
            t_kw = time.perf_counter()
            t_kc = time.process_time()
            spec.compute(key, ctx)
            spans["kernel_cpu"] = time.process_time() - t_kc
            spans["kernel"] = time.perf_counter() - t_kw
            t_sz = time.perf_counter()
            blob = pickle.dumps(ctx.written, pickle.HIGHEST_PROTOCOL)
            spans["serialize"] = time.perf_counter() - t_sz
            reply = ("ok", blob, spans)
        except BaseException as exc:
            reply = ("raise", _portable_exc(exc))
        try:
            conn.send(reply)
        except Exception:
            try:
                conn.send(
                    ("raise", SchedulerError(f"worker reply for task {key!r} failed to serialize"))
                )
            except Exception:
                os._exit(1)
        finally:
            del reply
            values = ctx = None  # noqa: F841 -- drop view refs before unmapping
            for att in attachments:
                att.close()


# ---------------------------------------------------------------------------
# parent side


class _WorkerHandle:
    __slots__ = ("proc", "conn", "spec_id")

    def __init__(self, proc: Any, conn: PipeComm) -> None:
        self.proc = proc
        self.conn = conn
        self.spec_id: int | None = None


class ProcessRuntime(ThreadedRuntime):
    """Work-stealing thread pool whose compute phases run in a pool of
    worker processes (one per scheduler thread) over shared memory.

    Parameters beyond :class:`ThreadedRuntime`'s:

    ``die_on``
        Iterable of task keys; the first dispatch of each makes its
        worker process exit immediately (``os._exit``) *before*
        computing -- real process-death fault injection.  One-shot per
        key: the recovered task's re-dispatch runs normally.
    ``start_method``
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits the imported kernels) else ``spawn``.
    """

    def __init__(
        self,
        workers: int = 4,
        seed: int | None = None,
        event_log: EventLog | None = None,
        die_on: Iterable[Hashable] | None = None,
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(workers, seed, event_log, metrics=metrics)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._mp = multiprocessing.get_context(start_method)
        self._die_on = set(die_on or ())
        self._die_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._handles: list[_WorkerHandle] = []
        self._idle: queue.Queue[_WorkerHandle] = queue.Queue()
        self._spec_blobs: dict[int, bytes] = {}
        self._crashes = 0
        # Pre-built instruments: the dispatch hot path must never pay
        # registry lookup/label work, only a cached-flag test + observe.
        self._dispatch_hist = self._metrics.histogram(
            "repro_dispatch_seconds",
            "full remote compute round trip (queue wait + ship + kernel + reply)",
        )
        self._crash_counter = self._metrics.counter(
            "repro_worker_crashes_total",
            "compute worker processes that died mid-dispatch and were replaced",
        )

    @property
    def worker_crashes(self) -> int:
        """Worker processes that died mid-dispatch (and were replaced)."""
        return self._crashes

    # -- pool lifecycle -----------------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        # Start the pool while the calling thread is the only live thread:
        # forking after the scheduler threads exist risks inheriting locks
        # (import lock, allocator locks) mid-acquisition.
        self._ensure_pool()
        try:
            return super().execute(root)
        finally:
            self._shutdown_pool()

    def _ensure_pool(self) -> None:
        if self._handles:
            return
        with self._pool_lock:
            if self._handles:
                return
            handles = [self._start_worker() for _ in range(self._workers)]
            self._handles = handles
            for h in handles:
                self._idle.put(h)

    def _start_worker(self) -> _WorkerHandle:
        parent_comm, child_comm = pipe_pair(self._mp)
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_comm.connection,),
            daemon=True,
            name="repro-compute",
        )
        proc.start()
        child_comm.close()
        return _WorkerHandle(proc, parent_comm)

    def _replace_worker(self, dead: _WorkerHandle) -> _WorkerHandle:
        # Reap the corpse outside the pool lock: join() can wait its full
        # timeout on a wedged child, and every other dispatch thread that
        # loses a worker meanwhile would pile up behind the lock.
        dead.conn.close()
        dead.proc.join(timeout=1.0)
        with self._pool_lock:
            try:
                self._handles.remove(dead)
            except ValueError:
                pass
            self._crashes += 1
            fresh = self._start_worker()
            self._handles.append(fresh)
            return fresh

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            handles, self._handles = self._handles, []
            try:
                while True:
                    self._idle.get_nowait()
            except queue.Empty:
                pass
        for h in handles:
            try:
                h.conn.send(("stop",))
            except CommClosedError:
                pass
        for h in handles:
            h.proc.join(timeout=5.0)
            if h.proc.is_alive():  # pragma: no cover - stuck worker
                h.proc.terminate()
                h.proc.join(timeout=1.0)
            h.conn.close()

    # -- the dispatch seam ---------------------------------------------------

    def compute_dispatch(self, spec: Any, key: Hashable, ctx: Any, life: int = 0) -> None:
        """Run ``spec.compute(key, ...)`` in a worker process.

        Called by the schedulers in place of a direct ``spec.compute``;
        raises the same :class:`~repro.exceptions.FaultError` family a
        local compute would, plus :class:`WorkerCrashError` when the
        worker process dies mid-task.  ``life`` is the incarnation being
        computed -- it only attributes telemetry (SPAN events), never
        scheduling decisions.
        """
        obs = self._log is not NULL_LOG
        mx = self._mx
        t0 = self._log.now() if obs else (time.perf_counter() if mx else 0.0)
        store = ctx.store
        describe = getattr(store, "descriptor", None)
        inputs = []
        for raw in spec.inputs(key):
            ref = raw if type(raw) is BlockRef else BlockRef(*raw)
            # The parent-side read is the fault gate: corruption flags,
            # checksum mismatches, and evictions raise here, inside the
            # scheduler's recovery path, before any bytes ship.
            value = ctx.read(ref)
            desc = describe(ref) if describe is not None else None
            inputs.append((ref.block, ref.version, desc if desc is not None else value))
        die = False
        if self._die_on:
            with self._die_lock:
                if key in self._die_on:
                    self._die_on.discard(key)
                    die = True
        written, spans = self._submit(spec, key, inputs, die)
        if obs:
            log = self._log
            end = log.now()
            # Worker-measured phases (durations only; foreign clock) ...
            log.emit(EventKind.SPAN, key, life, phase="attach",
                     wall=spans.get("attach", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="kernel",
                     wall=spans.get("kernel", 0.0), cpu=spans.get("kernel_cpu", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="serialize",
                     wall=spans.get("serialize", 0.0))
            # ... and the parent-measured full round trip on the log clock.
            log.emit(EventKind.SPAN, key, life, phase="dispatch", wall=end - t0, t0=t0)
        if mx:
            self._dispatch_hist.observe(
                (self._log.now() if obs else time.perf_counter()) - t0
            )
        for reftup, value in written:
            ctx.write(BlockRef(*reftup), value)

    def _spec_blob(self, spec: Any) -> bytes:
        blob = self._spec_blobs.get(id(spec))
        if blob is None:
            blob = pickle.dumps(spec)
            self._spec_blobs[id(spec)] = blob
        return blob

    def _submit(
        self, spec: Any, key: Hashable, inputs: list, die: bool
    ) -> tuple[list, dict[str, float]]:
        self._ensure_pool()
        try:
            handle = self._idle.get(timeout=60.0)
        except queue.Empty:  # pragma: no cover - pool accounting bug
            raise SchedulerError("no compute worker became available within 60s")
        try:
            try:
                if handle.spec_id != id(spec):
                    handle.conn.send(("spec", self._spec_blob(spec)))
                    handle.spec_id = id(spec)
                handle.conn.send(("job", key, inputs, die))
                reply = self._await_reply(handle)
            except CommClosedError:
                reply = None
            if reply is None:
                dead, handle = handle, self._replace_worker(handle)
                if self._log is not NULL_LOG:
                    self._log.emit(
                        EventKind.WORKER_DOWN,
                        key,
                        0,
                        pid=dead.proc.pid,
                        exitcode=dead.proc.exitcode,
                    )
                    self._log.emit(EventKind.WORKER_UP, None, 0, pid=handle.proc.pid)
                if self._mx:
                    self._crash_counter.inc()
                raise WorkerCrashError(key, pid=dead.proc.pid, exitcode=dead.proc.exitcode)
            tag = reply[0]
            if tag == "ok":
                return pickle.loads(reply[1]), reply[2]
            if tag == "raise":
                raise reply[1]  # FaultError -> scheduler recovery; else scheduler bug
            raise SchedulerError(f"unexpected reply tag {tag!r} from worker {handle.proc.pid}")
        finally:
            self._idle.put(handle)

    def _await_reply(self, handle: _WorkerHandle) -> Any:
        """The worker's reply, or ``None`` if its process died first.

        The blocking ``poll`` releases the GIL, which is what lets N
        parent threads await N worker processes concurrently.
        """
        conn = handle.conn
        while True:
            if conn.poll(_POLL_SECONDS):
                try:
                    return conn.recv()
                except CommClosedError:
                    return None
            if not handle.proc.is_alive():
                if conn.poll(0):  # reply raced the exit
                    try:
                        return conn.recv()
                    except CommClosedError:
                        return None
                return None
