"""Process-pool runtime: real multi-core execution of compute phases.

:class:`ProcessRuntime` keeps every piece of scheduler state -- the task
map, join counters, bit vectors, the recovery table, the block store --
in the **parent** process, exactly where :class:`ThreadedRuntime` keeps
it: scheduler frames still run on N parent threads with per-worker
deques and randomized stealing.  What moves off-process is the *compute
phase* only: the pure, stateless NumPy kernels (Theorem 1's assumption)
are dispatched over a pipe to a pool of persistent worker processes, so
kernels execute on real cores with no GIL in the way.

The dispatch seam is :meth:`compute_dispatch`: schedulers probe the
runtime for it once (``getattr(runtime, "compute_dispatch", None)``) and
call it in place of ``spec.compute(key, ctx)``.  Per task it

1. reads every declared input through the parent-side context -- fault
   flags, checksum verification, and eviction all surface *here*, inside
   the scheduler's existing ``except FaultError`` recovery path;
2. ships each input either as a zero-copy shared-memory descriptor
   (:meth:`repro.memory.shm.SharedMemoryBackend.descriptor`) or, for
   stores without the shm backend, by pickle;
3. runs ``spec.compute`` in the worker against a read-only context and
   writes the returned outputs back through the parent context, so
   strict-footprint enforcement, store versioning, fingerprinting, and
   shm materialization all stay parent-side and single-owner.

**Dispatch is pipelined** (the fast path of ROADMAP item 4), through
:class:`~repro.runtime.dispatch.PipelinedDispatchMixin`:

* each worker process carries an ``inflight``-deep outstanding-job
  window, so the pipe stays fed and the worker moves between jobs
  without sleeping on an empty buffer;
* concurrently-ready jobs for one worker are micro-batched into a
  single ``("jobs", pack_frames([...]))`` wire frame, one syscall for
  the burst, with one streamed ``("done", jid, ...)``/``("fail", jid,
  ...)`` reply per job;
* hot shm descriptors are **pre-pinned**: the first dispatch ships the
  full :class:`~repro.memory.shm.ShmDescriptor` and the worker keeps
  the segment attached, so every later dispatch sends a tiny
  :class:`PinnedRef` and the worker skips re-attach entirely.  Pins are
  keyed by segment *name*, which is version-unique, so a rewritten or
  corrupt-reinjected version can never be served from a stale pin.

**Worker death is a detected compute-phase fault.**  If the worker
process exits without replying (killed, segfault, ``die_on``-injected
``os._exit``), the dispatcher starts a replacement worker, emits one
``WORKER_DOWN``/``WORKER_UP`` pair, and every job that was in flight on
the dead process raises :class:`~repro.exceptions.WorkerCrashError` --
whose source is the task itself, so the FT scheduler recovers each
through RECOVERTASKONCE.  Jobs earlier in a batch that already streamed
their replies are *not* re-executed: a crash mid-batch costs exactly the
unfinished jobs.  The baseline Nabbit scheduler has no recovery path,
and a crash fails the run (faithful to the paper).

Faults injected by parent-side hooks (flag corruption, silent data
corruption) interact with dispatch exactly as with in-process runtimes,
because every read and write happens in the parent.

The pool forks (where available) at the top of ``execute()``, while the
calling thread is still the only thread -- never mid-run -- and is torn
down when the run quiesces.  ``charge`` stays a no-op: like its parent
class, this runtime lives on the wall clock.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from typing import Any, Hashable, Iterable, NamedTuple

from repro.comm import frame
from repro.comm.core import CommClosedError
from repro.comm.frame import unpack_frames
from repro.comm.pipe import PipeComm, pipe_pair, wrap_connection
from repro.exceptions import OverwrittenError, SchedulerError, WorkerCrashError
from repro.graph.taskspec import BlockRef
from repro.memory.shm import ShmDescriptor, attach_payload
from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import RunResult
from repro.runtime.dispatch import PipelineChannel, PipelinedDispatchMixin
from repro.runtime.frames import Frame
from repro.runtime.threadpool import ThreadedRuntime

#: Exit code of a ``die_on``-injected worker death (tests assert on it).
CRASH_EXIT_CODE = 73

#: Reply-poll granularity (kept as a module name: the cluster runtime
#: and older call sites import it from here).
_POLL_SECONDS = 0.05

#: Default outstanding-job window per worker process.
DEFAULT_INFLIGHT = 2


class PinnedRef(NamedTuple):
    """Wire stand-in for a :class:`ShmDescriptor` the receiving worker
    has already attached.

    Segment names are version-unique (a rewritten version gets a fresh
    segment), so the name alone identifies the exact bytes the worker
    pinned on first sight of the full descriptor.
    """

    name: str
    """Segment name (``SharedMemory.name``) of the pinned descriptor."""


# ---------------------------------------------------------------------------
# worker-process side


class _WorkerComputeContext:
    """The compute context a worker hands to ``spec.compute``.

    Reads serve the input snapshot the parent shipped (attempting an
    unshipped -- i.e. undeclared -- input is the same ``SchedulerError``
    the strict parent context raises); writes are buffered and applied by
    the parent, which re-enforces the declared footprint there.
    """

    __slots__ = ("key", "_values", "reads", "writes", "written")

    def __init__(self, key: Hashable, values: dict) -> None:
        self.key = key
        self._values = values
        self.reads: list[BlockRef] = []
        self.writes: list[BlockRef] = []
        self.written: list[tuple[tuple, Any]] = []

    def read(self, ref: BlockRef) -> Any:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        try:
            value = self._values[ref]
        except KeyError:
            raise SchedulerError(
                f"task {self.key!r} read undeclared input {ref!r} in a worker process"
            ) from None
        self.reads.append(ref)
        return value

    def write(self, ref: BlockRef, value: Any) -> None:
        if type(ref) is not BlockRef:
            ref = BlockRef(*ref)
        self.writes.append(ref)
        self.written.append((tuple(ref), value))


def _decode_inputs(inputs: list, pins: dict) -> dict:
    """Input values for one job, attaching new shm segments into the
    worker's pin cache and serving :class:`PinnedRef` inputs from it."""
    values: dict = {}
    for block, version, payload in inputs:
        if isinstance(payload, PinnedRef):
            try:
                value = pins[payload.name][0]
            except KeyError:
                # Protocol invariant broken: the parent only sends a ref
                # after shipping the descriptor on this same connection.
                raise SchedulerError(
                    f"input ({block!r}, v{version}) referenced unpinned "
                    f"segment {payload.name!r}"
                ) from None
        elif isinstance(payload, ShmDescriptor):
            try:
                value, att = attach_payload(payload)
            except FileNotFoundError:
                # The parent unlinked the segment after taking the
                # descriptor: the version was evicted/rewritten, which is
                # exactly the memory-reuse fault a parent-side read of an
                # evicted version raises.
                raise OverwrittenError(block, version, None) from None
            pins[payload.name] = (value, att)
        else:
            value = payload
        values[BlockRef(block, version)] = value
    return values


def _portable_exc(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary that
    does (exception classes with required constructor args often pickle
    but fail to *unpickle*)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SchedulerError(f"worker exception: {type(exc).__name__}: {exc}")


def _serve_job(conn: PipeComm, spec: Any, job: tuple, pins: dict) -> None:
    """Run one job from a batch and stream its reply.

    Worker-side spans: the parent cannot see where time goes inside
    this process, so the worker measures its own phases -- shm attach,
    kernel wall + process-CPU, reply serialization -- and ships the
    numbers back with the result.  Durations only: the two processes do
    not share a clock epoch.

    The reply ships out-of-band: result arrays are pickled to a tiny
    meta stream plus buffer views (:func:`frame.encode_oob`) and the
    transport gathers them straight from the result memory -- the
    parent-side copy chain of the old ``pickle.dumps`` reply is gone.
    """
    jid, key, inputs, die = job
    if die:
        os._exit(CRASH_EXIT_CODE)
    spans: dict[str, float] = {}
    try:
        t_at = time.perf_counter()
        values = _decode_inputs(inputs, pins)
        spans["attach"] = time.perf_counter() - t_at
        ctx = _WorkerComputeContext(key, values)
        t_kw = time.perf_counter()
        t_kc = time.process_time()
        spec.compute(key, ctx)
        spans["kernel_cpu"] = time.process_time() - t_kc
        spans["kernel"] = time.perf_counter() - t_kw
        t_sz = time.perf_counter()
        blob = frame.encode_oob(ctx.written)
        spans["serialize"] = time.perf_counter() - t_sz
        reply = ("done", jid, blob, spans)
    except BaseException as exc:
        reply = ("fail", jid, _portable_exc(exc))
    try:
        conn.send_oob(reply)
    except CommClosedError:
        raise
    except Exception:
        try:
            conn.send(
                ("fail", jid, SchedulerError(f"worker reply for task {key!r} failed to serialize"))
            )
        except Exception:
            os._exit(1)
    finally:
        del reply
        values = ctx = None  # noqa: F841 -- non-pinned view refs drop here


def _worker_main(raw_conn: Any) -> None:
    """Worker-process loop: receive a spec once, then serve job batches.

    The inherited pipe end is wrapped in a :class:`PipeComm`, so the
    loop speaks the comm contract: a vanished parent is one
    ``CommClosedError``, not a zoo of OS-level errnos.  Shm attachments
    live in ``pins`` for the life of the process (closed on ``stop``),
    which is what lets repeat dispatches of hot blocks skip re-attach.
    """
    conn = wrap_connection(raw_conn, peer="pipe://parent")
    spec = None
    pins: dict[str, tuple[Any, Any]] = {}
    while True:
        try:
            msg = conn.recv()
        except CommClosedError:
            return
        tag = msg[0]
        try:
            if tag == "stop":
                for _value, att in pins.values():
                    att.close()
                pins.clear()
                conn.close()
                return
            if tag == "spec":
                spec = pickle.loads(msg[1])
            elif tag == "jobs":
                # Two batch shapes: a list of job tuples (the OOB path --
                # input arrays are zero-copy views over the transport
                # buffer) or a legacy packed-frames blob.
                batch = msg[1]
                if isinstance(batch, (bytes, bytearray, memoryview)):
                    batch = [frame.loads(p) for p in unpack_frames(bytes(batch))]
                for job in batch:
                    _serve_job(conn, spec, job, pins)
            else:
                conn.send(("fail", None, SchedulerError(f"unknown message tag {tag!r}")))
        except CommClosedError:
            return


# ---------------------------------------------------------------------------
# parent side


class _WorkerHandle(PipelineChannel):
    """One worker process: its pipe plus the shared pipelining state."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc: Any, conn: PipeComm) -> None:
        super().__init__()
        self.proc = proc
        self.conn = conn


class ProcessRuntime(PipelinedDispatchMixin, ThreadedRuntime):
    """Work-stealing thread pool whose compute phases run in a pool of
    persistent worker processes over shared memory, with pipelined
    batched dispatch.

    Parameters beyond :class:`ThreadedRuntime`'s:

    ``die_on``
        Iterable of task keys; the first dispatch of each makes its
        worker process exit immediately (``os._exit``) *before*
        computing -- real process-death fault injection.  One-shot per
        key: the recovered task's re-dispatch runs normally.
    ``start_method``
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits the imported kernels) else ``spawn``.
    ``procs``
        Worker-process count; defaults to ``workers`` (one per scheduler
        thread).  With pipelining, fewer processes than threads still
        keeps every core busy: up to ``inflight`` threads feed each
        process.
    ``inflight``
        Outstanding-job window per worker process (K jobs in flight
        before a dispatching thread must wait for a reply slot).
    """

    def __init__(
        self,
        workers: int = 4,
        seed: int | None = None,
        event_log: EventLog | None = None,
        die_on: Iterable[Hashable] | None = None,
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
        procs: int | None = None,
        inflight: int = DEFAULT_INFLIGHT,
    ) -> None:
        super().__init__(workers, seed, event_log, metrics=metrics)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._mp = multiprocessing.get_context(start_method)
        self._die_on = set(die_on or ())
        self._die_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._procs = max(1, workers if procs is None else procs)
        self._inflight = max(1, inflight)
        self._handles: list[_WorkerHandle] = []
        self._idle: queue.Queue[_WorkerHandle] = queue.Queue()
        self._spec_blobs: dict[int, bytes] = {}
        self._crashes = 0
        # Pre-built instruments: the dispatch hot path must never pay
        # registry lookup/label work, only a cached-flag test + observe.
        self._dispatch_hist = self._metrics.histogram(
            "repro_dispatch_seconds",
            "full remote compute round trip (queue wait + ship + kernel + reply)",
        )
        self._crash_counter = self._metrics.counter(
            "repro_worker_crashes_total",
            "compute worker processes that died mid-dispatch and were replaced",
        )

    @property
    def worker_crashes(self) -> int:
        """Worker processes that died mid-dispatch (and were replaced)."""
        return self._crashes

    # -- pool lifecycle -----------------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        # Start the pool while the calling thread is the only live thread:
        # forking after the scheduler threads exist risks inheriting locks
        # (import lock, allocator locks) mid-acquisition.
        self._ensure_pool()
        try:
            return super().execute(root)
        finally:
            self._shutdown_pool()

    def _ensure_pool(self) -> None:
        if self._handles:
            return
        with self._pool_lock:
            if self._handles:
                return
            handles = [self._start_worker() for _ in range(self._procs)]
            self._handles = handles
            for h in handles:
                for _ in range(self._inflight):
                    self._idle.put(h)

    def _start_worker(self) -> _WorkerHandle:
        parent_comm, child_comm = pipe_pair(self._mp)
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_comm.connection,),
            daemon=True,
            name="repro-compute",
        )
        proc.start()
        child_comm.close()
        return _WorkerHandle(proc, parent_comm)

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            handles, self._handles = self._handles, []
            try:
                while True:
                    self._idle.get_nowait()
            except queue.Empty:
                pass
        for h in handles:
            try:
                h.conn.send(("stop",))
            except CommClosedError:
                pass
        for h in handles:
            h.proc.join(timeout=5.0)
            if h.proc.is_alive():  # pragma: no cover - stuck worker
                h.proc.terminate()
                h.proc.join(timeout=1.0)
            h.conn.close()

    # -- the dispatch seam ---------------------------------------------------

    def compute_dispatch(self, spec: Any, key: Hashable, ctx: Any, life: int = 0) -> None:
        """Run ``spec.compute(key, ...)`` in a worker process.

        Called by the schedulers in place of a direct ``spec.compute``;
        raises the same :class:`~repro.exceptions.FaultError` family a
        local compute would, plus :class:`WorkerCrashError` when the
        worker process dies mid-task.  ``life`` is the incarnation being
        computed -- it only attributes telemetry (SPAN events), never
        scheduling decisions.
        """
        obs = self._log is not NULL_LOG
        mx = self._mx
        t0 = self._log.now() if obs else (time.perf_counter() if mx else 0.0)
        store = ctx.store
        describe = getattr(store, "descriptor", None)
        staged = []
        for raw in spec.inputs(key):
            ref = raw if type(raw) is BlockRef else BlockRef(*raw)
            # The parent-side read is the fault gate: corruption flags,
            # checksum mismatches, and evictions raise here, inside the
            # scheduler's recovery path, before any bytes ship.
            value = ctx.read(ref)
            desc = describe(ref) if describe is not None else None
            staged.append((ref.block, ref.version, desc, value))
        die = False
        if self._die_on:
            with self._die_lock:
                if key in self._die_on:
                    self._die_on.discard(key)
                    die = True

        def build_msg(jid: int, handle: _WorkerHandle) -> tuple:
            # Runs under handle.lock: the pin-or-descriptor decision is
            # atomic with outbox order, so a full descriptor always
            # reaches the worker before any PinnedRef naming it.
            inputs = []
            for block, version, desc, value in staged:
                if desc is None:
                    payload: Any = value
                elif desc.name in handle.pinned:
                    payload = PinnedRef(desc.name)
                else:
                    handle.pinned.add(desc.name)
                    payload = desc
                inputs.append((block, version, payload))
            return (jid, key, inputs, die)

        reply, queued = self._dispatch_job(spec, key, build_msg, die, life)
        blob, spans = self._reply_result(reply)
        # OOB replies arrive pre-decoded as frame.Encoded (result arrays
        # are views over the transport buffer); a plain bytes blob is the
        # legacy shape, kept for raw-protocol clients.
        written = blob.load() if isinstance(blob, frame.Encoded) else pickle.loads(blob)
        if obs:
            log = self._log
            end = log.now()
            # Worker-measured phases (durations only; foreign clock) ...
            log.emit(EventKind.SPAN, key, life, phase="attach",
                     wall=spans.get("attach", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="kernel",
                     wall=spans.get("kernel", 0.0), cpu=spans.get("kernel_cpu", 0.0))
            log.emit(EventKind.SPAN, key, life, phase="serialize",
                     wall=spans.get("serialize", 0.0))
            # ... the parent-estimated time this job sat behind its
            # channel-mates (pipelining backlog, not dispatch cost) ...
            if queued > 0.0:
                log.emit(EventKind.SPAN, key, life, phase="queued", wall=queued)
            # ... and the parent-measured full round trip on the log clock.
            log.emit(EventKind.SPAN, key, life, phase="dispatch", wall=end - t0, t0=t0)
        if mx:
            self._dispatch_hist.observe(
                (self._log.now() if obs else time.perf_counter()) - t0
            )
        for reftup, value in written:
            ctx.write(BlockRef(*reftup), value)

    def _spec_blob(self, spec: Any) -> bytes:
        blob = self._spec_blobs.get(id(spec))
        if blob is None:
            blob = pickle.dumps(spec)
            self._spec_blobs[id(spec)] = blob
        return blob

    # -- PipelinedDispatchMixin hooks -----------------------------------------

    def _channel_comm(self, handle: _WorkerHandle) -> PipeComm:
        return handle.conn

    def _ship_spec(self, handle: _WorkerHandle, spec: Any) -> None:
        handle.conn.send(("spec", self._spec_blob(spec)))

    def _ship_jobs(self, handle: _WorkerHandle, msgs: list[tuple]) -> None:
        # The batch rides one OOB message: inline small-block values in
        # the job tuples ship as scattered buffer segments instead of
        # being pickled into an intermediate packed-frames blob.
        handle.conn.send_oob(("jobs", msgs))

    def _silent_reason(self, handle: _WorkerHandle) -> str | None:
        return None if handle.proc.is_alive() else "died"

    def _route_aux(self, handle: _WorkerHandle, msg: tuple) -> None:
        # Workers send nothing but per-job replies; anything else is
        # dropped (a late echo from a dying process, never actionable).
        return None

    def _replace_channel(
        self, dead: _WorkerHandle, reason: str, down_key: Hashable | None
    ) -> _WorkerHandle:
        # Reap the corpse outside the pool lock: join() can wait its full
        # timeout on a wedged child, and every other dispatch thread that
        # loses a worker meanwhile would pile up behind the lock.
        dead.conn.close()
        dead.proc.join(timeout=1.0)
        dead.death = (dead.proc.pid, dead.proc.exitcode)
        with self._pool_lock:
            try:
                self._handles.remove(dead)
            except ValueError:
                pass
            self._crashes += 1
            fresh = self._start_worker()
            self._handles.append(fresh)
        if self._log is not NULL_LOG:
            self._log.emit(
                EventKind.WORKER_DOWN,
                down_key,
                0,
                pid=dead.proc.pid,
                exitcode=dead.proc.exitcode,
            )
            self._log.emit(EventKind.WORKER_UP, None, 0, pid=fresh.proc.pid)
        if self._mx:
            self._crash_counter.inc()
        return fresh

    def _crashed_error(self, key: Hashable, handle: _WorkerHandle) -> WorkerCrashError:
        pid, exitcode = handle.death if handle.death else (handle.proc.pid, None)
        return WorkerCrashError(key, pid=pid, exitcode=exitcode)
