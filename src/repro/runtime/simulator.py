"""Deterministic discrete-event simulation of randomized work stealing.

This runtime is the reproduction's substitute for the paper's 48-core
Cilk++ testbed.  It executes frames *for real* (all side effects happen in
process) but schedules them among ``P`` virtual workers in virtual time:

* each worker owns a deque; spawns are *published* to the bottom of the
  spawning worker's deque at the spawning frame's completion time; owners
  pop bottom (LIFO), thieves steal top (FIFO);
* the worker with the smallest clock acts next, and a thief may only take
  a frame whose publication time has passed -- so in the virtual timeline
  no frame ever starts before the frame that spawned it completed.  Since
  the scheduler publishes a task's ``Computed`` status and successor
  notifications from a frame spawned *after* the compute frame (see
  ``repro.core``), data dependences are respected in virtual time;
* an idle worker probes uniformly random victims.  Runs of failed probes
  are batched by sampling the attempt count from the matching geometric
  distribution (capped at the next scheduled event so cross-worker state
  stays fresh).  A worker with nothing to steal *parks*; each publication
  wakes up to as many parked workers as frames were published, at the
  publication time -- modelling thieves that were spinning until work
  appeared, without simulating every probe.

Costs come from a :class:`~repro.runtime.costmodel.CostModel`; frames
accumulate additional charges (task compute cost, lock/atomic overheads)
through :meth:`SimulatedRuntime.charge` while they run.

Determinism: given the same seed, frame set, and charges, the simulation
is bit-for-bit reproducible -- the property the figure harness relies on
for error bars driven purely by seeds.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from typing import Callable

from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.runtime.api import RunResult
from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame

_INF = float("inf")


class SimulatedRuntime:
    """Virtual-time work-stealing executor over ``P`` simulated workers.

    The driver loop is the single hottest function in the repo (every
    figure-harness point executes it millions of times), so it is written
    in deliberately flat style: hot globals and attributes bound to
    locals, cost-model fields hoisted out of the loop, the spawn buffer
    reused across frames, and a heap fast path that keeps a worker
    running its own deque without a push+pop round-trip whenever it
    strictly precedes every other scheduled event (strict inequality
    preserves tie-breaking, so results stay bit-for-bit identical).
    """

    STEAL_POLICIES = ("random", "round_robin", "richest")

    #: Virtual concurrency only -- frames execute serially in the driver
    #: thread, so schedulers may unlock trace bumps (``assume_serial``).
    concurrent_frames = False

    __slots__ = (
        "_workers",
        "cost_model",
        "seed",
        "record_timeline",
        "steal_policy",
        "timeline",
        "_log",
        "_running",
        "_accum",
        "_spawn_buffer",
        "_spawn_cost",
        "_pending",
        "_current_worker",
        "_frame_start",
    )

    def __init__(
        self,
        workers: int = 1,
        cost_model: CostModel | None = None,
        seed: int = 0,
        record_timeline: bool = False,
        steal_policy: str = "random",
        event_log: EventLog | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if steal_policy not in self.STEAL_POLICIES:
            raise ValueError(
                f"unknown steal policy {steal_policy!r}; expected one of "
                f"{self.STEAL_POLICIES}"
            )
        self._workers = workers
        self.cost_model = cost_model or CostModel()
        self.seed = seed
        self.record_timeline = record_timeline
        self.steal_policy = steal_policy
        """Victim selection: ``random`` (uniform probing -- the ABP
        protocol NABBIT's bounds assume), ``round_robin`` (deterministic
        scan from the thief's id), or ``richest`` (an omniscient
        longest-deque oracle -- an upper-bound comparator, not
        implementable on real hardware without global state)."""
        self.timeline: list[tuple[float, float, int, str]] = []
        self._log = event_log if event_log is not None else NULL_LOG
        self._running = False
        self._accum = 0.0
        self._spawn_buffer: list[tuple] = []  # (fn, base_cost, label)
        self._spawn_cost = self.cost_model.spawn_cost
        self._pending = 0
        self._current_worker = 0
        self._frame_start = 0.0

    @property
    def workers(self) -> int:
        return self._workers

    # -- observability surface ------------------------------------------------------

    def obs_now(self) -> float:
        """Virtual time inside the currently executing frame: the frame's
        start instant plus the charges it has accumulated so far."""
        return self._frame_start + self._accum

    def obs_worker(self) -> int:
        """Virtual worker the current frame is attributed to."""
        return self._current_worker

    # -- schedule decision points --------------------------------------------------

    def _choose_victim(self, rng: random.Random, stealable: list[int]) -> int:
        """Index into ``stealable`` of the victim a random-policy steal
        takes.  This is the simulator's one genuinely free interleaving
        choice (owners always pop their own bottom), so it is factored out
        as an overridable decision point: ``repro.verify.explore`` derives
        a runtime that enumerates alternatives here to explore the
        schedule space systematically."""
        return rng.randrange(len(stealable))

    # -- ExecutionContext surface (valid only while a frame runs) -----------------

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        if not self._running:
            raise RuntimeError("spawn called outside execute()")
        # Frames live as bare (fn, base_cost, label) tuples inside the
        # simulator: tuple packing is a single C-level op, while a Frame
        # __init__ is a Python call -- measurable at millions of spawns.
        self._spawn_buffer.append((fn, base_cost, label))
        self._accum += self._spawn_cost

    def charge(self, amount: float) -> None:
        self._accum += amount

    # -- driver --------------------------------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        if self._running:
            raise RuntimeError("SimulatedRuntime is not reentrant")
        self._running = True
        try:
            return self._run(root)
        finally:
            self._running = False

    def _run(self, root: Frame) -> RunResult:
        cm = self.cost_model
        P = self._workers
        log = self._log
        obs = log.enabled
        log.bind_runtime(self)
        rng = random.Random(self.seed)
        # Hot bindings: every name the per-frame path touches is a local.
        heappush = heapq.heappush
        heappop = heapq.heappop
        frame_overhead = cm.frame_overhead
        steal_cost = cm.steal_cost
        failed_steal_cost = cm.failed_steal_cost
        self._spawn_cost = cm.spawn_cost
        policy = self.steal_policy
        policy_rr = policy == "round_robin"
        policy_rich = policy == "richest"
        rec_tl = self.record_timeline
        # Deques hold (publication_time, (fn, base_cost, label)); publication times within a
        # deque are nondecreasing because the owner pushes at successive
        # frame-completion instants.
        deques: list[deque[tuple[float, tuple]]] = [deque() for _ in range(P)]
        deques[0].append((0.0, (root.fn, root.base_cost, root.label)))
        self._pending = 1
        clocks = [0.0] * P
        busy = [0.0] * P
        heap: list[tuple[float, int, int]] = [(0.0, w, w) for w in range(P)]
        seq = P
        parked: list[int] = []  # kept sorted for deterministic sampling
        makespan = 0.0
        frames = 0
        steals = 0
        failed_steals = 0
        parks = 0
        worker_frames = [0] * P
        worker_steals = [0] * P
        self.timeline = []
        timeline = self.timeline
        buf = self._spawn_buffer
        buf.clear()  # a frame that raised on a previous run may have left spawns

        def wake(count: int, at: float) -> None:
            nonlocal seq
            for _ in range(min(count, len(parked))):
                i = rng.randrange(len(parked))
                pw = parked.pop(i)
                clocks[pw] = max(clocks[pw], at)
                if obs:
                    log.emit_at(EventKind.UNPARK, max(clocks[pw], at), pw)
                heappush(heap, (clocks[pw], seq, pw))
                seq += 1

        # ``carry`` short-circuits the heappush/heappop round-trip: when the
        # finishing worker still has local work and its completion instant
        # *strictly* precedes every scheduled event, the pop would return the
        # entry just pushed (strictness matters -- on a time tie the earlier
        # pushed entry wins by seq, so ties must go through the heap).  Wake
        # pushes happen at >= end with later seqs and so never outrank the
        # carried worker either; results are bit-for-bit unchanged.
        carry = -1
        while self._pending > 0:
            if carry >= 0:
                w = carry
                now = clocks[w]
                carry = -1
            else:
                if not heap:
                    raise AssertionError("pending frames but every worker parked")
                now, _, w = heappop(heap)
                clocks[w] = now
            frame: tuple | None = None
            start = now
            dq = deques[w]
            if dq:
                _, frame = dq.pop()  # owner: bottom, LIFO
            elif P > 1:
                stealable = []
                min_future = _INF
                for v in range(P):
                    if v == w or not deques[v]:
                        continue
                    avail = deques[v][0][0]
                    if avail <= now:
                        stealable.append(v)
                    elif avail < min_future:
                        min_future = avail
                if not stealable:
                    if min_future is _INF:
                        # Nothing anywhere to run or steal: spin-park until
                        # the next publication wakes us.
                        parked.append(w)
                        parked.sort()
                        parks += 1
                        if obs:
                            log.emit_at(EventKind.PARK, now, w)
                        continue
                    # Work exists but is not yet published for us: spin
                    # until the earliest publication instant.
                    clocks[w] = min_future
                    heappush(heap, (min_future, seq, w))
                    seq += 1
                    continue
                if policy_rr:
                    # Deterministic scan from the thief's id: failed
                    # probes are the empty deques passed over.
                    stealable_set = set(stealable)
                    fails = 0
                    victim = stealable[0]
                    for off in range(1, P):
                        v = (w + off) % P
                        if v == w:
                            continue
                        if v in stealable_set:
                            victim = v
                            break
                        fails += 1
                    failed_steals += fails
                    start = now + fails * failed_steal_cost + steal_cost
                elif policy_rich:
                    # Omniscient oracle: longest stealable deque, one probe.
                    victim = max(stealable, key=lambda v: (len(deques[v]), -v))
                    start = now + steal_cost
                else:
                    # Batch the failed probes preceding a successful steal:
                    # attempts ~ Geometric(p), capped at the next event so
                    # the snapshot of stealable deques stays fresh.
                    p = len(stealable) / (P - 1)
                    if p >= 1.0:
                        k = 1
                    else:
                        u = rng.random()
                        k = 1 + int(math.log1p(-u) / math.log1p(-p))
                    horizon = heap[0][0] if heap else _INF
                    if horizon < _INF:
                        k_max = max(1, int((horizon - now) / failed_steal_cost) + 1)
                    else:
                        k_max = k
                    if k > k_max:
                        failed_steals += k_max
                        clocks[w] = now + k_max * failed_steal_cost
                        heappush(heap, (clocks[w], seq, w))
                        seq += 1
                        continue
                    failed_steals += k - 1
                    start = now + (k - 1) * failed_steal_cost + steal_cost
                    victim = stealable[self._choose_victim(rng, stealable)]
                _, frame = deques[victim].popleft()  # thief: top, FIFO
                steals += 1
                worker_steals[w] += 1
                dq = deques[w]  # children publish to the thief's own deque
                if obs:
                    log.emit_at(
                        EventKind.STEAL, start, w, victim=victim, depth=len(deques[victim])
                    )
            else:
                raise AssertionError("single worker idle with pending frames")

            # Execute the frame; its spawns are published at completion.
            fn, base_cost, label = frame
            self._accum = base_cost + frame_overhead
            self._current_worker = w
            self._frame_start = start
            fn()
            n_spawned = len(buf)
            acc = self._accum
            end = start + acc
            clocks[w] = end
            busy[w] += acc
            frames += 1
            worker_frames[w] += 1
            self._pending += n_spawned - 1
            if end > makespan:
                makespan = end
            if rec_tl:
                timeline.append((start, end, w, label))
            if n_spawned:
                for child in buf:
                    dq.append((end, child))
                buf.clear()
            if dq and (not heap or end < heap[0][0]):
                carry = w
            else:
                heappush(heap, (end, seq, w))
                seq += 1
            if n_spawned and parked:
                wake(n_spawned, end)

        return RunResult(
            makespan=makespan,
            frames=frames,
            steals=steals,
            failed_steals=failed_steals,
            workers=P,
            busy_time=busy,
            worker_frames=worker_frames,
            worker_steals=worker_steals,
            parks=parks,
        )
