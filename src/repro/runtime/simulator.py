"""Deterministic discrete-event simulation of randomized work stealing.

This runtime is the reproduction's substitute for the paper's 48-core
Cilk++ testbed.  It executes frames *for real* (all side effects happen in
process) but schedules them among ``P`` virtual workers in virtual time:

* each worker owns a deque; spawns are *published* to the bottom of the
  spawning worker's deque at the spawning frame's completion time; owners
  pop bottom (LIFO), thieves steal top (FIFO);
* the worker with the smallest clock acts next, and a thief may only take
  a frame whose publication time has passed -- so in the virtual timeline
  no frame ever starts before the frame that spawned it completed.  Since
  the scheduler publishes a task's ``Computed`` status and successor
  notifications from a frame spawned *after* the compute frame (see
  ``repro.core``), data dependences are respected in virtual time;
* an idle worker probes uniformly random victims.  Runs of failed probes
  are batched by sampling the attempt count from the matching geometric
  distribution (capped at the next scheduled event so cross-worker state
  stays fresh).  A worker with nothing to steal *parks*; each publication
  wakes up to as many parked workers as frames were published, at the
  publication time -- modelling thieves that were spinning until work
  appeared, without simulating every probe.

Costs come from a :class:`~repro.runtime.costmodel.CostModel`; frames
accumulate additional charges (task compute cost, lock/atomic overheads)
through :meth:`SimulatedRuntime.charge` while they run.

Determinism: given the same seed, frame set, and charges, the simulation
is bit-for-bit reproducible -- the property the figure harness relies on
for error bars driven purely by seeds.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from typing import Callable

from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.runtime.api import RunResult
from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame

_INF = float("inf")


class SimulatedRuntime:
    """Virtual-time work-stealing executor over ``P`` simulated workers."""

    STEAL_POLICIES = ("random", "round_robin", "richest")

    def __init__(
        self,
        workers: int = 1,
        cost_model: CostModel | None = None,
        seed: int = 0,
        record_timeline: bool = False,
        steal_policy: str = "random",
        event_log: EventLog | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if steal_policy not in self.STEAL_POLICIES:
            raise ValueError(
                f"unknown steal policy {steal_policy!r}; expected one of "
                f"{self.STEAL_POLICIES}"
            )
        self._workers = workers
        self.cost_model = cost_model or CostModel()
        self.seed = seed
        self.record_timeline = record_timeline
        self.steal_policy = steal_policy
        """Victim selection: ``random`` (uniform probing -- the ABP
        protocol NABBIT's bounds assume), ``round_robin`` (deterministic
        scan from the thief's id), or ``richest`` (an omniscient
        longest-deque oracle -- an upper-bound comparator, not
        implementable on real hardware without global state)."""
        self.timeline: list[tuple[float, float, int, str]] = []
        self._log = event_log if event_log is not None else NULL_LOG
        self._running = False
        self._accum = 0.0
        self._spawn_buffer: list[Frame] = []
        self._pending = 0
        self._current_worker = 0
        self._frame_start = 0.0

    @property
    def workers(self) -> int:
        return self._workers

    # -- observability surface ------------------------------------------------------

    def obs_now(self) -> float:
        """Virtual time inside the currently executing frame: the frame's
        start instant plus the charges it has accumulated so far."""
        return self._frame_start + self._accum

    def obs_worker(self) -> int:
        """Virtual worker the current frame is attributed to."""
        return self._current_worker

    # -- schedule decision points --------------------------------------------------

    def _choose_victim(self, rng: random.Random, stealable: list[int]) -> int:
        """Index into ``stealable`` of the victim a random-policy steal
        takes.  This is the simulator's one genuinely free interleaving
        choice (owners always pop their own bottom), so it is factored out
        as an overridable decision point: ``repro.verify.explore`` derives
        a runtime that enumerates alternatives here to explore the
        schedule space systematically."""
        return rng.randrange(len(stealable))

    # -- ExecutionContext surface (valid only while a frame runs) -----------------

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        if not self._running:
            raise RuntimeError("spawn called outside execute()")
        self._spawn_buffer.append(Frame(fn, base_cost, label))
        self._accum += self.cost_model.spawn_cost

    def charge(self, amount: float) -> None:
        self._accum += amount

    # -- driver --------------------------------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        if self._running:
            raise RuntimeError("SimulatedRuntime is not reentrant")
        self._running = True
        try:
            return self._run(root)
        finally:
            self._running = False

    def _run(self, root: Frame) -> RunResult:
        cm = self.cost_model
        P = self._workers
        log = self._log
        obs = log.enabled
        log.bind_runtime(self)
        rng = random.Random(self.seed)
        # Deques hold (publication_time, Frame); publication times within a
        # deque are nondecreasing because the owner pushes at successive
        # frame-completion instants.
        deques: list[deque[tuple[float, Frame]]] = [deque() for _ in range(P)]
        deques[0].append((0.0, root))
        self._pending = 1
        clocks = [0.0] * P
        busy = [0.0] * P
        heap: list[tuple[float, int, int]] = [(0.0, w, w) for w in range(P)]
        seq = P
        parked: list[int] = []  # kept sorted for deterministic sampling
        makespan = 0.0
        frames = 0
        steals = 0
        failed_steals = 0
        parks = 0
        worker_frames = [0] * P
        worker_steals = [0] * P
        self.timeline = []

        def wake(count: int, at: float) -> None:
            nonlocal seq
            for _ in range(min(count, len(parked))):
                i = rng.randrange(len(parked))
                pw = parked.pop(i)
                clocks[pw] = max(clocks[pw], at)
                if obs:
                    log.emit_at(EventKind.UNPARK, max(clocks[pw], at), pw)
                heapq.heappush(heap, (clocks[pw], seq, pw))
                seq += 1

        while self._pending > 0:
            if not heap:
                raise AssertionError("pending frames but every worker parked")
            now, _, w = heapq.heappop(heap)
            clocks[w] = now
            frame: Frame | None = None
            start = now
            if deques[w]:
                _, frame = deques[w].pop()  # owner: bottom, LIFO
            elif P > 1:
                stealable = []
                min_future = _INF
                for v in range(P):
                    if v == w or not deques[v]:
                        continue
                    avail = deques[v][0][0]
                    if avail <= now:
                        stealable.append(v)
                    elif avail < min_future:
                        min_future = avail
                if not stealable:
                    if min_future is _INF:
                        # Nothing anywhere to run or steal: spin-park until
                        # the next publication wakes us.
                        parked.append(w)
                        parked.sort()
                        parks += 1
                        if obs:
                            log.emit_at(EventKind.PARK, now, w)
                        continue
                    # Work exists but is not yet published for us: spin
                    # until the earliest publication instant.
                    clocks[w] = min_future
                    heapq.heappush(heap, (clocks[w], seq, w))
                    seq += 1
                    continue
                if self.steal_policy == "round_robin":
                    # Deterministic scan from the thief's id: failed
                    # probes are the empty deques passed over.
                    stealable_set = set(stealable)
                    fails = 0
                    victim = stealable[0]
                    for off in range(1, P):
                        v = (w + off) % P
                        if v == w:
                            continue
                        if v in stealable_set:
                            victim = v
                            break
                        fails += 1
                    failed_steals += fails
                    start = now + fails * cm.failed_steal_cost + cm.steal_cost
                elif self.steal_policy == "richest":
                    # Omniscient oracle: longest stealable deque, one probe.
                    victim = max(stealable, key=lambda v: (len(deques[v]), -v))
                    start = now + cm.steal_cost
                else:
                    # Batch the failed probes preceding a successful steal:
                    # attempts ~ Geometric(p), capped at the next event so
                    # the snapshot of stealable deques stays fresh.
                    p = len(stealable) / (P - 1)
                    if p >= 1.0:
                        k = 1
                    else:
                        u = rng.random()
                        k = 1 + int(math.log1p(-u) / math.log1p(-p))
                    horizon = heap[0][0] if heap else _INF
                    if horizon < _INF:
                        k_max = max(1, int((horizon - now) / cm.failed_steal_cost) + 1)
                    else:
                        k_max = k
                    if k > k_max:
                        failed_steals += k_max
                        clocks[w] = now + k_max * cm.failed_steal_cost
                        heapq.heappush(heap, (clocks[w], seq, w))
                        seq += 1
                        continue
                    failed_steals += k - 1
                    start = now + (k - 1) * cm.failed_steal_cost + cm.steal_cost
                    victim = stealable[self._choose_victim(rng, stealable)]
                _, frame = deques[victim].popleft()  # thief: top, FIFO
                steals += 1
                worker_steals[w] += 1
                if obs:
                    log.emit_at(
                        EventKind.STEAL, start, w, victim=victim, depth=len(deques[victim])
                    )
            else:
                raise AssertionError("single worker idle with pending frames")

            # Execute the frame; its spawns are published at completion.
            self._accum = frame.base_cost + cm.frame_overhead
            self._spawn_buffer = []
            self._current_worker = w
            self._frame_start = start
            frame.fn()
            spawned = self._spawn_buffer
            self._spawn_buffer = []
            end = start + self._accum
            clocks[w] = end
            busy[w] += self._accum
            frames += 1
            worker_frames[w] += 1
            self._pending += len(spawned) - 1
            if end > makespan:
                makespan = end
            if self.record_timeline:
                self.timeline.append((start, end, w, frame.label))
            for child in spawned:
                deques[w].append((end, child))
            heapq.heappush(heap, (end, seq, w))
            seq += 1
            if spawned and parked:
                wake(len(spawned), end)

        return RunResult(
            makespan=makespan,
            frames=frames,
            steals=steals,
            failed_steals=failed_steals,
            workers=P,
            busy_time=busy,
            worker_frames=worker_frames,
            worker_steals=worker_steals,
            parks=parks,
        )
