"""Real-thread work-stealing executor.

Runs the identical scheduler code on genuine :mod:`threading` workers with
per-worker :class:`~repro.runtime.deque.WorkDeque`\\ s and randomized
stealing.  The GIL serializes the *scheduler bookkeeping* (pure-Python
frame dispatch, map/lock traffic), so bookkeeping-bound graphs see no
multicore speedup here -- though NumPy/BLAS kernels release the GIL
during compute, so kernel-bound graphs can overlap.  This runtime's
primary job is to *stress-test* the fault-tolerant scheduler's
synchronization -- task locks, atomic join-counter protocol, concurrent
recovery races -- under true nondeterministic interleavings; for
GIL-free multicore compute use
:class:`~repro.runtime.procpool.ProcessRuntime` (see
docs/PERFORMANCE.md for choosing between them).  Virtual ``charge``
calls are ignored; ``makespan`` is wall-clock seconds.

Observability: pass ``event_log=EventLog()`` to record steal and
park/unpark events; the runtime also provides worker attribution
(``obs_worker``) and a run-relative wall clock (``obs_now``) to any log
bound to it, and always reports per-worker frame/steal/busy breakdowns
in :class:`~repro.runtime.api.RunResult`.  Pass
``metrics=MetricsRegistry()`` for *live* telemetry: the runtime
registers pull-based gauges (per-worker busy time and frame counts,
queue depths, outstanding frames) that a
:class:`~repro.obs.live.MetricsCollector` or the ``/metrics`` endpoint
samples while the run is in flight.

Exceptions escaping a frame are scheduler bugs (detected faults are caught
inside the scheduler): the pool shuts down and re-raises the first one.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro.obs.events import NULL_LOG, EventKind, EventLog
from repro.obs.live import NULL_METRICS, MetricsRegistry
from repro.runtime.api import RunResult
from repro.runtime.deque import WorkDeque
from repro.runtime.frames import Frame

#: Idle-sleep bounds: a worker that finds nothing to run or steal sleeps
#: ``_PARK_MIN_SECONDS`` on the first miss and doubles the sleep on every
#: consecutive miss up to ``_PARK_MAX_SECONDS`` (capped exponential
#: backoff).  Short first sleeps keep steal latency low when work is about
#: to appear; the cap keeps long-idle workers from hammering the GIL and
#: the deque locks with futile probes.  The backoff resets the moment a
#: frame is found, and one idle episode still emits exactly one PARK and
#: (when work reappears) one UNPARK regardless of how many sleeps it took.
_PARK_MIN_SECONDS = 20e-6
_PARK_MAX_SECONDS = 1e-3


class ThreadedRuntime:
    """Work-stealing thread pool executing frames to quiescence."""

    #: Frames genuinely race: trace counters must stay lock-protected.
    concurrent_frames = True

    def __init__(
        self,
        workers: int = 4,
        seed: int | None = None,
        event_log: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self._workers = workers
        self._seed = seed
        self._log = event_log if event_log is not None else NULL_LOG
        self._metrics = metrics if metrics is not None else NULL_METRICS
        #: Cached publication guard (the metrics twin of the schedulers'
        #: ``_obs``): hot paths test this bool, never the registry.
        self._mx = self._metrics is not NULL_METRICS
        self._live_busy: list[float] = []
        self._live_frames: list[int] = []
        self._local = threading.local()
        self._deques: list[WorkDeque[Frame]] = []
        self._outstanding = 0
        self._count_lock = threading.Lock()
        self._failure: BaseException | None = None
        self._failure_lock = threading.Lock()
        self._stop = threading.Event()
        self._running = False
        self._steals = 0
        self._frames = 0
        self._parks = 0
        self._worker_frames: list[int] = []
        self._worker_steals: list[int] = []
        self._worker_busy: list[float] = []
        # Anchor the observability clock at construction: the scheduler may
        # emit events (e.g. task_created for the sink) before execute()
        # starts, and per-worker timestamps must stay monotonic across that
        # boundary.
        self._t0 = time.perf_counter()

    @property
    def workers(self) -> int:
        return self._workers

    # -- observability surface ------------------------------------------------------

    def obs_now(self) -> float:
        """Wall-clock seconds since the runtime was created."""
        return time.perf_counter() - self._t0

    def obs_worker(self) -> int:
        """Id of the worker the calling thread belongs to (0 outside)."""
        wid = getattr(self._local, "wid", None)
        return 0 if wid is None else wid

    # -- ExecutionContext surface ---------------------------------------------------

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        wid = getattr(self._local, "wid", None)
        if wid is None:
            raise RuntimeError("spawn called from outside a worker thread")
        with self._count_lock:
            self._outstanding += 1
        self._deques[wid].push_bottom(Frame(fn, base_cost, label))

    def charge(self, amount: float) -> None:
        """Virtual cost is meaningless on the wall clock; ignored."""

    def aborted(self) -> bool:
        """True once the run is tearing down after a scheduler failure.

        Set only on the worker-exception path (a scheduler bug, never a
        recovered task fault).  The pipelined dispatch path polls this so
        threads blocked waiting for a worker channel or a remote reply
        unwind instead of waiting out their full timeouts.
        """
        return self._stop.is_set()

    # -- driver ----------------------------------------------------------------------

    def execute(self, root: Frame) -> RunResult:
        if self._running:
            raise RuntimeError("ThreadedRuntime is not reentrant")
        self._running = True
        self._log.bind_runtime(self)
        self._deques = [WorkDeque() for _ in range(self._workers)]
        self._outstanding = 1
        self._failure = None
        self._stop.clear()
        self._steals = 0
        self._frames = 0
        self._parks = 0
        self._worker_frames = [0] * self._workers
        self._worker_steals = [0] * self._workers
        self._worker_busy = [0.0] * self._workers
        self._live_busy = [0.0] * self._workers
        self._live_frames = [0] * self._workers
        if self._mx:
            self._register_live_gauges()
        self._deques[0].push_bottom(root)
        started = time.perf_counter()
        threads = [
            threading.Thread(target=self._worker, args=(w,), name=f"repro-worker-{w}", daemon=True)
            for w in range(self._workers)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            self._running = False
        if self._failure is not None:
            raise self._failure
        makespan = time.perf_counter() - started
        obs = self._log is not NULL_LOG
        if obs:
            # The run's budget window on the log clock: attribution
            # measures each worker's thread start/stop latency as the gap
            # between this span and its worker_loop span.
            self._log.emit(EventKind.SPAN, phase="run", wall=makespan,
                           t0=started - self._t0)
        return RunResult(
            makespan=makespan,
            frames=self._frames,
            steals=self._steals,
            workers=self._workers,
            busy_time=list(self._worker_busy),
            worker_frames=list(self._worker_frames),
            worker_steals=list(self._worker_steals),
            parks=self._parks,
        )

    def _register_live_gauges(self) -> None:
        """Publish pull-based gauges for state the run already maintains.

        Everything here is a :class:`~repro.obs.live.CallbackGauge` read
        only when the collector (or a scrape) samples it -- the worker
        loop is never taxed for a value somebody else can read.
        """
        mxr = self._metrics
        mxr.gauge("repro_workers", "configured pool width").set(self._workers)
        mxr.callback_gauge(
            "repro_outstanding_frames",
            lambda: self._outstanding,
            "frames spawned but not yet executed",
        )
        mxr.callback_gauge(
            "repro_run_elapsed_seconds",
            self.obs_now,
            "wall-clock seconds since the runtime was created",
        )
        for w in range(self._workers):
            mxr.callback_gauge(
                "repro_worker_busy_seconds",
                lambda w=w: self._live_busy[w],
                "cumulative frame-execution wall time per worker",
                worker=w,
            )
            mxr.callback_gauge(
                "repro_worker_frames",
                lambda w=w: self._live_frames[w],
                "frames executed per worker",
                worker=w,
            )
            mxr.callback_gauge(
                "repro_queue_depth",
                lambda w=w: len(self._deques[w]),
                "work-deque depth per worker",
                worker=w,
            )

    def _worker(self, wid: int) -> None:
        self._local.wid = wid
        rng = random.Random(None if self._seed is None else self._seed * 0x9E3779B1 + wid)
        my = self._deques[wid]
        log = self._log
        obs = log.enabled
        mx = self._mx
        live_busy = self._live_busy
        live_frames = self._live_frames
        local_frames = 0
        local_steals = 0
        local_parks = 0
        local_busy = 0.0
        idle = False
        park_delay = _PARK_MIN_SECONDS
        # Worker-loop span: everything between here and loop exit is the
        # worker either running frames (busy), parked, or *finding work*
        # (pop/steal probes, count checks, GIL waits between frames).
        # Attribution subtracts busy + parked from this span to measure
        # that third, otherwise-invisible cost.
        t_loop0 = log.now() if obs else 0.0
        try:
            while not self._stop.is_set():
                frame = my.pop_bottom()
                if frame is None and self._workers > 1:
                    victim = rng.randrange(self._workers)
                    if victim != wid:
                        vdeque = self._deques[victim]
                        frame = vdeque.steal_top()
                        if frame is not None:
                            local_steals += 1
                            if obs:
                                log.emit(EventKind.STEAL, victim=victim, depth=len(vdeque))
                if frame is None:
                    with self._count_lock:
                        if self._outstanding == 0:
                            break
                    if not idle:
                        idle = True
                        local_parks += 1
                        if obs:
                            log.emit(EventKind.PARK)
                    time.sleep(park_delay)
                    park_delay = min(park_delay * 2.0, _PARK_MAX_SECONDS)
                    continue
                if idle:
                    idle = False
                    if obs:
                        log.emit(EventKind.UNPARK)
                park_delay = _PARK_MIN_SECONDS
                started = time.perf_counter()
                try:
                    frame.fn()
                finally:
                    local_busy += time.perf_counter() - started
                    local_frames += 1
                    if mx:
                        # Single writer per index; a GIL-atomic list store
                        # is the whole cost of live per-worker telemetry.
                        live_busy[wid] = local_busy
                        live_frames[wid] = local_frames
                    with self._count_lock:
                        self._outstanding -= 1
                        done = self._outstanding == 0
                    if done:
                        pass  # other workers observe outstanding == 0 and exit
        except BaseException as exc:  # scheduler bug: fail the whole run
            with self._failure_lock:
                if self._failure is None:
                    self._failure = exc
            self._stop.set()
        finally:
            if obs:
                log.emit(EventKind.SPAN, phase="worker_loop",
                         wall=log.now() - t_loop0, t0=t_loop0)
            with self._count_lock:
                self._frames += local_frames
                self._steals += local_steals
                self._parks += local_parks
                self._worker_frames[wid] = local_frames
                self._worker_steals[wid] = local_steals
                self._worker_busy[wid] = local_busy
