"""Execution tracing: the N(A) accounting the paper's analysis is built on.

Section V's bounds are *a posteriori*: they depend on how many times each
task actually executed.  :class:`ExecutionTrace` records exactly that --
per-key compute counts -- plus the recovery-path event counters used by
the experiment harness (recoveries initiated, duplicate-recovery
suppressions, node resets, notify-array reconstructions) and by the
injection-verification step ("we verify the fault injection by ensuring
that the number of tasks recovered matches the loss of work intended").

Thread-safe: the threaded runtime mutates traces from many workers.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class ExecutionTrace:
    """Counters for one task-graph execution."""

    computes: Counter = field(default_factory=Counter)
    """key -> number of times COMPUTE ran for the task."""

    compute_failures: Counter = field(default_factory=Counter)
    """key -> COMPUTE invocations that raised a detected fault."""

    recoveries: Counter = field(default_factory=Counter)
    """key -> recoveries performed (REPLACETASK incarnations beyond the first)."""

    recovery_skips: int = 0
    """RECOVERTASKONCE calls suppressed because the incarnation was already
    being recovered (Guarantee 1 at work)."""

    resets: int = 0
    """RESETNODE invocations (consumer saw a faulty input during compute)."""

    notify_reinits: int = 0
    """Successors re-enqueued by REINITNOTIFYENTRY during recoveries."""

    reinit_scans: int = 0
    """Successor records examined while rebuilding notify arrays (the
    REINITNOTIFYENTRY scan cost: proportional to out-degree)."""

    notifications: int = 0
    """Join-counter decrements performed (successful bit unsets)."""

    stale_notifications: int = 0
    """Notifications dropped because the bit was already clear."""

    stale_frames: int = 0
    """Frames abandoned because their incarnation had been replaced
    (life-number mismatch against the task map)."""

    faults_observed: int = 0
    """Detected-fault exceptions caught by scheduler catch blocks."""

    faults_injected: int = 0
    """Fault events actually fired by the injector."""

    sdc_injected: int = 0
    """Silent corruptions injected (block payloads mutated, no flag set)."""

    sdc_detected: int = 0
    """Silent corruptions surfaced by a detector (checksum or replication)
    and handed to the ordinary detected-fault recovery path."""

    sdc_escaped: int = 0
    """Injected silent corruptions never caught by any detector (post-run
    accounting; the result may be wrong)."""

    replica_runs: int = 0
    """Detector-issued duplicate executions (replication overhead)."""

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    _serial: bool = field(default=False, repr=False)
    """True when the bound runtime executes frames on a single thread
    (``concurrent_frames = False``): counter bumps skip the lock."""

    #: The scalar counters ``bump`` may touch.  A typo'd name must fail
    #: loudly instead of silently creating a new attribute that no report
    #: ever reads.
    SCALAR_COUNTERS = frozenset(
        {
            "recovery_skips",
            "resets",
            "notify_reinits",
            "reinit_scans",
            "notifications",
            "stale_notifications",
            "stale_frames",
            "faults_observed",
            "faults_injected",
            "sdc_injected",
            "sdc_detected",
            "sdc_escaped",
            "replica_runs",
        }
    )

    # -- mutation (scheduler side) -------------------------------------------------

    def assume_serial(self) -> None:
        """Declare that all future bumps come from one thread at a time.

        Called by schedulers whose runtime advertises
        ``concurrent_frames = False`` (inline, simulated): frames run
        serially in the driver thread, so the per-bump lock round-trip is
        pure overhead on the hottest scheduler paths."""
        self._serial = True

    def assume_concurrent(self) -> None:
        """Re-arm the lock (a threaded runtime is about to mutate)."""
        self._serial = False

    def count_compute(self, key: Hashable) -> None:
        if self._serial:
            self.computes[key] += 1
            return
        with self._lock:
            self.computes[key] += 1

    def count_compute_failure(self, key: Hashable) -> None:
        if self._serial:
            self.compute_failures[key] += 1
            return
        with self._lock:
            self.compute_failures[key] += 1

    def count_recovery(self, key: Hashable) -> None:
        if self._serial:
            self.recoveries[key] += 1
            return
        with self._lock:
            self.recoveries[key] += 1

    def bump(self, field_name: str, amount: int = 1) -> None:
        """Increment a scalar counter by name (validated; see the typed
        ``count_*`` methods for the preferred call style)."""
        if field_name not in self.SCALAR_COUNTERS:
            raise ValueError(
                f"unknown ExecutionTrace counter {field_name!r}; "
                f"expected one of {sorted(self.SCALAR_COUNTERS)}"
            )
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + amount)

    # Typed increments: one per scalar counter, so scheduler call sites
    # are checked at import time rather than string-matched at run time.

    def count_recovery_skip(self) -> None:
        if self._serial:
            self.recovery_skips += 1
            return
        with self._lock:
            self.recovery_skips += 1

    def count_reset(self) -> None:
        if self._serial:
            self.resets += 1
            return
        with self._lock:
            self.resets += 1

    def count_notify_reinit(self) -> None:
        if self._serial:
            self.notify_reinits += 1
            return
        with self._lock:
            self.notify_reinits += 1

    def count_reinit_scan(self, amount: int = 1) -> None:
        if self._serial:
            self.reinit_scans += amount
            return
        with self._lock:
            self.reinit_scans += amount

    def count_notification(self) -> None:
        if self._serial:
            self.notifications += 1
            return
        with self._lock:
            self.notifications += 1

    def count_stale_notification(self) -> None:
        if self._serial:
            self.stale_notifications += 1
            return
        with self._lock:
            self.stale_notifications += 1

    def count_stale_frame(self) -> None:
        if self._serial:
            self.stale_frames += 1
            return
        with self._lock:
            self.stale_frames += 1

    def count_fault_observed(self) -> None:
        if self._serial:
            self.faults_observed += 1
            return
        with self._lock:
            self.faults_observed += 1

    def count_fault_injected(self) -> None:
        if self._serial:
            self.faults_injected += 1
            return
        with self._lock:
            self.faults_injected += 1

    def count_sdc_injected(self) -> None:
        if self._serial:
            self.sdc_injected += 1
            return
        with self._lock:
            self.sdc_injected += 1

    def count_sdc_detected(self) -> None:
        if self._serial:
            self.sdc_detected += 1
            return
        with self._lock:
            self.sdc_detected += 1

    def count_sdc_escaped(self) -> None:
        if self._serial:
            self.sdc_escaped += 1
            return
        with self._lock:
            self.sdc_escaped += 1

    def count_replica_run(self) -> None:
        if self._serial:
            self.replica_runs += 1
            return
        with self._lock:
            self.replica_runs += 1

    # -- analysis (harness side) ---------------------------------------------------

    def executions(self) -> dict[Hashable, int]:
        """The paper's N: key -> execution count (only keys that computed)."""
        return dict(self.computes)

    @property
    def tasks_computed(self) -> int:
        """Distinct tasks whose COMPUTE ran at least once."""
        return len(self.computes)

    @property
    def total_computes(self) -> int:
        return sum(self.computes.values())

    @property
    def reexecutions(self) -> int:
        """Extra COMPUTE invocations beyond one per task -- the paper's
        "number of re-executed tasks" metric (Table II)."""
        return self.total_computes - self.tasks_computed

    @property
    def max_executions(self) -> int:
        """The paper's script-N: max over tasks of N(A)."""
        return max(self.computes.values(), default=0)

    @property
    def total_recoveries(self) -> int:
        return sum(self.recoveries.values())

    def summary(self) -> dict[str, int]:
        return {
            "tasks_computed": self.tasks_computed,
            "total_computes": self.total_computes,
            "reexecutions": self.reexecutions,
            "max_executions": self.max_executions,
            "recoveries": self.total_recoveries,
            "recovery_skips": self.recovery_skips,
            "resets": self.resets,
            "notify_reinits": self.notify_reinits,
            "reinit_scans": self.reinit_scans,
            "notifications": self.notifications,
            "stale_notifications": self.stale_notifications,
            "stale_frames": self.stale_frames,
            "faults_observed": self.faults_observed,
            "faults_injected": self.faults_injected,
            "sdc_injected": self.sdc_injected,
            "sdc_detected": self.sdc_detected,
            "sdc_escaped": self.sdc_escaped,
            "replica_runs": self.replica_runs,
        }
