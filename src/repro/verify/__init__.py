"""Static analysis and protocol verification for the scheduler itself.

The FT scheduler's correctness rests on four machine-checkable paper
guarantees (docs/ALGORITHM.md §§1-4) plus two coding disciplines the
implementation relies on (every ``TaskRecord`` mutation under its lock;
every lock acquisition accounted in the cost model).  Tests exercise
happy paths; this package checks the *rules*:

* :mod:`repro.verify.lint` -- AST lints run over ``src/repro`` itself:
  lock discipline, cost-accounting discipline, raw-threading bans, and
  EventKind <-> replay coverage.
* :mod:`repro.verify.static` -- whole-program static analysis over the
  concurrency-bearing subsystems: lock-order deadlock cycles, blocking
  operations reachable under a held lock, wire-safety of everything
  sent through a :class:`~repro.comm.core.Comm`, message-protocol
  exhaustiveness, and lock/resource leaks on exception paths.
* :mod:`repro.verify.invariants` -- replays a structured event log
  (:mod:`repro.obs`) and asserts Guarantees 1-4 as trace invariants.
* :mod:`repro.verify.explore` -- bounded schedule exploration on the
  discrete-event runtime (seed sweep, priority perturbation, DPOR-lite
  branching at steal points), running the invariant checker on every
  explored schedule; its mutation mode seeds known protocol bugs and
  must catch them.

CLI: ``python -m repro verify [lint|static|invariants|explore] [--selftest]``.
"""

from repro.verify.invariants import INVARIANTS, Violation, check_events
from repro.verify.lint import Finding, run_lint
from repro.verify.explore import ExplorationReport, explore, explore_app, mutation_study
from repro.verify.report import findings_to_json, github_annotations, sort_findings
from repro.verify.static import STATIC_RULES, run_static

__all__ = [
    "INVARIANTS",
    "Violation",
    "check_events",
    "Finding",
    "run_lint",
    "ExplorationReport",
    "explore",
    "explore_app",
    "mutation_study",
    "STATIC_RULES",
    "run_static",
    "findings_to_json",
    "github_annotations",
    "sort_findings",
]
