"""``python -m repro verify`` -- check the scheduler, not just its outputs.

Subcommands:

* ``lint`` -- run the concurrency lints (:mod:`repro.verify.lint`) over
  ``src/repro``; exit 1 on any finding.
* ``static`` -- run the whole-program static analyzer
  (:mod:`repro.verify.static`): lock-order deadlock cycles, blocking
  operations under held locks, wire safety, protocol exhaustiveness,
  lock/resource leaks.  ``--json`` for machine-readable output,
  ``--annotate`` for GitHub Actions annotations, ``--selftest`` for the
  seeded-violation self-conviction suite.
* ``invariants`` -- execute one benchmark under fault injection with
  event tracing and assert Guarantees 1-4 on the trace
  (:mod:`repro.verify.invariants`); or check a recorded ``--jsonl`` dump
  from ``python -m repro trace``.
* ``explore`` -- bounded schedule exploration
  (:mod:`repro.verify.explore`): sweep seeds, worker widths, spawn
  perturbations and DPOR-lite steal branches, checking every schedule's
  trace; ``--mutations`` instead runs the seeded-bug study and exits 1
  unless every mutant is convicted.

``--selftest`` (the CI entry point) runs all three layers end to end:
the lints must pass on the package and each rule must fire on a seeded
violation fixture; the invariant checker must pass every benchmark under
fault injection; and the explorer's mutation mode must detect both
seeded protocol bugs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify.explore import (
    MUTATIONS,
    explore_app,
    make_app_case,
    mutation_study,
)
from repro.verify.invariants import (
    INVARIANTS,
    check_events,
    events_from_jsonl,
    summarize,
)
from repro.verify.lint import ALL_RULES, Module, run_lint
from repro.verify.report import findings_to_json, github_annotations
from repro.verify.static import STATIC_RULES, run_static

_BENCHMARKS = ("lcs", "sw", "fw", "lu", "cholesky")


# ---------------------------------------------------------------------------
# lint


def _cmd_lint(args: argparse.Namespace) -> int:
    root = Path(args.root) if args.root else None
    findings = run_lint(root=root)
    if args.json:
        print(findings_to_json(findings))
        return 1 if findings else 0
    for f in findings:
        print(f)
    rules = ", ".join(r.name for r in ALL_RULES)
    if findings:
        print(f"verify lint: {len(findings)} finding(s) ({rules})")
        return 1
    print(f"verify lint: clean ({rules})")
    return 0


# ---------------------------------------------------------------------------
# static


def _cmd_static(args: argparse.Namespace) -> int:
    if args.selftest:
        from repro.verify.static.seeded import SEEDED, run_selftest

        print(f"verify static selftest ({len(SEEDED)} seeded violations):")
        failures = run_selftest(verbose=True)
        for f in failures:
            print(f"  FAIL: {f}")
        print(f"verify static selftest {'passed' if not failures else 'FAILED'}")
        return 1 if failures else 0
    root = Path(args.root) if args.root else None
    findings = run_static(root=root)
    if args.json:
        print(findings_to_json(findings))
        return 1 if findings else 0
    if args.annotate:
        for line in github_annotations(findings):
            print(line)
    else:
        for f in findings:
            print(f)
    rules = ", ".join(r.name for r in STATIC_RULES)
    if findings:
        print(f"verify static: {len(findings)} finding(s) ({rules})")
        return 1
    print(f"verify static: clean ({rules})")
    return 0


# ---------------------------------------------------------------------------
# invariants


def _check_one_app(app_name: str, phase: str | None, seed: int, workers: int):
    """Run one traced benchmark execution and check its trace.

    Returns ``(violations, n_events)``.
    """
    from repro.verify.explore import Schedule, run_schedule

    case = make_app_case(app_name, fault_phase=phase, fault_count=3)
    app, plan = case(seed)
    outcome = run_schedule(app, Schedule(seed=seed, workers=workers), plan=plan)
    if outcome.error is not None:
        raise RuntimeError(f"{app_name} run failed: {outcome.error}")
    return outcome.violations, outcome.events


def _cmd_invariants(args: argparse.Namespace) -> int:
    if args.jsonl:
        events = events_from_jsonl(args.jsonl)
        # JSONL keys are repr strings: spec-free, non-strict checking.
        violations = check_events(events, spec=None, strict=False, partial=args.partial)
        n_events = len(events)
        label = args.jsonl
    else:
        phase = None if args.phase == "none" else args.phase
        violations, n_events = _check_one_app(args.app, phase, args.seed, args.workers)
        label = f"{args.app} (phase={args.phase}, seed={args.seed}, workers={args.workers})"
    for v in violations:
        print(v)
    counts = {k: n for k, n in summarize(violations).items() if n}
    if violations:
        print(f"verify invariants: {label}: {len(violations)} violation(s) {counts}")
        return 1
    print(f"verify invariants: {label}: clean over {n_events} events "
          f"({len(INVARIANTS)} invariants)")
    return 0


# ---------------------------------------------------------------------------
# explore


def _cmd_explore(args: argparse.Namespace) -> int:
    kwargs = dict(
        seeds=range(args.seeds),
        workers=tuple(int(w) for w in args.workers.split(",")),
        perturbations=args.perturbations,
        branch_budget=args.branch_budget,
    )
    phase = None if args.phase == "none" else args.phase
    if args.mutations:
        case = make_app_case(args.app, fault_phase=phase)
        results = mutation_study(case, **kwargs)
        ok = True
        for r in results.values():
            print(r.describe())
            ok = ok and r.detected
        if not ok:
            print("verify explore: mutation study FAILED -- a seeded bug escaped")
            return 1
        print(f"verify explore: all {len(results)} seeded bugs detected")
        return 0

    report = explore_app(args.app, fault_phase=phase, **kwargs)
    summary = report.summary()
    print(f"explored {summary['schedules']} schedules of {args.app} (phase={args.phase})")
    cov = summary["coverage"]
    for kind in sorted(cov):
        print(f"  exercised {kind:<18} in {cov[kind]:>3} schedule(s)")
    if not report.clean:
        for o in report.counterexamples():
            head = o.error or "; ".join(str(v) for v in o.violations[:3])
            print(f"  COUNTEREXAMPLE {o.schedule}: {head}")
        print(f"verify explore: {report.violations} violation(s), "
              f"{summary['errors']} error(s)")
        return 1
    print("verify explore: every schedule clean")
    return 0


# ---------------------------------------------------------------------------
# selftest

#: rule name -> (fake relpath, source that must trigger exactly that rule).
_SEEDED_VIOLATIONS: dict[str, tuple[str, str]] = {
    # lock-discipline audits the scheduler modules by path, so the seeded
    # source masquerades as one of them.
    "lock-discipline": (
        "core/ft.py",
        "def f(rec, runtime):\n"
        "    runtime.charge(1.0)\n"
        "    rec.join -= 1\n",
    ),
    "charge-discipline": (
        "core/seeded.py",
        "def f(rec):\n"
        "    with rec.lock:\n"
        "        pass\n",
    ),
    "raw-threading": (
        "apps/seeded.py",
        "import threading\n"
        "t = threading.Thread(target=print)\n",
    ),
    "raw-multiprocessing": (
        "core/seeded.py",
        "import multiprocessing\n",
    ),
    "raw-socket": (
        "core/seeded.py",
        "import socket\n",
    ),
    "emit-guard": (
        "core/seeded.py",
        "def f(self, key, life):\n"
        "    self.log.emit(EventKind.NOTIFY, key, life)\n",
    ),
    "eventkind-coverage": (
        "obs/events.py",
        "class EventKind(str, Enum):\n"
        "    PHANTOM = 'phantom'\n",
    ),
}


def _selftest(args: argparse.Namespace) -> int:
    failures = 0
    t0 = time.time()

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if not ok:
            failures += 1
        print(f"  {label:<52} [{'ok' if ok else 'FAIL'}]{' ' + detail if detail else ''}")

    # 1. The package itself passes the lints.
    findings = run_lint()
    check("lint clean on src/repro", not findings,
          f"{len(findings)} finding(s)" if findings else "")

    # 2. Each rule fires on its seeded-violation fixture.
    for rule in ALL_RULES:
        relpath, source = _SEEDED_VIOLATIONS[rule.name]
        modules = [Module.from_source(source, relpath)]
        if rule.name == "eventkind-coverage":
            # The coverage rule needs a replay module to diff against.
            modules.append(Module.from_source("_SCALAR_KINDS = {}\n", "obs/replay.py"))
        seeded = [f for f in run_lint(rules=[rule], modules=modules) if f.rule == rule.name]
        check(f"rule {rule.name} fires on seeded violation", bool(seeded))

    # 3. Guarantees 1-4 hold on every benchmark's fault-injected trace.
    for app_name in _BENCHMARKS:
        violations, n_events = _check_one_app(
            app_name, "before_compute", seed=args.seed, workers=3
        )
        check(f"invariants clean: {app_name} under faults", not violations,
              f"{n_events} events")

    # 4. The explorer convicts both seeded protocol bugs.
    case = make_app_case("lcs", fault_phase="before_compute")
    results = mutation_study(
        case, seeds=range(4), perturbations=1, branch_budget=8
    )
    for name in MUTATIONS:
        r = results[name]
        cx = r.first_counterexample
        detail = ""
        if r.detected and cx is not None:
            detail = (
                "; ".join(sorted({v.invariant for v in cx.violations}))
                or (cx.error or "")[:40]
            )
        check(f"mutation {name} detected", r.detected, detail)

    print(f"verify selftest {'passed' if not failures else 'FAILED'} "
          f"in {time.time() - t0:.1f}s")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# entry point


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro verify",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--selftest", action="store_true",
                    help="run the full verification install check (CI entry point)")
    ap.add_argument("--seed", type=int, default=0, help="base seed for selftest runs")
    sub = ap.add_subparsers(dest="command")

    p_lint = sub.add_parser("lint", help="run the concurrency lints over src/repro")
    p_lint.add_argument("--root", type=str, default=None,
                        help="package root to lint (default: the imported repro package)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings report on stdout")

    p_static = sub.add_parser(
        "static", help="whole-program static analysis (deadlocks, wire safety, ...)")
    p_static.add_argument("--root", type=str, default=None,
                          help="package root to analyze (default: the imported repro package)")
    p_static.add_argument("--json", action="store_true",
                          help="machine-readable findings report on stdout")
    p_static.add_argument("--annotate", action="store_true",
                          help="emit GitHub Actions ::error annotations instead of plain lines")
    p_static.add_argument("--selftest", action="store_true",
                          help="run the seeded-violation self-conviction suite")

    p_inv = sub.add_parser("invariants",
                           help="check Guarantees 1-4 on a traced execution")
    p_inv.add_argument("--app", choices=_BENCHMARKS, default="lcs")
    p_inv.add_argument("--phase", default="before_compute",
                       choices=("before_compute", "after_compute", "after_notify", "none"),
                       help="fault-injection phase ('none' for a fault-free run)")
    p_inv.add_argument("--seed", type=int, default=0)
    p_inv.add_argument("--workers", type=int, default=3)
    p_inv.add_argument("--jsonl", type=str, default=None,
                       help="check a recorded JSONL event dump instead of running")
    p_inv.add_argument("--partial", action="store_true",
                       help="the JSONL dump is a truncated prefix (skip end-of-trace checks)")

    p_exp = sub.add_parser("explore", help="bounded schedule exploration")
    p_exp.add_argument("--app", choices=_BENCHMARKS, default="lcs")
    p_exp.add_argument("--phase", default="before_compute",
                       choices=("before_compute", "after_compute", "after_notify", "none"))
    p_exp.add_argument("--seeds", type=int, default=6, help="steal seeds to sweep")
    p_exp.add_argument("--workers", type=str, default="1,3",
                       help="comma-separated worker widths to sweep")
    p_exp.add_argument("--perturbations", type=int, default=2,
                       help="spawn-order perturbations per (seed, width)")
    p_exp.add_argument("--branch-budget", type=int, default=24,
                       help="extra DPOR-lite branch runs")
    p_exp.add_argument("--mutations", action="store_true",
                       help="run the seeded-bug study instead (exit 1 unless all detected)")

    args = ap.parse_args(argv)
    # Subcommand dispatch first: `verify static --selftest` is the static
    # analyzer's own selftest, not the top-level one.
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "static":
        return _cmd_static(args)
    if args.command == "invariants":
        return _cmd_invariants(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.selftest:
        return _selftest(args)
    ap.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
