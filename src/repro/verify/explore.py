"""Bounded schedule exploration: many schedules, every trace checked.

One fault-injection run exercises one interleaving.  The protocol bugs
worth worrying about -- double join decrements, duplicated recoveries --
live in the *other* interleavings, so this module drives the
discrete-event runtime (:class:`~repro.runtime.simulator.SimulatedRuntime`)
across many schedules of the same workload and runs the trace-invariant
checker (:mod:`repro.verify.invariants`) on every one of them.

Because the simulator executes frames atomically, its schedule space has
exactly two degrees of freedom, and the explorer drives both:

* **which victim a random-policy steal takes** -- the simulator's one
  genuinely free runtime choice, factored out as
  :meth:`SimulatedRuntime._choose_victim`.  :class:`DecisionRuntime`
  overrides it to replay a fixed decision prefix and records the full
  decision *trail*, which makes DPOR-lite branching possible: re-run a
  schedule with one decision flipped and everything before it pinned
  (a lightweight take on dynamic partial-order reduction -- we branch at
  the only points where the partial order can change, without the
  vector-clock machinery of full DPOR);
* **spawn publication order** -- sibling frames published together are
  permuted by a seeded ``perturb`` shuffle, standing in for priority
  perturbation of the deques.

**Mutation mode** is the checker's own test: :data:`MUTATIONS` seeds
known protocol bugs into subclassed schedulers, and
:func:`mutation_study` asserts the explorer convicts them.

* ``double_decrement`` drops the ``try_unset_bit`` CAS gate of NOTIFYONCE
  (Guarantee 3): every notification decrements the join counter, gated or
  not.  Caught whenever a schedule exercises a stale notification -- the
  seed sweep reaches such schedules reliably (duplicate NOTIFY /
  join-conservation violations, or a hung graph from counter underflow).
* ``double_recovery`` disables Guarantee 1's recovery deduplication.
  One honest subtlety, itself a finding of this module: on the
  frame-atomic simulator a fault's observation and its recovery happen
  inside one frame, so a second observer of the *same* incarnation
  cannot exist and the recovery-table CAS alone is unreachable (it
  defends the threaded runtime).  The mutant therefore disables both
  layers of the dedup machinery -- the ``check_and_claim`` gate *and*
  the stale-incarnation gate that shields it -- which is what "recovery
  is not deduplicated" means under frame atomicity.  Caught by
  ``justified-recovery`` (a RECOVERY with no fault evidence for the
  prior life) or by the recovery-budget/hang backstops.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.apps.base import Application
from repro.core.ft import FTScheduler
from repro.core.records import TaskRecord
from repro.exceptions import FaultError, SchedulerError
from repro.faults import FaultInjector, FaultPlan
from repro.obs.events import EventKind, EventLog
from repro.runtime.simulator import SimulatedRuntime
from repro.verify.invariants import Violation, check_events


# ---------------------------------------------------------------------------
# Decision-replay runtime


class DecisionRuntime(SimulatedRuntime):
    """Simulator whose steal-victim choices replay a fixed prefix.

    ``decisions[i]`` forces the ``i``-th victim choice (taken modulo the
    number of stealable victims at that point); once the prefix is
    exhausted the seeded RNG decides, as in the base runtime.  Every
    choice -- forced or free -- is appended to :attr:`trail` as
    ``(alternatives, chosen)``, so a caller can branch: re-run with
    ``decisions = trail_prefix + (other_choice,)``.

    ``perturb`` (when not ``None``) seeds a second RNG that permutes
    sibling spawns inside the publication buffer -- priority
    perturbation orthogonal to victim choice.
    """

    def __init__(
        self,
        *,
        decisions: Sequence[int] = (),
        perturb: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.decisions = tuple(decisions)
        self.trail: list[tuple[int, int]] = []
        self._perturb_rng = random.Random(perturb) if perturb is not None else None

    def _choose_victim(self, rng: random.Random, stealable: list[int]) -> int:
        n = len(stealable)
        i = len(self.trail)
        if i < len(self.decisions):
            choice = self.decisions[i] % n
        else:
            choice = rng.randrange(n)
        self.trail.append((n, choice))
        return choice

    def spawn(self, fn: Callable[[], None], base_cost: float = 0.0, label: str = "") -> None:
        super().spawn(fn, base_cost, label)
        if self._perturb_rng is not None and len(self._spawn_buffer) > 1:
            i = self._perturb_rng.randrange(len(self._spawn_buffer))
            self._spawn_buffer[i], self._spawn_buffer[-1] = (
                self._spawn_buffer[-1],
                self._spawn_buffer[i],
            )


# ---------------------------------------------------------------------------
# Schedules and outcomes


@dataclass(frozen=True)
class Schedule:
    """One point in the schedule space: worker count, steal seed, spawn
    perturbation, and a forced victim-decision prefix.

    The worker count is a *schedule* dimension, not a fixture constant:
    some interleavings only exist at particular widths (a single worker
    drains spawns strictly LIFO, so deferred frames run long after the
    state they captured went stale -- the very window several protocol
    bugs hide in), so the explorer sweeps it like any other choice.
    """

    seed: int
    workers: int = 3
    perturb: int | None = None
    decisions: tuple[int, ...] = ()

    def __str__(self) -> str:
        parts = [f"seed={self.seed}", f"workers={self.workers}"]
        if self.perturb is not None:
            parts.append(f"perturb={self.perturb}")
        if self.decisions:
            parts.append(f"decisions={list(self.decisions)}")
        return f"Schedule({', '.join(parts)})"


@dataclass
class ScheduleOutcome:
    """One schedule's verdict: its invariant violations, any scheduler
    error, and enough trail/coverage data to branch and report."""

    schedule: Schedule
    violations: list[Violation]
    error: str | None
    trail: tuple[tuple[int, int], ...]
    events: int
    kinds: Counter
    verified_result: bool

    @property
    def clean(self) -> bool:
        return not self.violations and self.error is None

    @property
    def suspicious(self) -> bool:
        """A protocol-bug signal: an invariant violation, or the run
        erroring out (the FT scheduler must absorb injected faults)."""
        return not self.clean


@dataclass
class ExplorationReport:
    """Aggregate over every schedule explored for one workload."""

    outcomes: list[ScheduleOutcome] = field(default_factory=list)

    @property
    def schedules_run(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def clean(self) -> bool:
        return all(o.clean for o in self.outcomes)

    def counterexamples(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.suspicious]

    def violation_counts(self) -> dict[str, int]:
        counts: Counter = Counter()
        for o in self.outcomes:
            for v in o.violations:
                counts[v.invariant] += 1
        return dict(counts)

    def coverage(self) -> dict[str, int]:
        """How many schedules exercised each protocol path (event kind).

        An exploration that never reached a RECOVERY or a stale
        notification proved nothing about them; this is the
        "invariant coverage" side of the report.
        """
        hit: Counter = Counter()
        for o in self.outcomes:
            for kind, n in o.kinds.items():
                if n:
                    hit[kind.value] += 1
        return dict(hit)

    def summary(self) -> dict[str, object]:
        return {
            "schedules": self.schedules_run,
            "clean": self.clean,
            "violations": self.violation_counts(),
            "errors": sum(1 for o in self.outcomes if o.error is not None),
            "coverage": self.coverage(),
        }


# ---------------------------------------------------------------------------
# Running one schedule

#: Build a workload for one exploration run: ``make_case(seed)`` returns
#: a fresh :class:`Application` and an optional :class:`FaultPlan`.
CaseFactory = Callable[[int], tuple[Application, "FaultPlan | None"]]


def run_schedule(
    app: Application,
    schedule: Schedule,
    *,
    plan: FaultPlan | None = None,
    scheduler_cls: type[FTScheduler] = FTScheduler,
    max_recoveries: int = 2_000,
    strict: bool = True,
) -> ScheduleOutcome:
    """Execute ``app`` under one schedule and check its trace."""
    store = app.make_store(True)
    log = EventLog()
    runtime = DecisionRuntime(
        workers=schedule.workers,
        seed=schedule.seed,
        perturb=schedule.perturb,
        decisions=schedule.decisions,
    )
    injector = FaultInjector(plan, app, store) if plan is not None else None
    scheduler = scheduler_cls(
        app,
        runtime,
        store=store,
        hooks=injector,
        event_log=log,
        max_recoveries=max_recoveries,
    )
    error: str | None = None
    verified = False
    try:
        scheduler.run()
        app.verify(store)
        verified = True
    except (SchedulerError, FaultError, AssertionError, ValueError) as exc:
        error = f"{type(exc).__name__}: {exc}"
    violations = check_events(
        log.events, spec=app, strict=strict, partial=error is not None
    )
    kinds: Counter = Counter(e.kind for e in log.events)
    return ScheduleOutcome(
        schedule=schedule,
        violations=violations,
        error=error,
        trail=tuple(runtime.trail),
        events=len(log.events),
        kinds=kinds,
        verified_result=verified,
    )


# ---------------------------------------------------------------------------
# The explorer


def explore(
    make_case: CaseFactory,
    *,
    seeds: Iterable[int] = range(8),
    workers: Iterable[int] = (1, 3),
    perturbations: int = 2,
    branch_budget: int = 24,
    scheduler_cls: type[FTScheduler] = FTScheduler,
    max_recoveries: int = 2_000,
    strict: bool = True,
) -> ExplorationReport:
    """Sweep the schedule space of one workload, checking every trace.

    Three stages, cheapest first:

    1. *seed x width sweep*: one schedule per (steal seed, worker count);
    2. *perturbation*: each swept schedule re-run with ``perturbations``
       distinct spawn-order shuffles;
    3. *DPOR-lite branching*: starting from the swept schedules' decision
       trails, re-run with one victim choice flipped and the prefix
       pinned, depth-first up to ``branch_budget`` extra runs.  Branches
       are taken off suspicious outcomes first, so a found violation is
       refined toward its shortest divergence.
    """
    report = ExplorationReport()
    seen: set[Schedule] = set()

    def run(schedule: Schedule) -> ScheduleOutcome | None:
        if schedule in seen:
            return None
        seen.add(schedule)
        app, plan = make_case(schedule.seed)
        outcome = run_schedule(
            app,
            schedule,
            plan=plan,
            scheduler_cls=scheduler_cls,
            max_recoveries=max_recoveries,
            strict=strict,
        )
        report.outcomes.append(outcome)
        return outcome

    widths = tuple(workers)
    base: list[ScheduleOutcome] = []
    for seed in seeds:
        for w in widths:
            out = run(Schedule(seed=seed, workers=w))
            if out is not None:
                base.append(out)
            for p in range(perturbations):
                run(Schedule(seed=seed, workers=w, perturb=p))

    # DPOR-lite: branch alternative victim choices off the recorded
    # trails.  Suspicious outcomes branch first; ties prefer shorter
    # prefixes (closer to the root of the schedule tree).
    frontier: list[tuple[tuple[int, int], Schedule]] = []

    def push_branches(outcome: ScheduleOutcome) -> None:
        start = len(outcome.schedule.decisions)
        prefix = [c for _, c in outcome.trail]
        for i in range(start, len(outcome.trail)):
            n, chosen = outcome.trail[i]
            for alt in range(n):
                if alt != chosen:
                    sched = Schedule(
                        seed=outcome.schedule.seed,
                        workers=outcome.schedule.workers,
                        perturb=outcome.schedule.perturb,
                        decisions=tuple(prefix[:i]) + (alt,),
                    )
                    rank = (0 if outcome.suspicious else 1, len(sched.decisions))
                    frontier.append((rank, sched))

    for outcome in sorted(base, key=lambda o: (o.clean, len(o.trail))):
        push_branches(outcome)

    budget = branch_budget
    while frontier and budget > 0:
        frontier.sort(key=lambda item: item[0])
        _, schedule = frontier.pop(0)
        outcome = run(schedule)
        if outcome is None:
            continue
        budget -= 1
        push_branches(outcome)

    return report


# ---------------------------------------------------------------------------
# Mutation mode: seeded protocol bugs the explorer must convict


class DoubleDecrementScheduler(FTScheduler):
    """Seeded bug: NOTIFYONCE without the Guarantee-3 CAS gate.

    Every notification decrements the join counter whether or not the
    predecessor's bit was still set, so a task notified through both the
    direct path and a notify array -- or across a recovery -- double
    decrements and computes early (or underflows and hangs).
    """

    name = "ft-mutant-double-decrement"

    def _notify_once(self, A: TaskRecord, key, pkey, life: int) -> None:
        try:
            A.check()
            self.spec.pred_index(key, pkey)
            self.runtime.charge(self.cost_model.atomic_cost + self.cost_model.ft_notify_cost)
            with A.lock:
                A.join -= 1  # BUG: no try_unset_bit gate
                val = A.join
            self.trace.count_notification()
            if self._obs:
                self.log.emit(EventKind.NOTIFY, key, life, src=pkey)
            if val == 0:
                self._compute_and_notify(A, key, life)
        except FaultError as exc:
            self.trace.count_fault_observed()
            if self._obs:
                self.log.emit(EventKind.FAULT_OBSERVED, key, life, exc=type(exc).__name__)
            self._recover_task_once(key, life)


class DoubleRecoveryScheduler(FTScheduler):
    """Seeded bug: Guarantee-1 recovery deduplication disabled.

    ``_recover_task_once`` ignores the recovery table's CAS verdict, and
    the stale-incarnation gate that masks the CAS under frame atomicity
    is disabled with it (see the module docstring).  Any observation of
    a fault -- including one from a frame belonging to a long-replaced
    incarnation -- triggers a full recovery of the current incarnation.
    """

    name = "ft-mutant-double-recovery"

    def _recover_task_once(self, key, life: int) -> None:
        self.runtime.charge(self.cost_model.recovery_table_cost)
        self.recovery_table.check_and_claim(key, life)  # BUG: verdict ignored
        self._recover_task(key)

    def _stale(self, A: TaskRecord, key, life: int) -> bool:
        return False  # BUG: dead incarnations' frames act


#: Mutation name -> (scheduler class, what catches it).
MUTATIONS: dict[str, tuple[type[FTScheduler], str]] = {
    "double_decrement": (
        DoubleDecrementScheduler,
        "no-double-notify / join-conservation (or a hung graph)",
    ),
    "double_recovery": (
        DoubleRecoveryScheduler,
        "justified-recovery (or the recovery budget backstop)",
    ),
}


@dataclass
class MutationResult:
    """Did the explorer convict one seeded bug?"""

    mutation: str
    detected: bool
    report: ExplorationReport
    first_counterexample: ScheduleOutcome | None

    def describe(self) -> str:
        if not self.detected:
            return f"{self.mutation}: NOT DETECTED over {self.report.schedules_run} schedules"
        cx = self.first_counterexample
        assert cx is not None
        what = (
            "; ".join(sorted({v.invariant for v in cx.violations}))
            if cx.violations
            else cx.error
        )
        return (
            f"{self.mutation}: detected at {cx.schedule} "
            f"({self.report.schedules_run} schedules explored) via {what}"
        )


def mutation_study(
    make_case: CaseFactory,
    mutations: dict[str, tuple[type[FTScheduler], str]] | None = None,
    **explore_kwargs,
) -> dict[str, MutationResult]:
    """Run the explorer against each seeded-bug scheduler.

    A mutation is *detected* when any explored schedule is suspicious
    (invariant violation or scheduler error).  The mutant schedulers
    keep a tight recovery budget so runaway cascades convict quickly.
    """
    results: dict[str, MutationResult] = {}
    for name, (cls, _expected) in (mutations or MUTATIONS).items():
        kwargs = dict(explore_kwargs)
        kwargs.setdefault("max_recoveries", 200)
        report = explore(make_case, scheduler_cls=cls, **kwargs)
        counterexamples = report.counterexamples()
        results[name] = MutationResult(
            mutation=name,
            detected=bool(counterexamples),
            report=report,
            first_counterexample=counterexamples[0] if counterexamples else None,
        )
    return results


# ---------------------------------------------------------------------------
# Benchmark convenience


def make_app_case(
    app_name: str,
    *,
    scale: str = "tiny",
    fault_phase: str | None = "before_compute",
    fault_count: int = 3,
) -> CaseFactory:
    """A :data:`CaseFactory` over a registered benchmark: fresh app per
    run, fault plan seeded by the schedule seed (``fault_phase=None``
    for fault-free exploration)."""
    from repro.apps.registry import make_app
    from repro.faults.planner import plan_faults

    def make_case(seed: int):
        app = make_app(app_name, scale=scale)
        plan = (
            plan_faults(app, fault_phase, count=fault_count, seed=seed)
            if fault_phase is not None
            else None
        )
        return app, plan

    return make_case


def explore_app(
    app_name: str,
    *,
    scale: str = "tiny",
    fault_phase: str | None = "before_compute",
    fault_count: int = 3,
    **explore_kwargs,
) -> ExplorationReport:
    """Explore one registered benchmark under fault injection."""
    return explore(
        make_app_case(
            app_name, scale=scale, fault_phase=fault_phase, fault_count=fault_count
        ),
        **explore_kwargs,
    )
