"""Trace-invariant checker: Guarantees 1-4 as machine-checkable predicates.

The structured event log (:mod:`repro.obs`) records every protocol step
of one execution -- worker-attributed, timestamped, and life-numbered.
That makes the paper's correctness guarantees *decidable on the trace*:
instead of trusting that the recovery table, the notification bit
vector, and the notify-array reconstruction did their jobs, we replay
the log through a small state machine and flag every way the protocol
could have gone wrong.

Invariant catalogue (names are stable identifiers; see
docs/VERIFICATION.md for the full mapping to the paper):

=====================  ====  ====================================================
``unique-recovery``     G1   at most one RECOVERY event per (key, life)
``monotone-recovery``   G1   recoveries of a key install strictly increasing lives
``justified-recovery``  G1   every RECOVERY of life L follows observed fault
                             evidence for incarnation L-1 (no spurious recovery)
``life-provenance``     G1   no event names an incarnation that no recovery
                             installed (life 1 excepted)
``no-double-notify``    G3   within one arming of an incarnation's bit vector
                             (between RESETs), at most one NOTIFY per predecessor
``join-conservation``   G3   an incarnation computes exactly when preds+self
                             notifications have arrived in the current arming
                             (needs the graph spec; catches premature compute)
``status-monotone``     G2   per incarnation: at most one TASK_COMPUTED and one
                             TASK_COMPLETED, in that order; no RESET afterwards
``status-rederivation`` G2   TASK_COMPUTED only after a COMPUTE_END in the same
                             arming -- status is re-derived, never restored
``balanced-compute``    --   per worker, COMPUTE_BEGIN closes with COMPUTE_END or
                             COMPUTE_FAULT before the next begin (sanity of the
                             log itself; all other invariants lean on it)
=====================  ====  ====================================================

``strict`` gates the evidence-matching invariants (``justified-recovery``)
that assume frame-granular interleaving; they hold on the simulated and
inline runtimes, while on the threaded runtime an observer can race a
replacement and attribute its evidence to a life it read a microsecond
stale.  ``partial=True`` relaxes end-of-trace checks for runs that
crashed mid-flight (the explorer checks the prefix up to the crash).

The checker accepts live :class:`~repro.obs.events.Event` streams or a
JSONL dump re-read by :func:`events_from_jsonl` (keys come back as their
``repr`` there, so pass ``spec=None`` -- spec lookups need real keys).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Iterable, Sequence

from repro.graph.taskspec import TaskGraphSpec
from repro.obs.events import Event, EventKind, events_in_order

#: invariant name -> (guarantee, one-line description); the catalogue the
#: reports and docs render.
INVARIANTS: dict[str, tuple[str, str]] = {
    "unique-recovery": ("G1", "at most one RECOVERY per (key, life)"),
    "monotone-recovery": ("G1", "recovery lives strictly increase per key"),
    "justified-recovery": ("G1", "every recovery follows fault evidence for the prior life"),
    "life-provenance": ("G1", "no incarnation appears without a recovery installing it"),
    "no-double-notify": ("G3", "at most one NOTIFY per predecessor per bit-vector arming"),
    "join-conservation": ("G3", "compute fires exactly at preds+self notifications"),
    "status-monotone": ("G2", "COMPUTED then COMPLETED, once each, never reset after"),
    "status-rederivation": ("G2", "published status is re-derived by a compute, not restored"),
    "balanced-compute": ("--", "per-worker COMPUTE_BEGIN/END|FAULT bracketing"),
}


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored at the offending event."""

    invariant: str
    message: str
    key: Any = None
    life: int = 0
    seq: int = -1

    @property
    def guarantee(self) -> str:
        return INVARIANTS.get(self.invariant, ("?", ""))[0]

    def __str__(self) -> str:
        where = f" at seq {self.seq}" if self.seq >= 0 else ""
        return f"[{self.invariant}/{self.guarantee}]{where}: {self.message}"


#: Evidence kinds that justify a subsequent recovery of the same incarnation.
_FAULT_EVIDENCE = frozenset(
    {EventKind.FAULT_OBSERVED, EventKind.COMPUTE_FAULT, EventKind.SDC_DETECTED}
)


class _IncarnationState:
    """Per-(key, life) protocol state."""

    __slots__ = ("epoch", "notified", "computing", "computed_epoch", "published", "completed")

    def __init__(self) -> None:
        self.epoch = 0          # bumped by RESET: one arming of the bit vector
        self.notified: dict[int, set] = {0: set()}  # epoch -> predecessor srcs seen
        self.computing: dict[int, int] = {}  # epoch -> COMPUTE_BEGIN count
        self.computed_epoch: int | None = None  # epoch of the last COMPUTE_END
        self.published = False  # TASK_COMPUTED seen
        self.completed = False  # TASK_COMPLETED seen


def check_events(
    events: Iterable[Event],
    spec: TaskGraphSpec | None = None,
    strict: bool = True,
    partial: bool = False,
) -> list[Violation]:
    """Replay ``events`` through the invariant state machine.

    ``spec`` enables the graph-aware checks (``join-conservation``);
    ``strict`` enables evidence matching (``justified-recovery``);
    ``partial`` skips end-of-trace completeness checks for truncated logs.
    Returns all violations found (empty list == trace is clean).
    """
    out: list[Violation] = []
    add = out.append

    recovered: set[tuple[Hashable, int]] = set()
    last_recovery_life: dict[Hashable, int] = {}
    evidence: set[tuple[Hashable, int]] = set()
    known_lives: dict[Hashable, set[int]] = {}
    incarnations: dict[tuple[Hashable, int], _IncarnationState] = {}
    open_compute: dict[int, tuple[Hashable, int]] = {}

    def state(key: Hashable, life: int) -> _IncarnationState:
        st = incarnations.get((key, life))
        if st is None:
            st = incarnations[(key, life)] = _IncarnationState()
        return st

    n_preds_cache: dict[Hashable, int] = {}

    def expected_notifications(key: Hashable) -> int | None:
        if spec is None:
            return None
        if key not in n_preds_cache:
            try:
                n_preds_cache[key] = len(tuple(spec.predecessors(key)))
            except Exception:
                n_preds_cache[key] = -1  # key not resolvable (e.g. JSONL reprs)
        n = n_preds_cache[key]
        return None if n < 0 else n + 1

    for e in events_in_order(events):
        key, life, kind = e.key, e.life, e.kind

        # -- life provenance (G1): lives exist only once installed ----------
        if key is not None and life >= 1:
            lives = known_lives.setdefault(key, {1})
            if kind is EventKind.RECOVERY:
                prev = last_recovery_life.get(key, 1)
                if (key, life) in recovered:
                    add(Violation(
                        "unique-recovery",
                        f"second RECOVERY installing {key!r} life {life}",
                        key, life, e.seq,
                    ))
                recovered.add((key, life))
                if life <= prev:
                    add(Violation(
                        "monotone-recovery",
                        f"RECOVERY installed life {life} of {key!r} after life {prev}",
                        key, life, e.seq,
                    ))
                last_recovery_life[key] = max(prev, life)
                if strict and life > 1 and (key, life - 1) not in evidence:
                    add(Violation(
                        "justified-recovery",
                        f"RECOVERY of {key!r} life {life} without observed fault "
                        f"evidence for life {life - 1} (double recovery of an old "
                        "failure, or recovery without a fault)",
                        key, life, e.seq,
                    ))
                lives.add(life)
            elif life not in lives:
                add(Violation(
                    "life-provenance",
                    f"{kind.value} names {key!r} life {life}, which no RECOVERY "
                    "installed",
                    key, life, e.seq,
                ))
                lives.add(life)  # report once per phantom incarnation

        if kind in _FAULT_EVIDENCE and key is not None:
            evidence.add((key, life))

        # -- per-incarnation protocol state ---------------------------------
        if key is not None and life >= 1:
            st = state(key, life)
            if kind is EventKind.RESET:
                if st.published:
                    add(Violation(
                        "status-monotone",
                        f"RESET of {key!r} life {life} after it published Computed",
                        key, life, e.seq,
                    ))
                st.epoch += 1
                st.notified[st.epoch] = set()
            elif kind is EventKind.NOTIFY:
                src = e.data.get("src")
                seen = st.notified.setdefault(st.epoch, set())
                if src in seen:
                    add(Violation(
                        "no-double-notify",
                        f"duplicate NOTIFY of {key!r} life {life} from {src!r} in "
                        f"arming {st.epoch} (join-counter double decrement)",
                        key, life, e.seq,
                    ))
                seen.add(src)
                expected = expected_notifications(key)
                if expected is not None and len(seen) > expected:
                    add(Violation(
                        "join-conservation",
                        f"{len(seen)} notifications of {key!r} life {life} in one "
                        f"arming; joins allow only {expected}",
                        key, life, e.seq,
                    ))
            elif kind is EventKind.COMPUTE_BEGIN:
                begun = st.computing.get(st.epoch, 0)
                if begun:
                    add(Violation(
                        "join-conservation",
                        f"{key!r} life {life} began computing twice in arming "
                        f"{st.epoch} (join counter reached zero twice)",
                        key, life, e.seq,
                    ))
                st.computing[st.epoch] = begun + 1
                expected = expected_notifications(key)
                got = len(st.notified.get(st.epoch, ()))
                if expected is not None and got != expected and not begun:
                    add(Violation(
                        "join-conservation",
                        f"{key!r} life {life} began computing after {got} "
                        f"notifications; protocol requires exactly {expected} "
                        "(premature compute)",
                        key, life, e.seq,
                    ))
                prev_open = open_compute.get(e.worker)
                if prev_open is not None:
                    add(Violation(
                        "balanced-compute",
                        f"worker {e.worker} began computing {key!r} life {life} "
                        f"while {prev_open[0]!r} life {prev_open[1]} is still open",
                        key, life, e.seq,
                    ))
                open_compute[e.worker] = (key, life)
            elif kind in (EventKind.COMPUTE_END, EventKind.COMPUTE_FAULT):
                if kind is EventKind.COMPUTE_END:
                    st.computed_epoch = st.epoch
                if open_compute.get(e.worker) == (key, life):
                    del open_compute[e.worker]
            elif kind is EventKind.TASK_COMPUTED:
                if st.published:
                    add(Violation(
                        "status-monotone",
                        f"{key!r} life {life} published Computed twice",
                        key, life, e.seq,
                    ))
                if st.computed_epoch != st.epoch:
                    add(Violation(
                        "status-rederivation",
                        f"{key!r} life {life} published Computed without a "
                        "COMPUTE_END in its current arming (status restored, "
                        "not re-derived)",
                        key, life, e.seq,
                    ))
                st.published = True
            elif kind is EventKind.TASK_COMPLETED:
                if not st.published:
                    add(Violation(
                        "status-monotone",
                        f"{key!r} life {life} completed without publishing Computed",
                        key, life, e.seq,
                    ))
                if st.completed:
                    add(Violation(
                        "status-monotone",
                        f"{key!r} life {life} completed twice",
                        key, life, e.seq,
                    ))
                st.completed = True

    if not partial:
        for worker, (key, life) in sorted(open_compute.items()):
            add(Violation(
                "balanced-compute",
                f"worker {worker} ended the trace still computing {key!r} life {life}",
                key, life,
            ))
    return out


def check_log(log, spec: TaskGraphSpec | None = None, **kw: Any) -> list[Violation]:
    """Convenience: check an :class:`~repro.obs.events.EventLog`, refusing
    lossy ring buffers (a dropped prefix would fake violations)."""
    dropped = getattr(log, "dropped", 0)
    if dropped:
        raise ValueError(
            f"event log dropped {dropped} events (ring buffer); invariants are "
            "only decidable on a complete trace"
        )
    return check_events(log.events, spec=spec, **kw)


def events_from_jsonl(path: str | Path) -> list[Event]:
    """Re-read a ``python -m repro trace --jsonl`` dump.

    Keys/srcs come back as their JSON form (``repr`` strings for tuple
    keys), which is sufficient for every spec-free invariant.
    """
    events: list[Event] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            data = {
                k: v
                for k, v in d.items()
                if k not in ("seq", "t", "worker", "kind", "key", "life")
            }
            events.append(
                Event(
                    seq=d["seq"],
                    t=d["t"],
                    worker=d["worker"],
                    kind=EventKind(d["kind"]),
                    key=d.get("key"),
                    life=d.get("life", 0),
                    data=data,
                )
            )
    return events


def summarize(violations: Sequence[Violation]) -> dict[str, int]:
    """Violation counts per invariant (all catalogue entries, zeros kept)."""
    counts = {name: 0 for name in INVARIANTS}
    for v in violations:
        counts[v.invariant] = counts.get(v.invariant, 0) + 1
    return counts
