"""Concurrency lints: AST rules the scheduler sources must obey.

These are not style checks -- each rule encodes an invariant the
implementation *relies on* but which no test can establish exhaustively:

* ``lock-discipline`` -- the mutable :class:`~repro.core.records.TaskRecord`
  fields (``join``, ``bit_vector``, ``notify_array``, ``status``) and the
  methods that mutate them (``try_unset_bit``, ``reset_for_reuse``) may
  only be touched inside ``with <record>.lock`` in the scheduler modules.
  On CPython the record lock stands in for the paper's atomics; an
  unlocked access is a lost-update bug waiting for the threaded runtime.
* ``charge-discipline`` -- every ``with X.lock`` in ``core/`` must be
  preceded (in the same function) by a ``runtime.charge(...)`` call, so
  the virtual-time cost model never silently under-counts a lock
  acquisition and the simulator's makespans stay honest.
* ``raw-threading`` -- outside ``runtime/``, code may create
  ``threading.Lock`` objects (the blessed atomic stand-in) but nothing
  else from :mod:`threading`, and may never call ``.acquire()`` /
  ``.release()`` directly: all lock use goes through ``with`` so no
  exception path can leak a held lock.
* ``emit-guard`` -- every telemetry publication in ``core/`` and the
  hot-path runtime modules (``runtime/threadpool.py``,
  ``runtime/procpool.py``) -- ``.emit()`` / ``.emit_at()`` on the event
  log, ``.inc()`` / ``.observe()`` on push metric instruments -- must
  sit inside an ``if`` guarded by a cached ``_obs`` / ``_mx`` flag or a
  direct ``log is (not) NULL_LOG`` / ``metrics is (not) NULL_METRICS``
  identity check, so the telemetry-off hot path pays one boolean test
  per would-be publication instead of an attribute chain plus a no-op
  call.
* ``raw-multiprocessing`` -- outside ``runtime/`` and ``comm/``, no
  module may import :mod:`multiprocessing` or :mod:`concurrent.futures`
  (``multiprocessing.shared_memory`` is exempt: the memory layer owns
  segments but never processes).  Process lifecycle -- fork timing,
  pipe protocol, crash surfacing -- is the runtime layer's contract;
  a stray pool elsewhere would bypass the fault model entirely.
* ``raw-socket`` -- only ``comm/`` may import :mod:`socket`,
  :mod:`select`, or :mod:`selectors`.  Every byte that crosses a
  process or machine boundary must ride a :class:`~repro.comm.core.Comm`
  so peer loss always surfaces as ``CommClosedError`` and flows through
  the ``WORKER_DOWN`` recovery path; a stray socket elsewhere would be
  a second, unmodeled failure domain.
* ``eventkind-coverage`` -- every :class:`~repro.obs.events.EventKind`
  member is emitted somewhere in the package and is either replayed into
  an :class:`~repro.runtime.tracing.ExecutionTrace` counter or explicitly
  listed in ``repro.obs.replay.REPLAY_IGNORED``; scalar replay targets
  must be real ``ExecutionTrace`` counters.  This keeps the event log,
  the counters, and the replay derivation from drifting apart (the
  "one source of truth" contract of :mod:`repro.obs`).

A finding can be waived line-by-line with an inline pragma naming the
rule, e.g. ``x = rec.status  # verify: ok=lock-discipline (reason)``;
waivers are for provably-quiescent accesses only and should carry the
proof in the comment.

Run via :func:`run_lint`, ``python -m repro verify lint``, or the CI lint
job.  Every rule has a seeded-violation fixture in
``tests/verify/test_lint.py`` proving it actually fires.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.verify.report import (  # noqa: F401 - re-exported for compat
    PRAGMA as _PRAGMA,
    Finding,
    Module,
    load_modules,
    package_root,
    sort_findings,
)

#: TaskRecord fields mutated during execution (``corrupted`` is excluded
#: deliberately: it is a monotonic one-way flag, set by injectors and read
#: by ``check()`` without a lock *by design* -- the paper's "a flag is
#: set ... observed by a thread accessing that task").
MUTABLE_RECORD_FIELDS = frozenset({"join", "bit_vector", "notify_array", "status"})

#: TaskRecord methods that mutate the fields above on the caller's behalf.
MUTATING_RECORD_METHODS = frozenset({"try_unset_bit", "reset_for_reuse"})

#: Modules whose record accesses the lock-discipline rule audits (the two
#: schedulers -- everywhere else records are opaque handles).
SCHEDULER_MODULES = frozenset({"core/ft.py", "core/nabbit.py"})

#: threading attributes banned outside ``runtime/``.  ``Lock`` is allowed
#: (the blessed stand-in for the paper's atomics); everything that can
#: block, signal, or spawn belongs to the runtime layer.
BANNED_THREADING = frozenset(
    {"Thread", "Event", "Condition", "Semaphore", "BoundedSemaphore", "Barrier", "Timer"}
)

class Rule:
    """A per-module lint rule."""

    name: str = ""
    description: str = ""

    def check(self, module: Module) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def _finding(self, module: Module, node: ast.AST, message: str) -> list[Finding]:
        line = getattr(node, "lineno", 0)
        if module.waived(line, self.name):
            return []
        return [Finding(self.name, module.relpath, line, message)]


class ProjectRule(Rule):
    """A rule that needs to see several modules at once."""

    def check(self, module: Module) -> list[Finding]:
        return []

    def check_project(self, modules: Sequence[Module]) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# lock-discipline


def _lock_names(with_node: ast.With) -> list[str]:
    """Names ``X`` for context managers of the form ``X.lock``."""
    out = []
    for item in with_node.items:
        cm = item.context_expr
        if isinstance(cm, ast.Attribute) and cm.attr == "lock" and isinstance(cm.value, ast.Name):
            out.append(cm.value.id)
    return out


class LockDisciplineRule(Rule):
    """Mutable TaskRecord state only under ``with <record>.lock``."""

    name = "lock-discipline"
    description = (
        "mutable TaskRecord fields (join/bit_vector/notify_array/status) and "
        "mutating record methods accessed only inside `with record.lock`"
    )

    def __init__(self, paths: frozenset[str] = SCHEDULER_MODULES) -> None:
        self.paths = paths

    def check(self, module: Module) -> list[Finding]:
        if module.relpath not in self.paths:
            return []
        findings: list[Finding] = []
        self._walk(module, module.tree, frozenset(), findings)
        return findings

    def _walk(
        self, module: Module, node: ast.AST, held: frozenset[str], findings: list[Finding]
    ) -> None:
        if isinstance(node, ast.With):
            held = held | frozenset(_lock_names(node))
        elif isinstance(node, ast.Attribute):
            obj = node.value
            if (
                isinstance(obj, ast.Name)
                and obj.id != "self"
                and node.attr in MUTABLE_RECORD_FIELDS
                and obj.id not in held
            ):
                findings.extend(
                    self._finding(
                        module,
                        node,
                        f"`{obj.id}.{node.attr}` accessed outside `with {obj.id}.lock`",
                    )
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in MUTATING_RECORD_METHODS
                and isinstance(fn.value, ast.Name)
                and fn.value.id != "self"
                and fn.value.id not in held
            ):
                findings.extend(
                    self._finding(
                        module,
                        node,
                        f"`{fn.value.id}.{fn.attr}()` mutates record state outside "
                        f"`with {fn.value.id}.lock`",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, held, findings)


# ---------------------------------------------------------------------------
# charge-discipline


def _is_charge_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "charge"
    )


class ChargeDisciplineRule(Rule):
    """Every ``with X.lock`` in core/ has an earlier ``*.charge(...)``."""

    name = "charge-discipline"
    description = (
        "in core/, every `with X.lock` is preceded in the same function by a "
        "runtime.charge(...) call (lock acquisitions are cost-model events)"
    )

    def __init__(self, prefix: str = "core/") -> None:
        self.prefix = prefix

    def check(self, module: Module) -> list[Finding]:
        if not module.relpath.startswith(self.prefix):
            return []
        findings: list[Finding] = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            charge_lines = [n.lineno for n in ast.walk(fn) if _is_charge_call(n)]
            first_charge = min(charge_lines, default=None)
            for node in ast.walk(fn):
                if isinstance(node, ast.With) and _lock_names(node):
                    if first_charge is None or first_charge > node.lineno:
                        findings.extend(
                            self._finding(
                                module,
                                node,
                                f"`with {_lock_names(node)[0]}.lock` in "
                                f"{fn.name}() has no preceding runtime.charge() "
                                "-- unaccounted lock acquisition",
                            )
                        )
        return findings


# ---------------------------------------------------------------------------
# raw-threading


class RawThreadingRule(Rule):
    """Only runtime/ and comm/ may use threading beyond ``Lock``; no bare
    acquire/release anywhere."""

    name = "raw-threading"
    description = (
        "outside runtime/ and comm/, only threading.Lock is allowed (no "
        "Thread/Event/Condition/Semaphore/Barrier/Timer, no direct "
        ".acquire()/.release())"
    )

    def __init__(self, allowed_prefix: str | tuple[str, ...] = ("runtime/", "comm/")) -> None:
        self.allowed_prefix = allowed_prefix

    def check(self, module: Module) -> list[Finding]:
        if module.relpath.startswith(self.allowed_prefix):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "threading":
                for alias in node.names:
                    if alias.name in BANNED_THREADING:
                        findings.extend(
                            self._finding(
                                module,
                                node,
                                f"`from threading import {alias.name}` outside runtime/",
                            )
                        )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "threading"
                and node.attr in BANNED_THREADING
            ):
                findings.extend(
                    self._finding(
                        module, node, f"`threading.{node.attr}` outside runtime/"
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                findings.extend(
                    self._finding(
                        module,
                        node,
                        f"direct `.{node.func.attr}()` call -- use `with <lock>:` so "
                        "exception paths cannot leak a held lock",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# raw-multiprocessing


class RawMultiprocessingRule(Rule):
    """Only runtime/ and comm/ may import multiprocessing or
    concurrent.futures; ``multiprocessing.shared_memory`` is exempt
    (segment ownership is a memory-layer concern, process lifecycle is
    not)."""

    name = "raw-multiprocessing"
    description = (
        "outside runtime/ and comm/, no `import multiprocessing` or "
        "`concurrent.futures` (process lifecycle belongs to the runtime "
        "layer); `multiprocessing.shared_memory` is allowed everywhere"
    )

    #: The one multiprocessing submodule any layer may import.
    EXEMPT = "multiprocessing.shared_memory"

    def __init__(self, allowed_prefix: str | tuple[str, ...] = ("runtime/", "comm/")) -> None:
        self.allowed_prefix = allowed_prefix

    def _banned_module(self, name: str | None) -> bool:
        if name is None:
            return False
        if name == self.EXEMPT or name.startswith(self.EXEMPT + "."):
            return False
        return name == "multiprocessing" or name.startswith(
            ("multiprocessing.", "concurrent.futures")
        )

    def check(self, module: Module) -> list[Finding]:
        if module.relpath.startswith(self.allowed_prefix):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._banned_module(alias.name):
                        findings.extend(
                            self._finding(
                                module, node, f"`import {alias.name}` outside runtime/"
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and self._banned_module(node.module):
                for alias in node.names:
                    # `from multiprocessing import shared_memory` is the
                    # exempt submodule spelled differently.
                    if f"{node.module}.{alias.name}" == self.EXEMPT:
                        continue
                    findings.extend(
                        self._finding(
                            module,
                            node,
                            f"`from {node.module} import {alias.name}` outside runtime/",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# raw-socket


class RawSocketRule(Rule):
    """Only comm/ may import :mod:`socket`, :mod:`select`, or
    :mod:`selectors`.

    The comm layer's whole contract is that peer loss -- on any
    transport -- collapses into ``CommClosedError`` and therefore into
    the ``WORKER_DOWN`` → recovery path.  A raw socket opened anywhere
    else is a second failure domain the fault model cannot see: its
    errors would surface as bare ``OSError`` at arbitrary call sites
    instead of as detected compute-phase faults.  (HTTP helpers built on
    the stdlib's server/client classes are fine -- this rule bans the
    *primitive* modules, which is where hand-rolled wire protocols
    start.)
    """

    name = "raw-socket"
    description = (
        "outside comm/, no `import socket`, `select`, or `selectors` "
        "(every wire crossing rides a Comm so peer loss always becomes "
        "CommClosedError -> WORKER_DOWN -> recovery)"
    )

    #: The primitive modules whose import this rule confines.
    BANNED_MODULES = frozenset({"socket", "select", "selectors"})

    def __init__(self, allowed_prefix: str | tuple[str, ...] = ("comm/",)) -> None:
        self.allowed_prefix = allowed_prefix

    def _banned(self, name: str | None) -> bool:
        return name is not None and name.split(".", 1)[0] in self.BANNED_MODULES

    def check(self, module: Module) -> list[Finding]:
        if module.relpath.startswith(tuple(self.allowed_prefix)):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._banned(alias.name):
                        findings.extend(
                            self._finding(
                                module, node, f"`import {alias.name}` outside comm/"
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and self._banned(node.module):
                findings.extend(
                    self._finding(
                        module,
                        node,
                        f"`from {node.module} import ...` outside comm/",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# emit-guard


#: Cached-flag names that prove telemetry is live: ``_obs``/``obs`` for
#: the event log, ``_mx``/``mx`` for the metrics registry.
_TELEMETRY_FLAGS = frozenset({"_obs", "obs", "_mx", "mx"})

#: Sentinel names whose identity comparison is itself a valid guard.
_TELEMETRY_SENTINELS = frozenset({"NULL_LOG", "NULL_METRICS"})


def _is_obs_guard(test: ast.AST) -> bool:
    """True iff ``test`` (an ``if`` condition) establishes that telemetry
    is live: it references a cached ``_obs`` / ``_mx`` flag or performs a
    ``NULL_LOG`` / ``NULL_METRICS`` identity comparison anywhere in the
    expression."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in ("_obs", "_mx"):
            return True
        if isinstance(node, ast.Name) and node.id in _TELEMETRY_FLAGS:
            return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            names = {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
            names |= {n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)}
            if names & _TELEMETRY_SENTINELS:
                return True
    return False


#: Modules the emit-guard rule audits: the schedulers plus the runtime
#: modules whose worker loops emit events per idle episode / dispatch.
EMIT_GUARD_PREFIXES: tuple[str, ...] = (
    "core/",
    "runtime/threadpool.py",
    "runtime/procpool.py",
    "runtime/cluster.py",
)


#: Publication call names the emit-guard rule audits.  Event emission
#: (``emit``/``emit_at``) and the *push* metric instruments (``inc`` on
#: counters, ``observe`` on histograms) -- each is a per-task cost when
#: unguarded.  ``set`` is deliberately absent: gauges are set at
#: registration time (cold) and ``.set()`` is too generic a name
#: (``threading.Event.set``) to audit without drowning in waivers.
PUBLISH_CALLS = frozenset({"emit", "emit_at", "inc", "observe"})


class EmitGuardRule(Rule):
    """Every telemetry publication in the audited modules sits under a
    cached liveness guard.

    The schedulers' fault-free hot path must cost one cached boolean test
    per would-be event or sample, not an attribute chain plus a no-op
    method call: every ``.emit()``/``.emit_at()`` (event log) and every
    ``.inc()``/``.observe()`` (push metrics) must be inside an ``if``
    whose condition references a cached ``_obs`` / ``_mx`` flag (each
    derived from a ``log is not NULL_LOG`` / ``metrics is not
    NULL_METRICS`` identity check) or performs the identity check
    directly.  An unguarded publication is a silent per-task slowdown
    that no test fails on.
    """

    name = "emit-guard"
    description = (
        "in core/ and the hot-path runtime modules, every EventLog "
        ".emit()/.emit_at() and every metric .inc()/.observe() call is "
        "inside an `if` guarded by the cached _obs/_mx flag or a "
        "NULL_LOG/NULL_METRICS identity check (unguarded publication "
        "re-pays the disabled-telemetry overhead per task)"
    )

    def __init__(self, prefixes: tuple[str, ...] = EMIT_GUARD_PREFIXES) -> None:
        self.prefixes = prefixes

    def check(self, module: Module) -> list[Finding]:
        if not module.relpath.startswith(self.prefixes):
            return []
        findings: list[Finding] = []
        self._walk(module, module.tree, False, findings)
        return findings

    def _walk(
        self, module: Module, node: ast.AST, guarded: bool, findings: list[Finding]
    ) -> None:
        if isinstance(node, ast.If) and _is_obs_guard(node.test):
            self._walk(module, node.test, guarded, findings)
            for child in node.body:
                self._walk(module, child, True, findings)
            for child in node.orelse:
                self._walk(module, child, guarded, findings)
            return
        if (
            not guarded
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in PUBLISH_CALLS
        ):
            findings.extend(
                self._finding(
                    module,
                    node,
                    f"`.{node.func.attr}()` not guarded by a cached `_obs`/`_mx` "
                    "flag or NULL_LOG/NULL_METRICS identity check -- "
                    "unconditional per-publication overhead on the "
                    "telemetry-off hot path",
                )
            )
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, guarded, findings)


# ---------------------------------------------------------------------------
# eventkind-coverage


def _eventkind_attrs(node: ast.AST) -> set[str]:
    """EventKind member names referenced anywhere under ``node``."""
    return {
        n.attr
        for n in ast.walk(node)
        if isinstance(n, ast.Attribute)
        and isinstance(n.value, ast.Name)
        and n.value.id == "EventKind"
    }


def _string_constants(node: ast.AST) -> set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


class EventKindCoverageRule(ProjectRule):
    """EventKind members are emitted and replayed (or explicitly ignored)."""

    name = "eventkind-coverage"
    description = (
        "every EventKind member is emitted somewhere and is handled by "
        "obs.replay (counter or explicit REPLAY_IGNORED entry); replay's "
        "scalar targets exist in ExecutionTrace.SCALAR_COUNTERS"
    )

    EVENTS_MODULE = "obs/events.py"
    REPLAY_MODULE = "obs/replay.py"
    TRACING_MODULE = "runtime/tracing.py"

    def check_project(self, modules: Sequence[Module]) -> list[Finding]:
        by_path = {m.relpath: m for m in modules}
        events_mod = by_path.get(self.EVENTS_MODULE)
        replay_mod = by_path.get(self.REPLAY_MODULE)
        if events_mod is None or replay_mod is None:
            return [
                Finding(
                    self.name,
                    self.EVENTS_MODULE if events_mod is None else self.REPLAY_MODULE,
                    0,
                    "module missing from lint scan; cannot check event coverage",
                )
            ]

        members = self._members(events_mod)
        scalar_keys, handled, ignored = self._replay_sets(replay_mod)
        emitted = set()
        for m in modules:
            emitted |= self._emitted(m)

        findings: list[Finding] = []

        def flag(module: Module, message: str) -> None:
            findings.append(Finding(self.name, module.relpath, 0, message))

        for name in sorted(members):
            if name not in emitted:
                flag(events_mod, f"EventKind.{name} is never emitted anywhere in the package")
            if name not in handled and name not in ignored:
                flag(
                    replay_mod,
                    f"EventKind.{name} neither replayed into a counter nor listed "
                    "in REPLAY_IGNORED (counter drift)",
                )
            if name in handled and name in ignored:
                flag(replay_mod, f"EventKind.{name} both replayed and REPLAY_IGNORED")
        for name in sorted((handled | ignored) - members):
            flag(replay_mod, f"obs.replay references unknown EventKind.{name}")

        tracing_mod = by_path.get(self.TRACING_MODULE)
        if tracing_mod is not None:
            counters = self._scalar_counters(tracing_mod)
            for key in sorted(scalar_keys - counters):
                flag(
                    replay_mod,
                    f"_SCALAR_KINDS target {key!r} is not an "
                    "ExecutionTrace.SCALAR_COUNTERS member",
                )
        return findings

    def _members(self, events_mod: Module) -> set[str]:
        for node in ast.walk(events_mod.tree):
            if isinstance(node, ast.ClassDef) and node.name == "EventKind":
                return {
                    t.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    for t in stmt.targets
                    if isinstance(t, ast.Name)
                }
        return set()

    def _replay_sets(self, replay_mod: Module) -> tuple[set[str], set[str], set[str]]:
        scalar_keys: set[str] = set()
        handled: set[str] = set()
        ignored: set[str] = set()
        for node in replay_mod.tree.body:
            targets: list[str] = []
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target.id]
            if not targets or node.value is None:
                continue
            name = targets[0]
            if name == "_SCALAR_KINDS":
                scalar_keys |= _string_constants(node.value)
                handled |= _eventkind_attrs(node.value)
            elif name in ("_PER_KEY_KINDS", "REPLAY_HANDLED"):
                handled |= _eventkind_attrs(node.value)
            elif name == "REPLAY_IGNORED":
                ignored |= _eventkind_attrs(node.value)
        return scalar_keys, handled, ignored

    def _emitted(self, module: Module) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("emit", "emit_at")
            ):
                for arg in node.args:
                    out |= _eventkind_attrs(arg)
        return out

    def _scalar_counters(self, tracing_mod: Module) -> set[str]:
        for node in ast.walk(tracing_mod.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "SCALAR_COUNTERS" for t in node.targets
            ):
                return _string_constants(node.value)
        return set()


# ---------------------------------------------------------------------------
# driver

ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    ChargeDisciplineRule(),
    RawThreadingRule(),
    RawMultiprocessingRule(),
    RawSocketRule(),
    EmitGuardRule(),
    EventKindCoverageRule(),
)


def run_lint(
    root: Path | None = None,
    rules: Iterable[Rule] = ALL_RULES,
    modules: Sequence[Module] | None = None,
) -> list[Finding]:
    """Run ``rules`` over the package (or an explicit module list) and
    return all findings, sorted by location."""
    if modules is None:
        modules = load_modules(root)
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(modules))
        else:
            for module in modules:
                findings.extend(rule.check(module))
    return sort_findings(findings)
