"""Shared reporting plumbing for the verification toolkit.

Both the per-module concurrency lints (:mod:`repro.verify.lint`) and the
whole-program static analyzer (:mod:`repro.verify.static`) produce the
same currency: a :class:`Finding` anchored at a source line, waivable by
an inline ``# verify: ok=<rule>`` pragma on that line.  This module owns
that currency -- the finding type, the parsed-module handle that knows
its own waivers, deterministic ordering, and the machine-readable output
formats (``--json`` and GitHub Actions problem-matcher annotations) --
so every verification layer reports identically and CI diffs are stable
across runs.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: Inline waiver pragma: ``# verify: ok=<rule> (reason)``.  A waiver
#: silences exactly one rule on exactly the line that carries it.
PRAGMA = re.compile(r"#\s*verify:\s*ok=([a-z0-9-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Module:
    """A parsed source file, addressed relative to the package root."""

    relpath: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "Module":
        return cls(relpath=relpath, tree=ast.parse(source), lines=source.splitlines())

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "Module":
        return cls.from_source(path.read_text(), path.relative_to(root).as_posix())

    def waived(self, line: int, rule: str) -> bool:
        """True iff ``line`` carries a pragma waiving ``rule``."""
        if 1 <= line <= len(self.lines):
            m = PRAGMA.search(self.lines[line - 1])
            if m and m.group(1) == rule:
                return True
        return False


def package_root() -> Path:
    """The ``src/repro`` directory of the imported package."""
    import repro

    return Path(repro.__file__).resolve().parent


def load_modules(root: Path | None = None) -> list[Module]:
    root = root or package_root()
    return [Module.from_path(p, root) for p in sorted(root.rglob("*.py"))]


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: by path, then line, then rule, then
    message -- and with exact duplicates collapsed, so repeated runs (and
    rules that rediscover the same site along several witness paths)
    always print byte-identical reports."""
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule, f.message))


def findings_to_json(findings: Sequence[Finding]) -> str:
    """The ``--json`` wire format: a stable, pretty-printed object with
    the finding list and a per-rule count summary."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    payload = {
        "clean": not findings,
        "count": len(findings),
        "by_rule": {k: counts[k] for k in sorted(counts)},
        "findings": [f.to_dict() for f in sort_findings(findings)],
    }
    return json.dumps(payload, indent=2)


def github_annotations(
    findings: Iterable[Finding], path_prefix: str = "src/repro/"
) -> list[str]:
    """GitHub Actions workflow-command lines (``::error file=...``) that
    surface each finding as an inline annotation on the PR diff."""
    return [
        f"::error file={path_prefix}{f.path},line={f.line}::[{f.rule}] {f.message}"
        for f in sort_findings(findings)
    ]
