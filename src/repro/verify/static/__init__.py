"""Whole-program static analyzer for the concurrency-bearing subsystems.

``python -m repro verify static`` builds one
:class:`~repro.verify.static.callgraph.Program` over the package --
cross-module call graph, lock-acquisition-order graph, light type
inference -- and runs the five rules against it:

* ``deadlock-cycle`` -- the lock-order graph is acyclic (witness chains
  for every edge of a cycle);
* ``blocking-under-lock`` -- no comm/socket I/O, sleep, join or wait is
  reachable while a lock is held;
* ``lock-leak`` -- no bare ``.acquire()`` or comm open without a
  ``with``/``finally`` release on exception paths;
* ``wire-safety`` -- everything constructed into a frame or
  ``Comm.send`` resolves to the picklable wire set;
* ``protocol-exhaustive`` -- every message tag one protocol side sends
  has a handler branch on the other, and no dead handlers.

Findings are waivable with ``# verify: ok=<rule>`` on the offending
line; waivers are applied centrally here, after all rules ran.  The
seeded-violation suite (:mod:`repro.verify.static.seeded`) proves each
rule convicts the bug it exists for.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.verify.report import Finding, Module, load_modules, sort_findings
from repro.verify.static.callgraph import ANALYZED_PREFIXES, Program, StaticRule
from repro.verify.static.locks import (
    BlockingUnderLockRule,
    DeadlockCycleRule,
    LockLeakRule,
)
from repro.verify.static.wire import ProtocolExhaustiveRule, WireSafetyRule

STATIC_RULES: tuple[StaticRule, ...] = (
    DeadlockCycleRule(),
    BlockingUnderLockRule(),
    LockLeakRule(),
    WireSafetyRule(),
    ProtocolExhaustiveRule(),
)


def run_static(
    root: Path | None = None,
    rules: Sequence[StaticRule] = STATIC_RULES,
    modules: Sequence[Module] | None = None,
    prefixes: Iterable[str] = ANALYZED_PREFIXES,
) -> list[Finding]:
    """Build the program model and run every static rule; returns the
    deterministically-ordered findings that survive inline waivers."""
    if modules is None:
        modules = load_modules(root)
    program = Program.build(modules, prefixes)
    by_path = {m.relpath: m for m in modules}
    findings: list[Finding] = []
    for rule in rules:
        for f in rule.check(program):
            mod = by_path.get(f.path)
            if mod is not None and mod.waived(f.line, f.rule):
                continue
            findings.append(f)
    return sort_findings(findings)


__all__ = [
    "ANALYZED_PREFIXES",
    "Program",
    "STATIC_RULES",
    "StaticRule",
    "run_static",
]
