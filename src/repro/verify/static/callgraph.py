"""Whole-program model: call graph, lock model, light type inference.

:class:`Program` parses every module of the package (the full set is the
*type universe* -- exception classes, ``BlockRef``, the comm ABCs) and
analyzes the functions of the concurrency-bearing subsystems
(:data:`ANALYZED_PREFIXES`).  For each analyzed function it records,
with the set of locks held at each point:

* lock acquisitions (``with <lock>:``),
* directly blocking operations (sleep, joins, comm/socket I/O, blocking
  queue gets), and
* call sites, resolved to callee functions where the receiver's type can
  be established.

Two fixpoints then propagate facts over the resolved call graph:
``blocking_chain`` (the shortest witness from a function to a blocking
operation it can reach) and ``reachable_locks`` (the locks a call into
the function may acquire, each with its shortest witness).  The rules in
:mod:`repro.verify.static.locks` and :mod:`repro.verify.static.wire`
read these tables; they never re-walk the AST for interprocedural facts.

Resolution strategy (deliberately under-approximate): a call is resolved
only when its target is unambiguous -- same-module functions, imports of
package modules, ``self.``/``super().`` methods through the class
hierarchy, and receivers typed by parameter/return annotations or by
local constructor assignment.  When a receiver resolves to a base class
(e.g. :class:`~repro.comm.core.Comm`), overrides in analyzed subclasses
are included, so a lock acquired by a concrete transport is visible at
an abstract call site.  Anything ambiguous stays unresolved: the
analyzer prefers missing an edge to inventing one, which is what keeps a
clean HEAD meaningful.  Blocking *call names* (``.send``/``.recv``/
``.wait``/``.join``/...) are classified at the call site itself, so an
unresolved receiver cannot hide a blocking operation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.verify.report import Finding, Module

#: The subsystems whose functions are analyzed (every package module is
#: still parsed for the type universe).
ANALYZED_PREFIXES: tuple[str, ...] = ("comm/", "core/", "memory/", "obs/", "runtime/")

#: Scalar annotation names treated as plain (non-class) types.
PRIMITIVES = frozenset(
    {"bytes", "bytearray", "str", "int", "float", "bool", "complex", "None",
     "NoneType", "Any", "object", "Hashable", "Callable"}
)

#: Base-class names that mark a class as part of the exceptions family
#: even when the base itself is not defined in the package.
_EXC_BASE_NAMES = frozenset(
    {"Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
     "KeyError", "OSError", "IOError", "LookupError", "ArithmeticError",
     "AssertionError", "ConnectionError"}
)

#: threading constructors that create (R)Lock objects.
_LOCK_CTORS = frozenset({"Lock", "RLock"})


@dataclass(frozen=True)
class LockId:
    """A lock identity: the owning class (or module, or ``?``) plus the
    attribute/name it lives under.  Instance-insensitive by design: two
    records' ``.lock`` attrs are the same :class:`LockId`."""

    owner: str
    attr: str

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass(frozen=True)
class Acquire:
    """One ``with <lock>:`` acquisition inside a function."""

    lock: LockId
    line: int
    held: tuple[LockId, ...]
    indexed: bool = False  # acquired through a subscript (striped locks)


@dataclass(frozen=True)
class BlockOp:
    """One directly blocking operation inside a function."""

    line: int
    desc: str
    held: tuple[LockId, ...]


@dataclass(eq=False)
class FunctionInfo:
    """One function or method, plus the facts collected from its body."""

    module: Module
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None
    acquires: list[Acquire] = field(default_factory=list)
    blocking_ops: list[BlockOp] = field(default_factory=list)
    calls: list["CallSite"] = field(default_factory=list)
    env: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.module.relpath}:{self.qualname}"


@dataclass(eq=False)
class CallSite:
    """One call expression, with the locks held when it executes and the
    callee candidates that could unambiguously be resolved."""

    line: int
    held: tuple[LockId, ...]
    targets: tuple[FunctionInfo, ...]
    desc: str


@dataclass(eq=False)
class ClassInfo:
    module: Module
    name: str
    node: ast.ClassDef
    base_names: tuple[str, ...] = ()
    bases: list["ClassInfo"] = field(default_factory=list)
    subclasses: list["ClassInfo"] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    exceptionish: bool = False

    def mro(self) -> list["ClassInfo"]:
        seen: set[int] = set()
        out: list[ClassInfo] = []
        stack = [self]
        while stack:
            c = stack.pop(0)
            if id(c) in seen:
                continue
            seen.add(id(c))
            out.append(c)
            stack.extend(c.bases)
        return out

    def mro_method(self, name: str) -> FunctionInfo | None:
        for c in self.mro():
            fn = c.methods.get(name)
            if fn is not None:
                return fn
        return None

    def lock_owner(self, attr: str) -> str | None:
        """The class in the MRO that assigns ``self.<attr>`` a Lock."""
        for c in self.mro():
            if attr in c.lock_attrs:
                return c.name
        return None

    def attr_classnames(self, attr: str) -> tuple[str, ...]:
        for c in self.mro():
            t = c.attr_types.get(attr)
            if t:
                return t
        return ()


# ---------------------------------------------------------------------------
# annotation helpers


def _annotation_names(node: ast.AST | None) -> tuple[str, ...]:
    """Class/primitive names an annotation can denote (``X | None`` and
    ``Optional[X]`` unwrap to ``X``; quoted annotations are parsed)."""
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
    if isinstance(node, ast.Constant) and node.value is None:
        return ()
    if isinstance(node, ast.Name):
        return () if node.id in ("None", "Optional", "Union") else (node.id,)
    if isinstance(node, ast.Attribute):
        return (node.attr,)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return tuple(
            dict.fromkeys(_annotation_names(node.left) + _annotation_names(node.right))
        )
    if isinstance(node, ast.Subscript):
        base = _annotation_names(node.value)
        if base and base[0] in ("Optional", "Union"):
            elts = (
                node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
            )
            out: tuple[str, ...] = ()
            for e in elts:
                out += _annotation_names(e)
            return tuple(dict.fromkeys(out))
        return base  # list[int] -> ("list",): container identity only
    return ()


def _tuple_annotation_elements(node: ast.AST | None) -> list[tuple[str, ...]] | None:
    """Per-element names for a ``tuple[A, B, C]`` annotation, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("tuple", "Tuple")
        and isinstance(node.slice, ast.Tuple)
    ):
        return [_annotation_names(e) for e in node.slice.elts]
    return None


def _contains_lock_ctor(node: ast.AST) -> bool:
    """True if ``node`` constructs a ``threading.Lock``/``RLock`` anywhere
    (covers both ``threading.Lock()`` and striped ``tuple(... for ...)``)."""
    for n in ast.walk(node):
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id == "threading"
            and n.func.attr in _LOCK_CTORS
        ):
            return True
    return False


def _relpath_of_import(modname: str | None) -> str | None:
    if modname is None:
        return None
    if modname == "repro":
        return "__init__.py"
    if modname.startswith("repro."):
        return modname[len("repro."):].replace(".", "/") + ".py"
    return None


# ---------------------------------------------------------------------------
# blocking-operation classification


def _blocking_desc(call: ast.Call) -> str | None:
    """A human label if this call is intrinsically blocking, else None.

    Name-based by design: comm sends/recvs, socket ops, sleeps, joins and
    event waits block regardless of whether the receiver resolves.  The
    shape rules keep lookalikes out: ``", ".join(xs)`` has a positional
    argument, ``d.get(key)`` has a positional argument, ``poll(0)`` is a
    non-blocking probe.
    """
    f = call.func
    if isinstance(f, ast.Name):
        if f.id == "sleep":
            return "sleep()"
        if f.id == "create_connection":
            return "create_connection()"
        return None
    if not isinstance(f, ast.Attribute):
        return None
    n = f.attr
    if n == "sleep":
        return "sleep()"
    if n in (
        "send", "send_oob", "sendall", "sendmsg", "send_bytes",
        "recv", "recv_bytes", "recv_bytes_into", "recv_into", "accept",
    ):
        return f".{n}() (comm/socket I/O)"
    if n == "select":
        return "select.select()"
    if n == "wait":
        return ".wait()"
    if n == "acquire":
        return ".acquire()"
    if n == "create_connection":
        return "socket.create_connection()"
    if n == "join" and not call.args:
        return ".join()"
    if n == "get" and not call.args:
        return "blocking queue .get()"
    if n == "poll" and call.args:
        a = call.args[0]
        if not (isinstance(a, ast.Constant) and a.value in (0, 0.0, False)):
            return ".poll(timeout)"
    return None


def own_nodes(fn_node: ast.AST) -> Iterable[ast.AST]:
    """Every AST node of a function body, excluding nested function/class
    bodies (those are analyzed as functions in their own right) and
    lambda bodies (which execute later, elsewhere)."""
    stack: list[ast.AST] = list(getattr(fn_node, "body", []))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(n))


class StaticRule:
    """A whole-program rule over a built :class:`Program`."""

    name: str = ""
    description: str = ""

    def check(self, program: "Program") -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# the program model


class Program:
    """Parsed package + analyzed facts; built once per analyzer run."""

    def __init__(self, modules: Sequence[Module], prefixes: Iterable[str]) -> None:
        self.modules = list(modules)
        self.prefixes = tuple(prefixes)
        self.by_path: dict[str, Module] = {m.relpath: m for m in self.modules}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.module_scope: dict[str, dict[str, object]] = {}
        self.module_locks: dict[str, set[str]] = {}
        self.module_consts: dict[str, dict[str, ast.expr]] = {}
        self.functions: list[FunctionInfo] = []  # analyzed (in-prefix) only
        self.indexed_locks: set[LockId] = set()
        self.blocking_chains: dict[FunctionInfo, tuple[str, ...]] = {}
        self.reachable_locks: dict[FunctionInfo, dict[LockId, tuple[str, ...]]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls, modules: Sequence[Module], prefixes: Iterable[str] = ANALYZED_PREFIXES
    ) -> "Program":
        self = cls(modules, prefixes)
        for m in self.modules:
            self._collect_definitions(m)
        for m in self.modules:
            self._collect_imports(m)
        self._link_classes()
        for m in self.modules:
            self._collect_class_details(m)
        for fn in self.functions:
            self._build_env(fn)
        for fn in self.functions:
            _FactWalker(self, fn).run()
        self._fixpoint_blocking()
        self._fixpoint_locks()
        return self

    def analyzed(self, relpath: str) -> bool:
        return relpath.startswith(self.prefixes)

    def _collect_definitions(self, module: Module) -> None:
        scope: dict[str, object] = {}
        locks: set[str] = set()
        consts: dict[str, ast.expr] = {}
        self.module_scope[module.relpath] = scope
        self.module_locks[module.relpath] = locks
        self.module_consts[module.relpath] = consts
        analyzed = self.analyzed(module.relpath)

        def add_function(node, qualname, ci):
            fn = FunctionInfo(module=module, qualname=qualname, node=node, cls=ci)
            if analyzed:
                self.functions.append(fn)
            return fn

        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                ci = ClassInfo(module=module, name=node.name, node=node)
                ci.base_names = tuple(
                    b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                    for b in node.bases
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = add_function(stmt, f"{node.name}.{stmt.name}", ci)
                        ci.methods[stmt.name] = fn
                        for inner in stmt.body:
                            self._collect_nested(inner, f"{node.name}.{stmt.name}", ci, module, analyzed)
                self.classes.setdefault(node.name, []).append(ci)
                scope[node.name] = ci
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = add_function(node, node.name, None)
                scope[node.name] = fn
                for inner in node.body:
                    self._collect_nested(inner, node.name, None, module, analyzed)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    consts[t.id] = node.value
                    if _contains_lock_ctor(node.value):
                        locks.add(t.id)

    def _collect_nested(
        self, node: ast.stmt, parent_qual: str, ci: ClassInfo | None,
        module: Module, analyzed: bool,
    ) -> None:
        """Collect function defs nested one statement-level down (loop and
        conditional bodies included) as independently-analyzed functions:
        their bodies run later, on some other thread, never with the
        definer's locks held."""
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    module=module,
                    qualname=f"{parent_qual}.{child.name}",
                    node=child,
                    cls=ci,
                )
                if analyzed:
                    self.functions.append(fn)

    def _collect_imports(self, module: Module) -> None:
        scope = self.module_scope[module.relpath]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    rel = _relpath_of_import(alias.name)
                    if rel and rel in self.by_path:
                        scope[alias.asname or alias.name.rsplit(".", 1)[-1]] = (
                            "module", rel,
                        )
            elif isinstance(node, ast.ImportFrom):
                rel = _relpath_of_import(node.module)
                if rel is None:
                    continue
                pkg_dir = rel[: -len(".py")] if rel.endswith(".py") else rel
                for alias in node.names:
                    bound = alias.asname or alias.name
                    # `from repro.comm import frame` -> submodule binding
                    sub = f"{pkg_dir.removesuffix('/__init__')}/{alias.name}.py"
                    if rel.endswith("__init__.py") and sub in self.by_path:
                        scope[bound] = ("module", sub)
                        continue
                    target = self.module_scope.get(rel, {}).get(alias.name)
                    if isinstance(target, (ClassInfo, FunctionInfo)):
                        scope[bound] = target

    def _link_classes(self) -> None:
        for cands in self.classes.values():
            for ci in cands:
                for bname in ci.base_names:
                    base = self.resolve_class(bname, ci.module.relpath)
                    if base is not None and base is not ci:
                        ci.bases.append(base)
                        base.subclasses.append(ci)
        # exceptions family: textual bases first, then propagate down.
        for cands in self.classes.values():
            for ci in cands:
                if any(
                    b in _EXC_BASE_NAMES or b.endswith(("Error", "Exception", "Warning"))
                    for b in ci.base_names
                ):
                    ci.exceptionish = True
        changed = True
        while changed:
            changed = False
            for cands in self.classes.values():
                for ci in cands:
                    if not ci.exceptionish and any(b.exceptionish for b in ci.bases):
                        ci.exceptionish = True
                        changed = True

    def _collect_class_details(self, module: Module) -> None:
        """Lock attributes and attribute types, from ``self.X = ...`` in
        every method (param annotations provide the typing context)."""
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cands = self.classes.get(node.name, [])
            ci = next((c for c in cands if c.node is node), None)
            if ci is None:
                continue
            for meth in ci.methods.values():
                env = self._param_env(meth)
                for stmt in ast.walk(meth.node):
                    target = None
                    value = None
                    ann = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value, ann = stmt.target, stmt.value, stmt.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if value is not None and _contains_lock_ctor(value):
                        ci.lock_attrs.add(attr)
                        continue
                    names: tuple[str, ...] = ()
                    if ann is not None:
                        names = _annotation_names(ann)
                    elif value is not None:
                        names = self._infer_expr(value, module, env, ci)
                    if names and attr not in ci.attr_types:
                        ci.attr_types[attr] = names

    # -- typing -------------------------------------------------------------

    def resolve_class(self, name: str, relpath: str) -> ClassInfo | None:
        cands = self.classes.get(name, [])
        if not cands:
            return None
        for c in cands:
            if c.module.relpath == relpath:
                return c
        bind = self.module_scope.get(relpath, {}).get(name)
        if isinstance(bind, ClassInfo):
            return bind
        if len(cands) == 1:
            return cands[0]
        return None

    def _param_env(self, fn: FunctionInfo) -> dict[str, tuple[str, ...]]:
        env: dict[str, tuple[str, ...]] = {}
        a = fn.node.args
        for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            names = _annotation_names(arg.annotation)
            if names:
                env[arg.arg] = names
        return env

    def _build_env(self, fn: FunctionInfo) -> None:
        """Local name -> type names, from annotations and assignments.
        Two sweeps so one level of assignment chaining resolves."""
        env = self._param_env(fn)
        module = fn.module
        for _ in range(2):
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    names = _annotation_names(stmt.annotation)
                    if names:
                        env[stmt.target.id] = names
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    t = stmt.targets[0]
                    if isinstance(t, ast.Name):
                        names = self._infer_expr(stmt.value, module, env, fn.cls)
                        if names:
                            env.setdefault(t.id, names)
                    elif isinstance(t, ast.Tuple) and isinstance(stmt.value, ast.Call):
                        rets = self._call_return_annotation(stmt.value, module, env, fn.cls)
                        elems = _tuple_annotation_elements(rets)
                        if elems and len(elems) == len(t.elts):
                            for el, names in zip(t.elts, elems):
                                if isinstance(el, ast.Name) and names:
                                    env.setdefault(el.id, names)
        fn.env = env

    def _call_return_annotation(
        self,
        call: ast.Call,
        module: Module,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
    ) -> ast.AST | None:
        for tgt in self._resolve_call_targets(call, module, env, cls, expand=False):
            if tgt.node.returns is not None:
                return tgt.node.returns
        return None

    def _infer_expr(
        self,
        expr: ast.AST,
        module: Module,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
        depth: int = 0,
    ) -> tuple[str, ...]:
        if depth > 4:
            return ()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, ())
        if isinstance(expr, ast.Attribute):
            recv = expr.value
            if isinstance(recv, ast.Name) and recv.id == "self" and cls is not None:
                return cls.attr_classnames(expr.attr)
            for tname in self._infer_expr(recv, module, env, cls, depth + 1):
                c = self.resolve_class(tname, module.relpath)
                if c is not None:
                    names = c.attr_classnames(expr.attr)
                    if names:
                        return names
            return ()
        if isinstance(expr, ast.Call):
            targets = self._resolve_call_targets(expr, module, env, cls, expand=False)
            out: tuple[str, ...] = ()
            for tgt in targets:
                if tgt.qualname.endswith("__init__") and tgt.cls is not None:
                    out += (tgt.cls.name,)
                else:
                    out += _annotation_names(tgt.node.returns)
            if out:
                return tuple(dict.fromkeys(out))
            # a bare constructor call of a method-less class
            f = expr.func
            if isinstance(f, ast.Name):
                c = self.resolve_class(f.id, module.relpath)
                if c is not None:
                    return (c.name,)
            return ()
        if isinstance(expr, ast.IfExp):
            return tuple(
                dict.fromkeys(
                    self._infer_expr(expr.body, module, env, cls, depth + 1)
                    + self._infer_expr(expr.orelse, module, env, cls, depth + 1)
                )
            )
        if isinstance(expr, ast.Constant):
            return (type(expr.value).__name__,)
        return ()

    # -- call resolution ----------------------------------------------------

    def _overrides(self, cls: ClassInfo, name: str) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        stack = list(cls.subclasses)
        seen: set[int] = set()
        while stack:
            c = stack.pop(0)
            if id(c) in seen:
                continue
            seen.add(id(c))
            if name in c.methods:
                out.append(c.methods[name])
            stack.extend(c.subclasses)
        return out

    def _resolve_call_targets(
        self,
        call: ast.Call,
        module: Module,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
        expand: bool = True,
    ) -> tuple[FunctionInfo, ...]:
        f = call.func
        scope = self.module_scope.get(module.relpath, {})
        out: list[FunctionInfo] = []
        if isinstance(f, ast.Name):
            bind = scope.get(f.id)
            if isinstance(bind, FunctionInfo):
                out.append(bind)
            elif isinstance(bind, ClassInfo):
                init = bind.mro_method("__init__")
                if init is not None:
                    out.append(init)
        elif isinstance(f, ast.Attribute):
            recv = f.value
            if isinstance(recv, ast.Name) and recv.id == "self" and cls is not None:
                m = cls.mro_method(f.attr)
                if m is not None:
                    out.append(m)
                if expand:
                    out.extend(self._overrides(cls, f.attr))
            elif (
                isinstance(recv, ast.Call)
                and isinstance(recv.func, ast.Name)
                and recv.func.id == "super"
                and cls is not None
            ):
                for base in cls.bases:
                    m = base.mro_method(f.attr)
                    if m is not None:
                        out.append(m)
                        break
            else:
                if isinstance(recv, ast.Name):
                    bind = scope.get(recv.id)
                    if isinstance(bind, tuple) and bind[0] == "module":
                        target = self.module_scope.get(bind[1], {}).get(f.attr)
                        if isinstance(target, FunctionInfo):
                            out.append(target)
                        elif isinstance(target, ClassInfo):
                            init = target.mro_method("__init__")
                            if init is not None:
                                out.append(init)
                if not out:
                    for tname in self._infer_expr(recv, module, env, cls):
                        c = self.resolve_class(tname, module.relpath)
                        if c is None:
                            continue
                        m = c.mro_method(f.attr)
                        if m is not None:
                            out.append(m)
                        if expand:
                            out.extend(self._overrides(c, f.attr))
        return tuple(dict.fromkeys(out))

    # -- lock identification ------------------------------------------------

    def lock_of(self, expr: ast.AST, fn: FunctionInfo) -> tuple[LockId, bool] | None:
        """The :class:`LockId` a ``with`` context expression acquires, plus
        whether it was reached through a subscript (striped)."""
        indexed = False
        e = expr
        if isinstance(e, ast.Subscript):
            e, indexed = e.value, True
        if isinstance(e, ast.Name):
            if e.id in self.module_locks.get(fn.module.relpath, ()):
                return LockId(fn.module.relpath, e.id), indexed
            return None
        if not isinstance(e, ast.Attribute):
            return None
        attr = e.attr
        recv = e.value
        lockish = "lock" in attr.lower()
        if isinstance(recv, ast.Name) and recv.id == "self" and fn.cls is not None:
            owner = fn.cls.lock_owner(attr)
            if owner is not None:
                return LockId(owner, attr), indexed
            if lockish:
                return LockId(fn.cls.name, attr), indexed
            return None
        for tname in self._infer_expr(recv, fn.module, fn.env, fn.cls):
            c = self.resolve_class(tname, fn.module.relpath)
            if c is not None:
                owner = c.lock_owner(attr)
                if owner is not None:
                    return LockId(owner, attr), indexed
                if lockish:
                    return LockId(c.name, attr), indexed
        if lockish:
            return LockId("?", attr), indexed
        return None

    # -- fixpoints ----------------------------------------------------------

    def _fixpoint_blocking(self) -> None:
        chains: dict[FunctionInfo, tuple[str, ...]] = {}
        for fn in self.functions:
            if fn.blocking_ops:
                op = min(fn.blocking_ops, key=lambda o: (o.line, o.desc))
                chains[fn] = (f"{fn.label}:{op.line} {op.desc}",)
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                for cs in fn.calls:
                    for tgt in cs.targets:
                        sub = chains.get(tgt)
                        if sub is None:
                            continue
                        cand = (f"{fn.label}:{cs.line}",) + sub
                        cur = chains.get(fn)
                        if cur is None or (len(cand), cand) < (len(cur), cur):
                            chains[fn] = cand
                            changed = True
        self.blocking_chains = chains

    def _fixpoint_locks(self) -> None:
        reach: dict[FunctionInfo, dict[LockId, tuple[str, ...]]] = {
            fn: {} for fn in self.functions
        }
        for fn in self.functions:
            for acq in fn.acquires:
                cand = (f"{fn.label}:{acq.line} acquires {acq.lock}",)
                cur = reach[fn].get(acq.lock)
                if cur is None or (len(cand), cand) < (len(cur), cur):
                    reach[fn][acq.lock] = cand
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                for cs in fn.calls:
                    for tgt in cs.targets:
                        for lock, sub in reach.get(tgt, {}).items():
                            cand = (f"{fn.label}:{cs.line}",) + sub
                            cur = reach[fn].get(lock)
                            if cur is None or (len(cand), cand) < (len(cur), cur):
                                reach[fn][lock] = cand
                                changed = True
        self.reachable_locks = reach


# ---------------------------------------------------------------------------
# per-function fact collection


class _FactWalker:
    """Walks one function body tracking the held-lock set structurally:
    ``with`` bodies extend it, everything else inherits it.  Lambda bodies
    and nested defs are skipped (they execute later, without these locks);
    comprehension bodies are walked inline (they execute eagerly)."""

    def __init__(self, program: Program, fn: FunctionInfo) -> None:
        self.program = program
        self.fn = fn

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self._walk(stmt, ())

    def _walk(self, node: ast.AST, held: tuple[LockId, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # collected separately; runs without these locks
        if isinstance(node, ast.Lambda):
            return  # executes later, elsewhere
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._walk(item.context_expr, inner)
                got = self.program.lock_of(item.context_expr, self.fn)
                if got is not None:
                    lock, indexed = got
                    self.fn.acquires.append(
                        Acquire(lock, item.context_expr.lineno, inner, indexed)
                    )
                    if indexed:
                        self.program.indexed_locks.add(lock)
                    inner = inner + (lock,)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.Call):
            desc = _blocking_desc(node)
            if desc is not None:
                self.fn.blocking_ops.append(BlockOp(node.lineno, desc, held))
            targets = self.program._resolve_call_targets(
                node, self.fn.module, self.fn.env, self.fn.cls
            )
            if targets:
                self.fn.calls.append(
                    CallSite(node.lineno, held, targets, ast.unparse(node.func))
                )
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)
