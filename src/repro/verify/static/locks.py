"""Lock-graph rules: deadlock cycles, blocking under a held lock, and
lock/resource leaks on exception paths.

All three rules read the tables :class:`~repro.verify.static.callgraph.Program`
computed -- per-function acquisitions, blocking operations and resolved
call sites (each tagged with the locks held at that point), plus the two
interprocedural fixpoints (shortest blocking chain, reachable locks).
Findings are anchored at the *call site where the lock is held*, not
deep inside the callee, so a waiver sits next to the decision it
justifies.
"""

from __future__ import annotations

import ast

from repro.verify.report import Finding
from repro.verify.static.callgraph import (
    LockId,
    Program,
    StaticRule,
    own_nodes,
)


def _fmt_held(held: tuple[LockId, ...]) -> str:
    return ", ".join(str(h) for h in held)


class BlockingUnderLockRule(StaticRule):
    """No blocking operation -- comm/socket I/O, sleeps, joins, event
    waits, blocking queue gets -- may be reachable while a lock is held.

    A blocked lock holder stalls every thread that needs the lock; if
    the blocking operation itself waits on one of those threads (a comm
    round trip served by a peer that is dialing us back, a join on a
    worker that needs the pool lock) the system wedges.  Direct
    operations are flagged at their own line; operations reached through
    calls are flagged at the call site, with the shortest witness chain
    down to the primitive that blocks.
    """

    name = "blocking-under-lock"
    description = (
        "no sleep/join/wait/comm-I/O/blocking-get is reachable while a "
        "lock is held (witness chain reported at the holding call site)"
    )

    def check(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for fn in program.functions:
            for op in fn.blocking_ops:
                if op.held:
                    findings.append(
                        Finding(
                            self.name,
                            fn.module.relpath,
                            op.line,
                            f"{op.desc} in {fn.qualname} while holding "
                            f"{_fmt_held(op.held)}",
                        )
                    )
            for cs in fn.calls:
                if not cs.held:
                    continue
                best: tuple[str, ...] | None = None
                for tgt in cs.targets:
                    sub = program.blocking_chains.get(tgt)
                    if sub is not None and (
                        best is None or (len(sub), sub) < (len(best), best)
                    ):
                        best = sub
                if best is not None:
                    findings.append(
                        Finding(
                            self.name,
                            fn.module.relpath,
                            cs.line,
                            f"`{cs.desc}(...)` can block while holding "
                            f"{_fmt_held(cs.held)}: {' -> '.join(best)}",
                        )
                    )
        return findings


class DeadlockCycleRule(StaticRule):
    """The lock-acquisition-order graph must be acycle-free.

    An edge ``A -> B`` means some execution path acquires ``B`` while
    holding ``A`` (directly, or through a chain of resolved calls).  Any
    cycle is a potential deadlock: two threads entering the cycle at
    different points can each hold the lock the other needs.  Every edge
    participating in a cycle is reported with its own witness chain, so
    both directions of a 2-cycle are visible.  Lock identity is
    class-scoped (``Owner.attr``) and instance-insensitive; self-edges
    on striped (subscripted) lock tuples are suppressed because distinct
    stripes are distinct locks.
    """

    name = "deadlock-cycle"
    description = (
        "the cross-module lock-acquisition-order graph has no cycles "
        "(each participating edge reported with a witness call chain)"
    )

    def check(self, program: Program) -> list[Finding]:
        edges: dict[tuple[LockId, LockId], tuple[str, int, str]] = {}

        def add(a: LockId, b: LockId, path: str, line: int, text: str) -> None:
            key = (a, b)
            cand = (path, line, text)
            cur = edges.get(key)
            if cur is None or cand < cur:
                edges[key] = cand

        for fn in program.functions:
            for acq in fn.acquires:
                for h in acq.held:
                    add(
                        h, acq.lock, fn.module.relpath, acq.line,
                        f"{fn.label}:{acq.line} acquires {acq.lock} "
                        f"while holding {h}",
                    )
            for cs in fn.calls:
                if not cs.held:
                    continue
                for tgt in cs.targets:
                    for lock, sub in program.reachable_locks.get(tgt, {}).items():
                        for h in cs.held:
                            add(
                                h, lock, fn.module.relpath, cs.line,
                                f"{fn.label}:{cs.line} (holding {h}) -> "
                                + " -> ".join(sub),
                            )

        adj: dict[LockId, set[LockId]] = {}
        for a, b in edges:
            adj.setdefault(a, set()).add(b)

        def reachable(src: LockId, dst: LockId) -> bool:
            seen: set[LockId] = set()
            stack = [src]
            while stack:
                n = stack.pop()
                if n == dst:
                    return True
                if n in seen:
                    continue
                seen.add(n)
                stack.extend(adj.get(n, ()))
            return False

        findings: list[Finding] = []
        for (a, b), (path, line, text) in sorted(
            edges.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
        ):
            if a == b:
                if a in program.indexed_locks:
                    continue  # distinct stripes of a lock tuple
                findings.append(
                    Finding(
                        self.name, path, line,
                        f"lock {a} re-acquired while already held "
                        f"(non-reentrant self-deadlock): {text}",
                    )
                )
            elif reachable(b, a):
                findings.append(
                    Finding(
                        self.name, path, line,
                        f"lock-order cycle between {a} and {b}: {text} "
                        f"[reverse path {b} -> {a} also exists]",
                    )
                )
        return findings


#: Callables that open a comm/socket resource needing deterministic close.
_OPEN_CALLS = frozenset(
    {"connect", "connect_with_retry", "listen", "pipe_pair", "create_connection"}
)


def _is_open_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Name):
        return f.id in _OPEN_CALLS
    if isinstance(f, ast.Attribute):
        if f.attr in ("connect_with_retry", "create_connection", "pipe_pair"):
            return True
        # socket.socket(...) but not obj.connect(...) (too generic a name)
        if f.attr == "socket" and isinstance(f.value, ast.Name) and f.value.id == "socket":
            return True
    return False


class LockLeakRule(StaticRule):
    """No lock or comm resource may leak on an exception path.

    Two shapes are convicted: a bare ``.acquire()`` whose receiver is not
    ``.release()``d inside a ``finally`` block of the same function (use
    ``with``), and a comm/socket open (``connect``, ``listen``,
    ``pipe_pair``, ...) bound to a local that neither escapes the
    function (returned, stored on an attribute, passed as an argument)
    nor is closed under ``with``/``finally``.  An escaping resource is
    some other owner's to close; a non-escaping one that relies on
    straight-line ``.close()`` leaks exactly when the code in between
    raises -- which for comm code is the *expected* path (peer loss).
    """

    name = "lock-leak"
    description = (
        "no bare .acquire() without a finally release; every non-escaping "
        "comm/socket open is closed via with/finally"
    )

    def check(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for fn in program.functions:
            findings.extend(self._check_acquires(program, fn))
            findings.extend(self._check_opens(program, fn))
        return findings

    def _check_acquires(self, program: Program, fn) -> list[Finding]:
        released: set[str] = set()
        for node in own_nodes(fn.node):
            if isinstance(node, ast.Try):
                for f in node.finalbody:
                    for c in ast.walk(f):
                        if (
                            isinstance(c, ast.Call)
                            and isinstance(c.func, ast.Attribute)
                            and c.func.attr == "release"
                        ):
                            released.add(ast.unparse(c.func.value))
        out: list[Finding] = []
        for node in own_nodes(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                recv = ast.unparse(node.func.value)
                if recv not in released:
                    out.append(
                        Finding(
                            self.name, fn.module.relpath, node.lineno,
                            f"`{recv}.acquire()` in {fn.qualname} has no "
                            f"`{recv}.release()` in a finally block -- an "
                            f"exception leaks the lock; use `with {recv}:`",
                        )
                    )
        return out

    def _check_opens(self, program: Program, fn) -> list[Finding]:
        assigned: dict[str, ast.Call] = {}
        safe_calls: set[int] = set()
        escaped: set[str] = set()
        closed: set[str] = set()

        def names_in(node: ast.AST) -> set[str]:
            return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

        def mark_safe_opens(node: ast.AST) -> None:
            for c in ast.walk(node):
                if _is_open_call(c):
                    safe_calls.add(id(c))

        for node in own_nodes(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    mark_safe_opens(item.context_expr)
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Name):
                        closed.add(ctx.id)
            elif isinstance(node, ast.Return) and node.value is not None:
                escaped |= names_in(node.value)
                mark_safe_opens(node.value)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name) and _is_open_call(node.value):
                    assigned[t.id] = node.value
                elif isinstance(t, ast.Tuple) and _is_open_call(node.value):
                    for el in t.elts:
                        if isinstance(el, ast.Name):
                            assigned[el.id] = node.value
                elif isinstance(t, ast.Attribute):
                    # stored on an object: the object owns it now
                    escaped |= names_in(node.value)
                    mark_safe_opens(node.value)
            elif isinstance(node, ast.Call):
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    escaped |= names_in(arg)
                    mark_safe_opens(arg)
            elif isinstance(node, ast.Try):
                for f in node.finalbody:
                    for c in ast.walk(f):
                        if (
                            isinstance(c, ast.Call)
                            and isinstance(c.func, ast.Attribute)
                            and c.func.attr == "close"
                            and isinstance(c.func.value, ast.Name)
                        ):
                            closed.add(c.func.value.id)

        out: list[Finding] = []
        seen_lines: set[int] = set()
        for name, call in sorted(assigned.items()):
            if name in escaped or name in closed:
                continue
            if call.lineno in seen_lines:
                continue
            seen_lines.add(call.lineno)
            out.append(
                Finding(
                    self.name, fn.module.relpath, call.lineno,
                    f"`{ast.unparse(call.func)}(...)` in {fn.qualname} is "
                    "closed (if at all) only on the straight-line path -- "
                    "an exception leaks the channel; use `with` or "
                    "close in a finally",
                )
            )
        for node in own_nodes(fn.node):
            if (
                isinstance(node, ast.Expr)
                and _is_open_call(node.value)
                and id(node.value) not in safe_calls
            ):
                out.append(
                    Finding(
                        self.name, fn.module.relpath, node.lineno,
                        f"`{ast.unparse(node.value.func)}(...)` in {fn.qualname} "
                        "opens a channel and discards the handle",
                    )
                )
        return out
